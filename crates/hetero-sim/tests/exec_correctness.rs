//! Functional correctness of the simulated executors: the heterogeneous
//! run — with its split host/device grids and explicit boundary
//! transfers — must reproduce the sequential oracle bit-for-bit for every
//! Table I contributing set, every canonical pattern, and a sweep of
//! schedule parameters.

use hetero_sim::exec::{run_cpu, run_gpu, run_hetero, ExecOptions};
use hetero_sim::platform::{hetero_high, hetero_low};
use lddp_core::cell::{ContributingSet, RepCell};
use lddp_core::kernel::{ClosureKernel, Neighbors};
use lddp_core::pattern::{classify, Pattern, ProfileShape};
use lddp_core::schedule::{Plan, ScheduleParams};
use lddp_core::seq::solve_row_major;
use lddp_core::wavefront::Dims;

/// Position-and-dependency mixing kernel: every declared dependency
/// perturbs the output, so a missing transfer or wrong order changes the
/// result.
fn mix_kernel(
    dims: Dims,
    set: ContributingSet,
) -> ClosureKernel<u64, impl Fn(usize, usize, &Neighbors<u64>) -> u64 + Sync> {
    ClosureKernel::new(dims, set, move |i, j, n: &Neighbors<u64>| {
        let mut acc = (i as u64) << 32 | (j as u64 + 1);
        for c in RepCell::ALL {
            if let Some(v) = n.get(c) {
                acc = acc
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(*v ^ 0x9e3779b97f4a7c15);
            }
        }
        acc
    })
}

fn schedule_for(pattern: Pattern, dims: Dims, t_switch: usize, t_share: usize) -> ScheduleParams {
    let waves = pattern.num_waves(dims.rows, dims.cols);
    let t_switch = match pattern.profile_shape() {
        ProfileShape::Constant => 0,
        ProfileShape::RampUpDown => t_switch.min(waves / 2),
        ProfileShape::Decreasing => t_switch.min(waves),
    };
    ScheduleParams::new(t_switch, t_share.min(dims.cols))
}

#[test]
fn hetero_matches_oracle_for_all_table_one_sets() {
    for set in ContributingSet::table_one_rows() {
        let pattern = classify(set).unwrap();
        if !pattern.is_canonical() {
            continue; // vertical / mirrored handled by framework adapters
        }
        for (r, c) in [(9, 9), (5, 13), (13, 5)] {
            let dims = Dims::new(r, c);
            let kernel = mix_kernel(dims, set);
            let oracle = solve_row_major(&kernel).unwrap().to_row_major();
            for (t_switch, t_share) in [(0, 0), (2, 0), (0, 3), (3, 2), (4, c)] {
                let params = schedule_for(pattern, dims, t_switch, t_share);
                let plan = Plan::new(pattern, set, dims, params).unwrap();
                let report =
                    run_hetero(&kernel, &plan, &hetero_high(), &ExecOptions::functional()).unwrap();
                let got = report.grid.expect("functional mode returns the grid");
                assert_eq!(
                    got.to_row_major(),
                    oracle,
                    "{pattern} {set} {r}x{c} params {params:?}"
                );
            }
        }
    }
}

#[test]
fn cpu_and_gpu_runs_match_oracle() {
    for set in [
        ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N]),
        ContributingSet::new(&[RepCell::Nw, RepCell::N, RepCell::Ne]),
        ContributingSet::new(&[RepCell::W, RepCell::Ne]),
    ] {
        let dims = Dims::new(8, 11);
        let kernel = mix_kernel(dims, set);
        let oracle = solve_row_major(&kernel).unwrap().to_row_major();
        let cpu = run_cpu(&kernel, &hetero_high(), &ExecOptions::functional()).unwrap();
        assert_eq!(cpu.grid.unwrap().to_row_major(), oracle);
        let gpu = run_gpu(&kernel, &hetero_low(), &ExecOptions::functional()).unwrap();
        assert_eq!(gpu.grid.unwrap().to_row_major(), oracle);
    }
}

#[test]
fn estimate_mode_returns_no_grid_but_same_time() {
    let set = ContributingSet::new(&[RepCell::W, RepCell::N]);
    let dims = Dims::new(16, 16);
    let kernel = mix_kernel(dims, set);
    let plan = Plan::new(Pattern::AntiDiagonal, set, dims, ScheduleParams::new(3, 4)).unwrap();
    let fun = run_hetero(&kernel, &plan, &hetero_high(), &ExecOptions::functional()).unwrap();
    let est = run_hetero(&kernel, &plan, &hetero_high(), &ExecOptions::default()).unwrap();
    assert!(est.grid.is_none());
    assert!(fun.grid.is_some());
    assert_eq!(
        est.total_s, fun.total_s,
        "timing must not depend on functional mode"
    );
    assert_eq!(est.breakdown, fun.breakdown);
}

#[test]
fn plan_mismatch_is_rejected() {
    let set = ContributingSet::new(&[RepCell::W, RepCell::N]);
    let kernel = mix_kernel(Dims::new(8, 8), set);
    let plan = Plan::new(
        Pattern::AntiDiagonal,
        set,
        Dims::new(9, 9), // wrong dims
        ScheduleParams::new(0, 0),
    )
    .unwrap();
    assert!(run_hetero(&kernel, &plan, &hetero_high(), &ExecOptions::default()).is_err());
}

#[test]
fn timeline_spans_sum_to_total() {
    let set = ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N, RepCell::Ne]);
    let dims = Dims::new(12, 12);
    let kernel = mix_kernel(dims, set);
    let plan = Plan::new(Pattern::KnightMove, set, dims, ScheduleParams::new(5, 3)).unwrap();
    let opts = ExecOptions {
        record_timeline: true,
        ..Default::default()
    };
    let report = run_hetero(&kernel, &plan, &hetero_high(), &opts).unwrap();
    assert_eq!(report.timeline.len(), plan.num_waves());
    let sum: f64 = report.timeline.iter().map(|r| r.span_s).sum();
    let expected = report.total_s - report.breakdown.setup_s;
    assert!((sum - expected).abs() < 1e-12 * sum.max(1.0));
    // Spans are at least as long as each engine's busy time.
    for r in &report.timeline {
        assert!(r.span_s >= r.cpu_s.max(r.gpu_s) - 1e-15);
    }
}

#[test]
fn two_way_patterns_pay_copies_on_critical_path() {
    // Knight-move needs transfers in both directions (Table II). A
    // geometric subtlety of the column-band partition: a knight-move wave
    // holds cells of a single column parity, so the CPU→GPU imports (even
    // waves, boundary cell at j = t_share) and the GPU→CPU imports (odd
    // waves, CPU boundary cell's NE) *alternate* between iterations
    // rather than coinciding. Both directions must occur, and every
    // transferring wave must pay its pinned copy on the critical path.
    let set = ContributingSet::new(&[RepCell::W, RepCell::Ne]);
    let dims = Dims::new(16, 16);
    let kernel = mix_kernel(dims, set);
    let plan = Plan::new(Pattern::KnightMove, set, dims, ScheduleParams::new(4, 4)).unwrap();
    let opts = ExecOptions {
        record_timeline: true,
        ..Default::default()
    };
    let report = run_hetero(&kernel, &plan, &hetero_high(), &opts).unwrap();
    let waves_to_gpu = report
        .timeline
        .iter()
        .filter(|r| r.bytes_to_gpu > 0)
        .count();
    let waves_to_cpu = report
        .timeline
        .iter()
        .filter(|r| r.bytes_to_cpu > 0)
        .count();
    assert!(waves_to_gpu > 0, "knight-move must transfer CPU→GPU");
    assert!(waves_to_cpu > 0, "knight-move must transfer GPU→CPU");
    for r in report
        .timeline
        .iter()
        .filter(|r| r.bytes_to_gpu + r.bytes_to_cpu > 0)
    {
        assert!(
            r.span_s > r.cpu_s.max(r.gpu_s),
            "wave {}: two-way-pattern copies must not be hidden",
            r.wave
        );
    }
}

#[test]
fn pipelining_hides_one_way_copies() {
    // Horizontal case 1 with pipeline on: spans equal max(cpu, gpu)
    // whenever the copy is smaller than compute. With pipeline off the
    // same waves get strictly slower.
    let set = ContributingSet::new(&[RepCell::Nw, RepCell::N]);
    let dims = Dims::new(64, 4096);
    let kernel = mix_kernel(dims, set);
    let plan = Plan::new(Pattern::Horizontal, set, dims, ScheduleParams::new(0, 256)).unwrap();
    let on = run_hetero(&kernel, &plan, &hetero_high(), &ExecOptions::default()).unwrap();
    let opts = ExecOptions {
        pipeline: false,
        ..Default::default()
    };
    let off = run_hetero(&kernel, &plan, &hetero_high(), &opts).unwrap();
    assert!(
        off.total_s > on.total_s,
        "disabling the pipeline must cost time: on={} off={}",
        on.total_s,
        off.total_s
    );
}

#[test]
fn setup_bytes_are_charged_once() {
    let set = ContributingSet::new(&[RepCell::Nw, RepCell::N]);
    let dims = Dims::new(32, 32);
    let kernel = mix_kernel(dims, set);
    let plan = Plan::new(Pattern::Horizontal, set, dims, ScheduleParams::new(0, 4)).unwrap();
    let base = run_hetero(&kernel, &plan, &hetero_high(), &ExecOptions::default()).unwrap();
    let opts = ExecOptions {
        setup_to_gpu_bytes: 1 << 20,
        ..Default::default()
    };
    let with_setup = run_hetero(&kernel, &plan, &hetero_high(), &opts).unwrap();
    let delta = with_setup.total_s - base.total_s;
    let expected = hetero_high()
        .link
        .transfer_time_s(1 << 20, hetero_sim::HostMemory::Pageable);
    assert!((delta - expected).abs() < 1e-12);
}

#[test]
fn pure_cpu_plan_charges_no_setup() {
    // t_share = cols: GPU never participates, so no upload/download.
    let set = ContributingSet::new(&[RepCell::Nw, RepCell::N]);
    let dims = Dims::new(16, 16);
    let kernel = mix_kernel(dims, set);
    let plan = Plan::new(Pattern::Horizontal, set, dims, ScheduleParams::new(0, 16)).unwrap();
    let opts = ExecOptions {
        setup_to_gpu_bytes: 1 << 30,
        ..Default::default()
    };
    let report = run_hetero(&kernel, &plan, &hetero_high(), &opts).unwrap();
    assert_eq!(report.breakdown.setup_s, 0.0);
    assert_eq!(report.breakdown.gpu_busy_s, 0.0);
}

#[test]
fn deterministic_across_runs() {
    let set = ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N]);
    let dims = Dims::new(20, 20);
    let kernel = mix_kernel(dims, set);
    let plan = Plan::new(Pattern::AntiDiagonal, set, dims, ScheduleParams::new(5, 3)).unwrap();
    let a = run_hetero(&kernel, &plan, &hetero_high(), &ExecOptions::functional()).unwrap();
    let b = run_hetero(&kernel, &plan, &hetero_high(), &ExecOptions::functional()).unwrap();
    assert_eq!(a.total_s, b.total_s);
    assert_eq!(
        a.grid.unwrap().to_row_major(),
        b.grid.unwrap().to_row_major()
    );
}

/// Injected fault: dropping a transfer must corrupt the result. This
/// guards the test harness itself — if the split-grid simulation silently
/// shared memory, missing transfers would go unnoticed.
#[test]
fn split_grids_actually_isolate_devices() {
    let set = ContributingSet::new(&[RepCell::Nw, RepCell::N]);
    let dims = Dims::new(8, 8);
    // Emulate a dropped dependency by declaring a smaller contributing
    // set than the function actually wants: the framework only feeds
    // declared neighbours, so the undeclared one arrives as `None` and
    // the result must diverge from the honest kernel's.
    let lying = ClosureKernel::new(dims, ContributingSet::new(&[RepCell::N]), {
        move |i, j, n: &Neighbors<u64>| {
            // Reads N (declared) — value mixes position so divergence
            // propagates; NW is undeclared and arrives as None.
            let mut acc = (i * 17 + j + 1) as u64;
            if let Some(v) = n.n {
                acc = acc.wrapping_mul(31).wrapping_add(v);
            }
            if let Some(v) = n.nw {
                acc = acc.wrapping_mul(37).wrapping_add(v);
            }
            acc
        }
    });
    // The honest kernel declares NW too.
    let honest = ClosureKernel::new(dims, set, move |i, j, n: &Neighbors<u64>| {
        let mut acc = (i * 17 + j + 1) as u64;
        if let Some(v) = n.n {
            acc = acc.wrapping_mul(31).wrapping_add(v);
        }
        if let Some(v) = n.nw {
            acc = acc.wrapping_mul(37).wrapping_add(v);
        }
        acc
    });
    let honest_result = solve_row_major(&honest).unwrap().to_row_major();
    let lying_result = solve_row_major(&lying).unwrap().to_row_major();
    assert_ne!(
        honest_result, lying_result,
        "undeclared dependencies must be invisible to the kernel"
    );
}

#[test]
fn injected_device_fault_aborts_with_the_faulting_wave() {
    use hetero_sim::exec::run_hetero_injected;
    use lddp_core::Error;

    struct FaultAt(usize);
    impl lddp_chaos::FaultInjector for FaultAt {
        fn active(&self) -> bool {
            true
        }
        fn device_fault(&self, wave: usize) -> bool {
            wave >= self.0
        }
    }

    let set = ContributingSet::new(&[RepCell::W, RepCell::N]);
    let dims = Dims::new(16, 16);
    let kernel = mix_kernel(dims, set);
    // Schedule with a shared phase so the device actually participates.
    let plan = Plan::new(Pattern::AntiDiagonal, set, dims, ScheduleParams::new(3, 4)).unwrap();

    // NoFaults and a plan that never fires leave the run untouched.
    let clean = run_hetero(&kernel, &plan, &hetero_high(), &ExecOptions::functional()).unwrap();
    let noop = run_hetero_injected(
        &kernel,
        &plan,
        &hetero_high(),
        &ExecOptions::functional(),
        &lddp_chaos::NoFaults,
    )
    .unwrap();
    assert_eq!(
        clean.grid.unwrap().to_row_major(),
        noop.grid.unwrap().to_row_major()
    );

    // An injected fault aborts with the wave it fired on, and only
    // fires on waves in which the device participates.
    let r = run_hetero_injected(
        &kernel,
        &plan,
        &hetero_high(),
        &ExecOptions::functional(),
        &FaultAt(0),
    );
    match r {
        Err(Error::DeviceFault { wave }) => {
            assert!(wave < plan.num_waves(), "fault wave {wave} out of range")
        }
        other => panic!("expected DeviceFault, got {other:?}"),
    }
}
