//! Property-based tests of the device cost models: the analytic
//! formulas must respect the physical monotonicities the schedules rely
//! on, for arbitrary (sane) parameterizations — not just the two presets.

use hetero_sim::cpu::CpuModel;
use hetero_sim::gpu::GpuModel;
use hetero_sim::link::{HostMemory, LinkModel};
use proptest::prelude::*;

fn cpu_strategy() -> impl Strategy<Value = CpuModel> {
    (
        1usize..32,
        1.0f64..5.0,
        0.5f64..3.0,
        0.5f64..2.0,
        1e-7f64..1e-5,
        0.05e-9f64..1e-9,
    )
        .prop_map(|(cores, freq, opc, pyield, sync, mem)| CpuModel {
            physical_cores: cores,
            logical_threads: cores * 2,
            freq_ghz: freq,
            ops_per_cycle: opc,
            parallel_yield: pyield,
            sync_overhead_s: sync,
            mem_s_per_byte: mem,
        })
}

fn gpu_strategy() -> impl Strategy<Value = GpuModel> {
    (
        1usize..32,
        16usize..256,
        0.3f64..2.0,
        1e-6f64..1e-5,
        4.0f64..200.0,
        1.5f64..10.0,
    )
        .prop_map(|(smx, cores, clock, launch, bw, penalty)| GpuModel {
            smx,
            cores_per_smx: cores,
            clock_ghz: clock,
            launch_overhead_s: launch,
            mem_bw_gbps: bw,
            uncoalesced_penalty: penalty,
            warp: 32,
        })
}

fn link_strategy() -> impl Strategy<Value = LinkModel> {
    (1e-6f64..2e-5, 1.0f64..16.0, 1e-7f64..5e-6, 1.0f64..16.0).prop_map(|(pl, pb, nl, nb)| {
        LinkModel {
            pageable_latency_s: pl,
            pageable_bw_gbps: pb,
            pinned_latency_s: nl.min(pl), // pinned never slower to start
            pinned_bw_gbps: nb.max(pb),   // nor lower bandwidth
        }
    })
}

proptest! {
    /// CPU wave time is monotone in cells, ops and penalty, and zero
    /// only for empty waves.
    #[test]
    fn cpu_monotonicity(m in cpu_strategy(), cells in 1usize..1_000_000,
                        ops in 1u32..256, bytes in 0usize..64) {
        let t = m.wave_time_s(cells, ops, bytes, 1.0);
        prop_assert!(t > 0.0);
        prop_assert!(m.wave_time_s(cells + 1, ops, bytes, 1.0) >= t);
        prop_assert!(m.wave_time_s(cells, ops + 1, bytes, 1.0) >= t);
        prop_assert!(m.wave_time_s(cells, ops, bytes, 1.5) >= t);
        prop_assert_eq!(m.wave_time_s(0, ops, bytes, 1.0), 0.0);
    }

    /// Parallel execution never beats perfect scaling and never loses to
    /// sequential execution (same per-cell cost, no barrier in seq).
    #[test]
    fn cpu_parallel_bounds(m in cpu_strategy(), cells in 1usize..100_000,
                           ops in 1u32..64) {
        let seq = m.seq_time_s(cells, ops, 16, 1.0);
        let par = m.wave_time_s(cells, ops, 16, 1.0);
        let perfect = seq / m.effective_parallelism();
        prop_assert!(par + 1e-18 >= perfect, "faster than perfect scaling");
        prop_assert!(par <= seq + m.sync_overhead_s + 1e-18, "parallel slower than sequential plus barrier");
    }

    /// Thread-per-cell is never faster than chunking (§IV-A).
    #[test]
    fn thread_per_cell_never_wins(m in cpu_strategy(), cells in 1usize..100_000,
                                  spawn in 1e-6f64..1e-4) {
        let chunked = m.wave_time_s(cells, 16, 16, 1.0);
        let tpc = m.wave_time_thread_per_cell_s(cells, 16, 16, 1.0, spawn);
        prop_assert!(tpc >= chunked - 1e-18);
    }

    /// GPU wave time is monotone in cells and penalty; launch overhead
    /// is a hard floor; uncoalesced access never helps.
    #[test]
    fn gpu_monotonicity(g in gpu_strategy(), cells in 1usize..1_000_000,
                        ops in 1u32..256) {
        let t = g.wave_time_s(cells, ops, 16, 1.0);
        prop_assert!(t >= g.launch_overhead_s);
        prop_assert!(g.wave_time_s(cells + 1, ops, 16, 1.0) >= t);
        prop_assert!(g.wave_time_s(cells, ops, 16, g.uncoalesced_penalty) >= t);
        prop_assert_eq!(g.wave_time_s(0, ops, 16, 1.0), 0.0);
    }

    /// Round quantization: times are flat within a round and jump at
    /// multiples of the core count (compute-bound regime).
    #[test]
    fn gpu_round_quantization(g in gpu_strategy()) {
        // Heavy compute, light memory → compute-bound.
        let ops = 10_000u32;
        let cores = g.total_cores();
        let t1 = g.compute_span_s(1, ops);
        let t_full = g.compute_span_s(cores, ops);
        prop_assert!((t1 - t_full).abs() < 1e-18, "one round regardless of fill");
        let t_next = g.compute_span_s(cores + 1, ops);
        prop_assert!(t_next > t_full, "crossing the round boundary must cost");
    }

    /// Link: pinned is never slower than pageable (by construction of
    /// the strategy — mirrors real hardware), zero bytes free, time
    /// linear in bytes.
    #[test]
    fn link_properties(l in link_strategy(), bytes in 1usize..1_000_000) {
        let pageable = l.transfer_time_s(bytes, HostMemory::Pageable);
        let pinned = l.transfer_time_s(bytes, HostMemory::Pinned);
        prop_assert!(pinned <= pageable + 1e-18);
        prop_assert!(pageable > 0.0);
        prop_assert_eq!(l.transfer_time_s(0, HostMemory::Pageable), 0.0);
        let double = l.transfer_time_s(2 * bytes, HostMemory::Pinned);
        // Latency amortizes: doubling bytes less than doubles time.
        prop_assert!(double < 2.0 * pinned + 1e-18);
    }

    /// Pipelined composition never exceeds serialized composition.
    #[test]
    fn pipelining_never_hurts(a in 0.0f64..1e-3, b in 0.0f64..1e-3, c in 0.0f64..1e-3) {
        prop_assert!(
            LinkModel::pipelined_span_s(a, b, c) <= LinkModel::serialized_span_s(a, b, c) + 1e-18
        );
    }
}
