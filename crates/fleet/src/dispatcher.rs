//! Cost-aware placement: earliest predicted completion over per-pool
//! backlogs.
//!
//! The dispatcher holds one backlog accumulator per fleet member — the
//! sum of the predicted (model) durations of every batch placed there
//! and not yet finished. A new batch arrives with one cost-model
//! estimate per platform (computed by the caller with the §IV model and
//! the tuner cache's parameters for that platform); the dispatcher
//! scores each platform as `backlog + estimate` and places the batch on
//! the argmin — the pool predicted to *complete* it first, not the one
//! that would *run* it fastest in isolation. Ties break toward the
//! lowest index, which makes placement a pure function of the
//! (place/begin/finish) event sequence: replaying the same request
//! stream reproduces the same placements exactly.

use std::sync::Mutex;

/// The dispatcher's verdict for one batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// Index of the chosen platform in the fleet's member order.
    pub platform: usize,
    /// The §IV estimate for the batch on that platform, seconds.
    pub predicted_s: f64,
    /// The platform's backlog at decision time (excluding this batch),
    /// seconds.
    pub backlog_s: f64,
}

/// Service classes the dispatcher accounts backlog under: index 0 is
/// interactive, index 1 is batch (mirroring `lddp-serve`'s priority
/// classes). Placement scores the *total* backlog — a pool drowning in
/// batch work is genuinely slow for interactive work too — but the
/// split is kept so operators can see which class owns a backlog.
pub const BACKLOG_CLASSES: usize = 2;

/// Earliest-predicted-completion placement over per-pool backlogs.
#[derive(Debug)]
pub struct Dispatcher {
    /// Per platform, per service class, predicted seconds in flight.
    backlogs: Mutex<Vec<[f64; BACKLOG_CLASSES]>>,
}

impl Dispatcher {
    /// A dispatcher for `platforms` pools, all initially idle.
    pub fn new(platforms: usize) -> Dispatcher {
        assert!(platforms > 0, "a fleet needs at least one platform");
        Dispatcher {
            backlogs: Mutex::new(vec![[0.0; BACKLOG_CLASSES]; platforms]),
        }
    }

    /// Number of pools this dispatcher scores over.
    pub fn num_platforms(&self) -> usize {
        self.backlogs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// Scores every platform as `backlog + estimate` and returns the
    /// argmin. Platforms whose estimate is not finite are skipped (a
    /// cost-model failure must not absorb all traffic); if every
    /// estimate is non-finite the batch falls back to platform 0.
    /// Does **not** reserve capacity — pair with [`Dispatcher::begin`]
    /// once the placement is acted on.
    ///
    /// # Panics
    /// If `est_s.len()` differs from the pool count.
    pub fn place(&self, est_s: &[f64]) -> Placement {
        let backlogs = self.backlogs.lock().unwrap_or_else(|e| e.into_inner());
        assert_eq!(
            est_s.len(),
            backlogs.len(),
            "one estimate per fleet platform"
        );
        let mut best: Option<(usize, f64)> = None;
        for (i, (&est, classes)) in est_s.iter().zip(backlogs.iter()).enumerate() {
            if !est.is_finite() {
                continue;
            }
            let completion = classes.iter().sum::<f64>() + est;
            // Strict `<` keeps ties on the lowest index.
            if best.is_none_or(|(_, b)| completion < b) {
                best = Some((i, completion));
            }
        }
        let platform = best.map_or(0, |(i, _)| i);
        Placement {
            platform,
            predicted_s: if est_s[platform].is_finite() {
                est_s[platform]
            } else {
                0.0
            },
            backlog_s: backlogs[platform].iter().sum(),
        }
    }

    /// Charges `est_s` seconds of predicted work to `platform`'s
    /// backlog. Call when a placed batch starts executing (or is
    /// committed to the pool's queue). Work charged this way is
    /// accounted to the interactive class; use
    /// [`Dispatcher::begin_for`] to attribute it explicitly.
    pub fn begin(&self, platform: usize, est_s: f64) {
        self.begin_for(platform, est_s, 0);
    }

    /// [`Dispatcher::begin`] with an explicit service class
    /// (0 interactive, 1 batch; out-of-range clamps to the last).
    pub fn begin_for(&self, platform: usize, est_s: f64, class: usize) {
        let mut backlogs = self.backlogs.lock().unwrap_or_else(|e| e.into_inner());
        if est_s.is_finite() && est_s > 0.0 {
            backlogs[platform][class.min(BACKLOG_CLASSES - 1)] += est_s;
        }
    }

    /// Releases `est_s` seconds of predicted work from `platform`'s
    /// backlog, clamped at zero (float cancellation must never leave a
    /// phantom negative queue). Releases from the interactive class;
    /// use [`Dispatcher::finish_for`] to attribute explicitly.
    pub fn finish(&self, platform: usize, est_s: f64) {
        self.finish_for(platform, est_s, 0);
    }

    /// [`Dispatcher::finish`] with an explicit service class.
    pub fn finish_for(&self, platform: usize, est_s: f64, class: usize) {
        let mut backlogs = self.backlogs.lock().unwrap_or_else(|e| e.into_inner());
        if est_s.is_finite() && est_s > 0.0 {
            let slot = &mut backlogs[platform][class.min(BACKLOG_CLASSES - 1)];
            *slot = (*slot - est_s).max(0.0);
        }
    }

    /// Current backlog of one pool, seconds, summed across classes.
    pub fn backlog(&self, platform: usize) -> f64 {
        self.backlogs.lock().unwrap_or_else(|e| e.into_inner())[platform]
            .iter()
            .sum()
    }

    /// Current backlog of one pool attributed to one service class,
    /// seconds.
    pub fn class_backlog(&self, platform: usize, class: usize) -> f64 {
        self.backlogs.lock().unwrap_or_else(|e| e.into_inner())[platform]
            [class.min(BACKLOG_CLASSES - 1)]
    }

    /// Snapshot of every pool's total backlog, in member order.
    pub fn backlogs(&self) -> Vec<f64> {
        self.backlogs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|classes| classes.iter().sum())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_fleet_takes_the_cheapest_platform() {
        let d = Dispatcher::new(3);
        let p = d.place(&[2.0, 0.5, 1.0]);
        assert_eq!(p.platform, 1);
        assert_eq!(p.predicted_s, 0.5);
        assert_eq!(p.backlog_s, 0.0);
    }

    #[test]
    fn backlog_diverts_to_a_slower_but_idle_platform() {
        let d = Dispatcher::new(2);
        // Platform 0 runs the job in 1s but has 5s queued; platform 1
        // needs 2s and is idle — earliest completion wins.
        d.begin(0, 5.0);
        let p = d.place(&[1.0, 2.0]);
        assert_eq!(p.platform, 1);
        assert_eq!(p.backlog_s, 0.0);
    }

    #[test]
    fn ties_break_toward_the_lowest_index() {
        let d = Dispatcher::new(3);
        let p = d.place(&[1.0, 1.0, 1.0]);
        assert_eq!(p.platform, 0);
        d.begin(0, 1.0);
        // Now 0 completes at 2.0, the others at 1.0: tie between 1 & 2.
        assert_eq!(d.place(&[1.0, 1.0, 1.0]).platform, 1);
    }

    #[test]
    fn finish_releases_and_clamps_at_zero() {
        let d = Dispatcher::new(2);
        d.begin(0, 1.5);
        assert_eq!(d.backlog(0), 1.5);
        d.finish(0, 1.0);
        assert!((d.backlog(0) - 0.5).abs() < 1e-12);
        d.finish(0, 10.0);
        assert_eq!(d.backlog(0), 0.0);
        // Negative / non-finite charges are ignored outright.
        d.begin(1, f64::NAN);
        d.begin(1, -3.0);
        assert_eq!(d.backlog(1), 0.0);
    }

    #[test]
    fn non_finite_estimates_are_skipped() {
        let d = Dispatcher::new(3);
        let p = d.place(&[f64::NAN, 4.0, f64::INFINITY]);
        assert_eq!(p.platform, 1);
        // All-broken cost model: fall back to platform 0 with a zero
        // prediction rather than poisoning the backlog with NaN.
        let p = d.place(&[f64::NAN, f64::INFINITY, f64::NAN]);
        assert_eq!(p.platform, 0);
        assert_eq!(p.predicted_s, 0.0);
    }

    #[test]
    fn placement_is_deterministic_over_a_replayed_stream() {
        // The same (estimates, begin, finish) event sequence must yield
        // identical placements on a fresh dispatcher — the property the
        // fleet's routing-determinism guarantee reduces to.
        let stream: Vec<[f64; 3]> = (0..40)
            .map(|i| {
                let f = |k: u64| ((i as u64 * 2654435761 + k) % 97) as f64 / 10.0 + 0.1;
                [f(1), f(2), f(3)]
            })
            .collect();
        let run = || {
            let d = Dispatcher::new(3);
            let mut placements = Vec::new();
            for (i, est) in stream.iter().enumerate() {
                let p = d.place(est);
                d.begin(p.platform, p.predicted_s);
                placements.push(p.platform);
                // Retire an older batch every third event.
                if i % 3 == 2 {
                    d.finish(p.platform, p.predicted_s);
                }
            }
            placements
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sustained_load_spreads_across_platforms() {
        // With begin() feedback, a stream of identical batches cannot
        // pile onto one pool: backlog pushes later batches elsewhere.
        let d = Dispatcher::new(3);
        let mut used = [false; 3];
        for _ in 0..9 {
            let p = d.place(&[1.0, 1.2, 1.4]);
            d.begin(p.platform, p.predicted_s);
            used[p.platform] = true;
        }
        assert!(used.iter().all(|&u| u), "backlogs: {:?}", d.backlogs());
    }

    #[test]
    #[should_panic(expected = "one estimate per fleet platform")]
    fn estimate_count_must_match_pool_count() {
        Dispatcher::new(2).place(&[1.0]);
    }

    #[test]
    fn class_backlogs_split_but_score_together() {
        let d = Dispatcher::new(2);
        d.begin_for(0, 1.0, 0);
        d.begin_for(0, 2.0, 1);
        assert_eq!(d.class_backlog(0, 0), 1.0);
        assert_eq!(d.class_backlog(0, 1), 2.0);
        // Placement sees the pool's total (3.0), not either slice.
        assert_eq!(d.backlog(0), 3.0);
        let p = d.place(&[1.0, 2.5]);
        assert_eq!(p.platform, 1, "total backlog diverts despite class split");
        assert_eq!(p.backlog_s, 0.0);
        // Releases are per class and clamp independently.
        d.finish_for(0, 5.0, 1);
        assert_eq!(d.class_backlog(0, 1), 0.0);
        assert_eq!(d.class_backlog(0, 0), 1.0);
        // Out-of-range classes clamp to the last slot instead of
        // panicking (forward compatibility with more classes).
        d.begin_for(1, 1.0, 9);
        assert_eq!(d.class_backlog(1, 1), 1.0);
    }
}
