//! Per-platform fleet observability.
//!
//! Every placement decision and completed solve is recorded twice: in
//! plain atomics (so `/stats` works even without a live registry) and,
//! when a [`LiveRegistry`] is attached, as `lddp_fleet_*` families with
//! a `platform` label. The acceptance-critical family is
//! `lddp_fleet_completion_ratio`: the dispatcher's predicted-vs-actual
//! distribution (wall seconds ÷ predicted model seconds), the signal
//! that tells an operator whether the §IV cost model still ranks the
//! pools usefully.

use lddp_trace::live::LiveRegistry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters and histograms for one fleet, indexed by platform.
#[derive(Debug, Default)]
pub struct FleetMetrics {
    live: Option<Arc<LiveRegistry>>,
    names: Vec<String>,
    placements: Vec<AtomicU64>,
    solves: Vec<AtomicU64>,
    degraded: Vec<AtomicU64>,
    splits: AtomicU64,
}

impl FleetMetrics {
    /// Metrics for the platforms named in `names` (fleet member order).
    pub fn new(names: Vec<String>) -> FleetMetrics {
        let n = names.len();
        FleetMetrics {
            live: None,
            names,
            placements: (0..n).map(|_| AtomicU64::new(0)).collect(),
            solves: (0..n).map(|_| AtomicU64::new(0)).collect(),
            degraded: (0..n).map(|_| AtomicU64::new(0)).collect(),
            splits: AtomicU64::new(0),
        }
    }

    /// Attaches a live registry and eagerly registers every
    /// `lddp_fleet_*` family for every platform, so `/metrics` exposes
    /// the full shape from the first scrape (zero-valued series, not
    /// absent ones).
    pub fn attach_live(&mut self, live: Arc<LiveRegistry>) {
        for name in &self.names {
            let labels = [("platform", name.as_str())];
            live.counter(
                "lddp_fleet_placements_total",
                &labels,
                "Batches the dispatcher placed on each fleet platform.",
            );
            live.counter(
                "lddp_fleet_solves_total",
                &labels,
                "Solves completed on each fleet platform.",
            );
            live.counter(
                "lddp_fleet_degraded_total",
                &labels,
                "Fleet solves that took at least one degradation rung.",
            );
            live.gauge(
                "lddp_fleet_backlog_seconds",
                &labels,
                "Predicted seconds of work queued per fleet platform.",
            );
            for class in ["interactive", "batch"] {
                live.gauge(
                    "lddp_fleet_class_backlog_seconds",
                    &[("platform", name.as_str()), ("class", class)],
                    "Predicted seconds of work queued per fleet platform, by service class.",
                );
            }
            live.histogram(
                "lddp_fleet_predicted_seconds",
                &labels,
                "Dispatcher-predicted batch completion time, model seconds.",
            );
            live.histogram(
                "lddp_fleet_actual_seconds",
                &labels,
                "Measured wall time of fleet-placed solves, seconds.",
            );
            live.histogram(
                "lddp_fleet_completion_ratio",
                &labels,
                "Actual wall seconds divided by dispatcher-predicted seconds.",
            );
        }
        live.counter(
            "lddp_fleet_multiplan_splits_total",
            &[],
            "Large grids solved as cross-device MultiPlan band splits.",
        );
        live.histogram(
            "lddp_fleet_split_devices",
            &[],
            "Device count of each cross-device MultiPlan split.",
        );
        self.live = Some(live);
    }

    /// Platform names, in index order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    fn label_of(&self, idx: usize) -> [(&str, &str); 1] {
        [("platform", self.names[idx].as_str())]
    }

    /// Records one placement decision on platform `idx`.
    pub fn on_place(&self, idx: usize, predicted_s: f64) {
        self.placements[idx].fetch_add(1, Ordering::Relaxed);
        if let Some(live) = &self.live {
            live.counter("lddp_fleet_placements_total", &self.label_of(idx), "")
                .inc();
            live.histogram("lddp_fleet_predicted_seconds", &self.label_of(idx), "")
                .observe(predicted_s);
        }
    }

    /// Records one completed solve on platform `idx` with its measured
    /// wall time against the dispatcher's prediction.
    pub fn on_finish(&self, idx: usize, predicted_s: f64, actual_s: f64, degraded: bool) {
        self.solves[idx].fetch_add(1, Ordering::Relaxed);
        if degraded {
            self.degraded[idx].fetch_add(1, Ordering::Relaxed);
        }
        if let Some(live) = &self.live {
            let labels = self.label_of(idx);
            live.counter("lddp_fleet_solves_total", &labels, "").inc();
            if degraded {
                live.counter("lddp_fleet_degraded_total", &labels, "").inc();
            }
            live.histogram("lddp_fleet_actual_seconds", &labels, "")
                .observe(actual_s);
            if predicted_s > 0.0 && predicted_s.is_finite() && actual_s.is_finite() {
                live.histogram("lddp_fleet_completion_ratio", &labels, "")
                    .observe(actual_s / predicted_s);
            }
        }
    }

    /// Publishes platform `idx`'s current backlog to the gauge family.
    pub fn set_backlog(&self, idx: usize, backlog_s: f64) {
        if let Some(live) = &self.live {
            live.gauge("lddp_fleet_backlog_seconds", &self.label_of(idx), "")
                .set(backlog_s);
        }
    }

    /// Publishes platform `idx`'s backlog attributed to one service
    /// class (`"interactive"` or `"batch"`).
    pub fn set_class_backlog(&self, idx: usize, class: &str, backlog_s: f64) {
        if let Some(live) = &self.live {
            live.gauge(
                "lddp_fleet_class_backlog_seconds",
                &[("platform", self.names[idx].as_str()), ("class", class)],
                "",
            )
            .set(backlog_s);
        }
    }

    /// Records one cross-device MultiPlan split over `devices` devices.
    pub fn on_split(&self, devices: usize) {
        self.splits.fetch_add(1, Ordering::Relaxed);
        if let Some(live) = &self.live {
            live.counter("lddp_fleet_multiplan_splits_total", &[], "")
                .inc();
            live.histogram("lddp_fleet_split_devices", &[], "")
                .observe(devices as f64);
        }
    }

    /// Placements recorded for platform `idx`.
    pub fn placements(&self, idx: usize) -> u64 {
        self.placements[idx].load(Ordering::Relaxed)
    }

    /// Solves completed on platform `idx`.
    pub fn solves(&self, idx: usize) -> u64 {
        self.solves[idx].load(Ordering::Relaxed)
    }

    /// Degraded solves on platform `idx`.
    pub fn degraded(&self, idx: usize) -> u64 {
        self.degraded[idx].load(Ordering::Relaxed)
    }

    /// Cross-device splits recorded fleet-wide.
    pub fn splits(&self) -> u64 {
        self.splits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lddp_trace::live::parse_prometheus;

    fn metrics_with_registry() -> (FleetMetrics, Arc<LiveRegistry>) {
        let mut m = FleetMetrics::new(vec!["alpha".into(), "beta".into()]);
        let live = Arc::new(LiveRegistry::new());
        m.attach_live(Arc::clone(&live));
        (m, live)
    }

    #[test]
    fn families_are_registered_before_any_event() {
        let (_m, live) = metrics_with_registry();
        let text = live.to_prometheus();
        for family in [
            "lddp_fleet_placements_total{platform=\"alpha\"} 0",
            "lddp_fleet_placements_total{platform=\"beta\"} 0",
            "lddp_fleet_solves_total{platform=\"alpha\"} 0",
            "lddp_fleet_degraded_total{platform=\"beta\"} 0",
            "lddp_fleet_backlog_seconds{platform=\"alpha\"} 0",
            "lddp_fleet_class_backlog_seconds{platform=\"alpha\",class=\"interactive\"} 0",
            "lddp_fleet_class_backlog_seconds{platform=\"beta\",class=\"batch\"} 0",
            "lddp_fleet_predicted_seconds_count{platform=\"beta\"} 0",
            "lddp_fleet_actual_seconds_count{platform=\"alpha\"} 0",
            "lddp_fleet_completion_ratio_count{platform=\"alpha\"} 0",
            "lddp_fleet_multiplan_splits_total 0",
            "lddp_fleet_split_devices_count 0",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
    }

    #[test]
    fn events_land_in_both_atomics_and_registry() {
        let (m, live) = metrics_with_registry();
        m.on_place(0, 0.25);
        m.on_place(1, 0.5);
        m.on_place(1, 0.5);
        m.on_finish(1, 0.5, 1.0, false);
        m.on_finish(1, 0.5, 0.25, true);
        m.on_split(3);
        m.set_backlog(0, 2.5);
        m.set_class_backlog(0, "batch", 1.5);
        assert_eq!(m.placements(0), 1);
        assert_eq!(m.placements(1), 2);
        assert_eq!(m.solves(1), 2);
        assert_eq!(m.degraded(1), 1);
        assert_eq!(m.splits(), 1);
        let series = parse_prometheus(&live.to_prometheus());
        let get = |name: &str| {
            series
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
                .unwrap_or_else(|| panic!("missing {name}"))
        };
        assert_eq!(get("lddp_fleet_placements_total{platform=\"beta\"}"), 2.0);
        assert_eq!(get("lddp_fleet_solves_total{platform=\"beta\"}"), 2.0);
        assert_eq!(get("lddp_fleet_degraded_total{platform=\"beta\"}"), 1.0);
        assert_eq!(get("lddp_fleet_backlog_seconds{platform=\"alpha\"}"), 2.5);
        assert_eq!(
            get("lddp_fleet_class_backlog_seconds{platform=\"alpha\",class=\"batch\"}"),
            1.5
        );
        assert_eq!(
            get("lddp_fleet_completion_ratio_count{platform=\"beta\"}"),
            2.0
        );
        assert_eq!(get("lddp_fleet_multiplan_splits_total"), 1.0);
        assert_eq!(get("lddp_fleet_split_devices_count"), 1.0);
    }

    #[test]
    fn completion_ratio_skips_unusable_predictions() {
        let (m, live) = metrics_with_registry();
        m.on_finish(0, 0.0, 1.0, false);
        m.on_finish(0, f64::NAN, 1.0, false);
        let series = parse_prometheus(&live.to_prometheus());
        let ratio = series
            .iter()
            .find(|(n, _)| n == "lddp_fleet_completion_ratio_count{platform=\"alpha\"}")
            .map(|&(_, v)| v)
            .unwrap();
        assert_eq!(ratio, 0.0);
        // The solves themselves still count.
        assert_eq!(m.solves(0), 2);
    }
}
