//! Fleet membership: named platform presets with their own host worker
//! pools.
//!
//! A fleet member pairs a modelled [`Platform`] (the §IV cost-model
//! triple the dispatcher scores against) with the width of the host
//! thread pool that executes placed batches. The three defaults mirror
//! the serving story the paper's evaluation implies: the two published
//! testbeds plus a CPU-only box that exists because real fleets are
//! never uniformly accelerated.

use hetero_sim::platform::{cpu_only, hetero_high, hetero_low, Platform};

/// One member of the serving fleet: a modelled platform plus the host
/// pool width used for wall-clock solves placed on it.
#[derive(Debug, Clone)]
pub struct FleetPlatform {
    /// Stable lower-case name used in request routing, metric labels
    /// and `/stats` ("hetero-high", "hetero-low", "cpu-only").
    pub name: String,
    /// The modelled CPU + GPU + link triple the dispatcher costs
    /// batches against.
    pub platform: Platform,
    /// Host worker-pool width for batches placed here.
    pub threads: usize,
}

impl FleetPlatform {
    /// A member named `name` over `platform`, with the pool width
    /// defaulting to the modelled CPU's physical cores capped at 4
    /// (the host is simulated; wider pools only add barrier traffic).
    pub fn new(name: impl Into<String>, platform: Platform) -> FleetPlatform {
        let threads = platform.cpu.physical_cores.clamp(1, 4);
        FleetPlatform {
            name: name.into(),
            platform,
            threads,
        }
    }

    /// Overrides the host pool width.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> FleetPlatform {
        self.threads = threads.max(1);
        self
    }
}

/// The standard three-preset fleet: Hetero-High, Hetero-Low and a
/// CPU-only host.
pub fn default_fleet() -> Vec<FleetPlatform> {
    vec![
        FleetPlatform::new("hetero-high", hetero_high()),
        FleetPlatform::new("hetero-low", hetero_low()),
        FleetPlatform::new("cpu-only", cpu_only()).with_threads(2),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_fleet_has_three_distinct_members() {
        let fleet = default_fleet();
        assert_eq!(fleet.len(), 3);
        let names: Vec<&str> = fleet.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["hetero-high", "hetero-low", "cpu-only"]);
        for p in &fleet {
            assert!(p.threads >= 1);
        }
        // The members model genuinely different hardware.
        assert_ne!(fleet[0].platform.gpu.smx, fleet[1].platform.gpu.smx);
        assert_ne!(fleet[1].platform.gpu.smx, fleet[2].platform.gpu.smx);
    }

    #[test]
    fn threads_never_drop_to_zero() {
        let p = FleetPlatform::new("x", hetero_high()).with_threads(0);
        assert_eq!(p.threads, 1);
    }
}
