//! Cross-device band splitting for `MultiPlan` serving.
//!
//! A large grid placed on the fleet can be partitioned into `k` column
//! bands — one per simulated device — with
//! [`MultiPlan`](lddp_core::multi::MultiPlan) carrying the ownership
//! map and boundary transfers. The helpers here produce the boundary
//! vector and, crucially, re-legalize the tuned
//! [`ScheduleParams`] **per band**: a cached `t_share` tuned on the
//! whole grid can exceed a narrow band's width, and a `t_switch` tuned
//! on the full wave count can exceed a degenerate band's legal maximum.
//! Clamping against the whole grid only (the pre-fleet behaviour) would
//! hand an illegal parameter pair to the band executor.

use lddp_core::pattern::Pattern;
use lddp_core::schedule::ScheduleParams;
use lddp_core::wavefront::Dims;

/// Even k-way column-band boundaries for a `cols`-wide grid:
/// `devices - 1` ascending exclusive upper bounds, as
/// [`MultiPlan::new`](lddp_core::multi::MultiPlan::new) expects.
/// Bands differ by at most one column; with more devices than columns
/// the surplus devices get empty bands (legal — they simply never own
/// cells).
pub fn split_bands(cols: usize, devices: usize) -> Vec<usize> {
    assert!(devices > 0, "a split needs at least one device");
    (1..devices).map(|d| d * cols / devices).collect()
}

/// The width of each band delimited by `boundaries` over `cols`
/// columns (`boundaries.len() + 1` entries).
pub fn band_widths(boundaries: &[usize], cols: usize) -> Vec<usize> {
    let mut widths = Vec::with_capacity(boundaries.len() + 1);
    let mut lo = 0;
    for &b in boundaries.iter().chain(std::iter::once(&cols)) {
        widths.push(b.saturating_sub(lo));
        lo = lo.max(b);
    }
    widths
}

/// Re-legalizes `params` for every band of a split: each band is
/// clamped against its **own** `rows × width` dims via
/// [`ScheduleParams::clamped_for`], not against the whole grid. Returns
/// one parameter pair per band, in band order.
pub fn per_band_params(
    params: ScheduleParams,
    pattern: Pattern,
    rows: usize,
    boundaries: &[usize],
    cols: usize,
) -> Vec<ScheduleParams> {
    band_widths(boundaries, cols)
        .into_iter()
        .map(|width| params.clamped_for(pattern, Dims::new(rows, width)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lddp_core::schedule::max_t_switch;

    #[test]
    fn boundaries_tile_evenly() {
        assert_eq!(split_bands(12, 3), vec![4, 8]);
        assert_eq!(split_bands(10, 3), vec![3, 6]);
        assert_eq!(split_bands(7, 1), Vec::<usize>::new());
        assert_eq!(band_widths(&split_bands(10, 3), 10), vec![3, 3, 4]);
        // Widths always differ by at most one and sum to cols.
        for cols in [1usize, 5, 31, 100, 1100] {
            for devices in 1..=6 {
                let w = band_widths(&split_bands(cols, devices), cols);
                assert_eq!(w.len(), devices);
                assert_eq!(w.iter().sum::<usize>(), cols);
                let (min, max) = (w.iter().min().unwrap(), w.iter().max().unwrap());
                assert!(max - min <= 1, "cols={cols} devices={devices}: {w:?}");
            }
        }
    }

    #[test]
    fn more_devices_than_columns_yields_empty_bands() {
        let b = split_bands(2, 4);
        assert_eq!(b.len(), 3);
        let w = band_widths(&b, 2);
        assert_eq!(w.iter().sum::<usize>(), 2);
        assert_eq!(w.iter().filter(|&&x| x == 0).count(), 2);
    }

    #[test]
    fn params_are_legal_for_each_band_not_just_the_grid() {
        // Tuned on the whole 64-wide grid: t_share = 48 is legal there
        // but wider than every band of a 3-way split.
        let tuned = ScheduleParams::new(10, 48);
        let boundaries = split_bands(64, 3);
        let per_band = per_band_params(tuned, Pattern::Horizontal, 40, &boundaries, 64);
        assert_eq!(per_band.len(), 3);
        for (p, width) in per_band.iter().zip(band_widths(&boundaries, 64)) {
            assert!(
                p.t_share <= width,
                "t_share {} > band width {width}",
                p.t_share
            );
            assert!(p.t_switch <= max_t_switch(Pattern::Horizontal, Dims::new(40, width)));
        }
    }

    #[test]
    fn non_pow2_band_widths_clamp_anti_diagonal_switch() {
        // 3-way split of 50 columns: bands of 16/17/17, none pow2.
        // Anti-diagonal max_t_switch is waves/2 of the *band*, far
        // below the whole-grid value the cache was tuned against.
        let rows = 9;
        let tuned = ScheduleParams::new(25, 50);
        let boundaries = split_bands(50, 3);
        for (p, width) in per_band_params(tuned, Pattern::AntiDiagonal, rows, &boundaries, 50)
            .iter()
            .zip(band_widths(&boundaries, 50))
        {
            let band_max = max_t_switch(Pattern::AntiDiagonal, Dims::new(rows, width));
            assert!(p.t_switch <= band_max);
            assert!(p.t_share <= width);
            // The clamp actually fired: the grid-tuned value was
            // illegal for the band.
            assert!(25 > band_max && 50 > width);
        }
    }

    #[test]
    fn degenerate_single_row_band_is_relegalized() {
        // The regression of record: a 1-row grid split into width-1
        // bands. Every pattern's per-band maximum collapses to (at
        // most) a handful of waves; grid-tuned parameters must clamp
        // all the way down rather than reach the executor illegal.
        for pattern in [
            Pattern::AntiDiagonal,
            Pattern::Horizontal,
            Pattern::InvertedL,
        ] {
            let tuned = ScheduleParams::new(1000, 1000);
            let boundaries = split_bands(3, 3); // three width-1 bands
            for p in per_band_params(tuned, pattern, 1, &boundaries, 3) {
                let dims = Dims::new(1, 1);
                assert!(p.t_switch <= max_t_switch(pattern, dims), "{pattern}");
                assert!(p.t_share <= 1, "{pattern}");
            }
        }
        // Zero-width (empty) bands clamp t_share to zero.
        let empty = per_band_params(
            ScheduleParams::new(8, 8),
            Pattern::Horizontal,
            1,
            &split_bands(2, 4),
            2,
        );
        assert!(empty.iter().any(|p| p.t_share == 0));
    }
}
