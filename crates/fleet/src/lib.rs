//! # lddp-fleet
//!
//! A heterogeneous serving fleet for LDDP problems: several modelled
//! [`Platform`](hetero_sim::platform::Platform) presets, each with its
//! own host [`ParallelEngine`] worker pool, behind a cost-aware
//! [`Dispatcher`] that places every admitted batch on the pool with the
//! **earliest predicted completion** — the per-platform §IV cost-model
//! estimate plus that pool's predicted backlog.
//!
//! The crate is deliberately mechanism-only and std-only: it knows how
//! to score, place, count and split, but computing the per-platform
//! estimates (cost model + tuner cache) and executing placed batches is
//! the caller's job — in this workspace, the umbrella crate's
//! `FleetBackend`, which routes large grids through
//! [`core::multi`](lddp_core::multi)'s k-way `MultiPlan` band splits so
//! one grid spans several simulated devices and reassembles
//! oracle-identically.
//!
//! ```
//! use lddp_fleet::{default_fleet, Fleet};
//!
//! let fleet = Fleet::new(default_fleet());
//! // Cheapest completion over (backlog + estimate): hetero-high idle.
//! let p = fleet.dispatcher().place(&[0.010, 0.018, 0.045]);
//! assert_eq!(fleet.pool(p.platform).spec.name, "hetero-high");
//! ```

#![warn(missing_docs)]

pub mod dispatcher;
pub mod metrics;
pub mod platform;
pub mod split;

pub use dispatcher::{Dispatcher, Placement};
pub use metrics::FleetMetrics;
pub use platform::{default_fleet, FleetPlatform};
pub use split::{band_widths, per_band_params, split_bands};

use lddp_parallel::ParallelEngine;
use lddp_trace::live::LiveRegistry;
use std::sync::Arc;

/// Readiness of one platform's host worker pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStatus {
    /// Fleet member name ("hetero-high", …).
    pub platform: String,
    /// `true` when no pool worker has died (or the pool was never
    /// needed — a 1-thread member solves inline).
    pub ready: bool,
    /// Workers currently dead awaiting a heal.
    pub dead_workers: usize,
}

/// One fleet member's execution half: its spec plus the host engine
/// that runs batches placed on it.
pub struct PlatformPool {
    /// The member's name, modelled platform and pool width.
    pub spec: FleetPlatform,
    /// Host thread engine for wall-clock solves placed here.
    pub engine: ParallelEngine,
}

/// The fleet: per-platform pools, the dispatcher and shared metrics.
pub struct Fleet {
    pools: Vec<PlatformPool>,
    dispatcher: Dispatcher,
    metrics: FleetMetrics,
}

impl Fleet {
    /// A fleet over `specs`, one engine per member, no live registry.
    ///
    /// # Panics
    /// If `specs` is empty — a fleet needs at least one platform.
    pub fn new(specs: Vec<FleetPlatform>) -> Fleet {
        assert!(!specs.is_empty(), "a fleet needs at least one platform");
        let names: Vec<String> = specs.iter().map(|s| s.name.clone()).collect();
        let pools = specs
            .into_iter()
            .map(|spec| PlatformPool {
                engine: ParallelEngine::new(spec.threads),
                spec,
            })
            .collect::<Vec<_>>();
        Fleet {
            dispatcher: Dispatcher::new(pools.len()),
            metrics: FleetMetrics::new(names),
            pools,
        }
    }

    /// Attaches a live registry: every `lddp_fleet_*` family is
    /// registered eagerly (full `/metrics` shape before traffic). The
    /// per-platform engines stay registry-free on purpose — the
    /// `lddp_pool_*` families carry only a `worker` label, so several
    /// engines sharing one registry would fold into indistinguishable
    /// series.
    #[must_use]
    pub fn with_live(mut self, live: Arc<LiveRegistry>) -> Fleet {
        self.metrics.attach_live(live);
        self
    }

    /// Number of platforms in the fleet.
    pub fn len(&self) -> usize {
        self.pools.len()
    }

    /// `true` only for the impossible empty fleet (kept for clippy's
    /// `len`/`is_empty` pairing).
    pub fn is_empty(&self) -> bool {
        self.pools.is_empty()
    }

    /// The member at `idx`, in construction order.
    pub fn pool(&self, idx: usize) -> &PlatformPool {
        &self.pools[idx]
    }

    /// All members, in construction order.
    pub fn pools(&self) -> &[PlatformPool] {
        &self.pools
    }

    /// Index of the member named `name`, if any.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.pools.iter().position(|p| p.spec.name == name)
    }

    /// The placement engine.
    pub fn dispatcher(&self) -> &Dispatcher {
        &self.dispatcher
    }

    /// The shared counters/histograms.
    pub fn metrics(&self) -> &FleetMetrics {
        &self.metrics
    }

    /// Per-platform pool readiness, in member order.
    pub fn health(&self) -> Vec<PoolStatus> {
        self.pools
            .iter()
            .map(|p| {
                let dead = p.engine.pool_dead_workers();
                PoolStatus {
                    platform: p.spec.name.clone(),
                    ready: dead == 0,
                    dead_workers: dead,
                }
            })
            .collect()
    }

    /// Heals every member's pool; returns the number of workers
    /// respawned fleet-wide.
    pub fn heal_all(&self) -> usize {
        self.pools.iter().map(|p| p.engine.heal_pool()).sum()
    }

    /// JSON summary for `/stats`: per-platform placements, solves,
    /// degradations, backlog and pool readiness, plus the fleet-wide
    /// split counter.
    pub fn stats_json(&self) -> String {
        let backlogs = self.dispatcher.backlogs();
        let platforms: Vec<String> = self
            .pools
            .iter()
            .enumerate()
            .map(|(i, p)| {
                format!(
                    "{{\"name\":\"{}\",\"threads\":{},\"placements\":{},\"solves\":{},\
                     \"degraded\":{},\"backlog_s\":{:.6},\"dead_workers\":{}}}",
                    p.spec.name,
                    p.spec.threads,
                    self.metrics.placements(i),
                    self.metrics.solves(i),
                    self.metrics.degraded(i),
                    backlogs[i],
                    p.engine.pool_dead_workers(),
                )
            })
            .collect();
        format!(
            "{{\"platforms\":[{}],\"multiplan_splits\":{}}}",
            platforms.join(","),
            self.metrics.splits()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_wires_pools_dispatcher_and_metrics_together() {
        let fleet = Fleet::new(default_fleet());
        assert_eq!(fleet.len(), 3);
        assert_eq!(fleet.dispatcher().num_platforms(), 3);
        assert_eq!(fleet.metrics().names().len(), 3);
        assert_eq!(fleet.index_of("hetero-low"), Some(1));
        assert_eq!(fleet.index_of("nope"), None);
        // Fresh engines: every pool is ready with zero dead workers.
        let health = fleet.health();
        assert!(health.iter().all(|h| h.ready && h.dead_workers == 0));
        assert_eq!(fleet.heal_all(), 0);
    }

    #[test]
    fn stats_json_reflects_recorded_traffic() {
        let fleet = Fleet::new(default_fleet());
        let p = fleet.dispatcher().place(&[0.5, 0.1, 0.9]);
        assert_eq!(p.platform, 1);
        fleet.dispatcher().begin(p.platform, p.predicted_s);
        fleet.metrics().on_place(p.platform, p.predicted_s);
        fleet
            .metrics()
            .on_finish(p.platform, p.predicted_s, 0.2, false);
        fleet.metrics().on_split(3);
        let json = fleet.stats_json();
        assert!(json.contains("\"name\":\"hetero-low\""), "{json}");
        assert!(json.contains("\"placements\":1"), "{json}");
        assert!(json.contains("\"multiplan_splits\":1"), "{json}");
        assert!(json.contains("\"backlog_s\":0.100000"), "{json}");
    }

    #[test]
    fn live_fleet_exposes_full_metric_shape() {
        let live = Arc::new(LiveRegistry::new());
        let _fleet = Fleet::new(default_fleet()).with_live(Arc::clone(&live));
        let text = live.to_prometheus();
        for name in ["hetero-high", "hetero-low", "cpu-only"] {
            assert!(
                text.contains(&format!(
                    "lddp_fleet_placements_total{{platform=\"{name}\"}} 0"
                )),
                "{text}"
            );
        }
        assert!(
            text.contains("lddp_fleet_multiplan_splits_total 0"),
            "{text}"
        );
    }
}
