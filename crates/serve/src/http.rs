//! A deliberately tiny HTTP/1.1 subset over `std::net` — just enough
//! for the solve API and its load generator: persistent connections
//! (`Connection: keep-alive`, the HTTP/1.1 default), `Content-Length`
//! request bodies, ASCII headers, JSON payloads. Responses may also be
//! `Transfer-Encoding: chunked` — the streaming solve path emits one
//! JSON frame per chunk ([`write_chunked_head`] / [`write_chunk`] /
//! [`finish_chunked`] on the server, [`HttpConnection::request_stream`]
//! on the client).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Cap on accepted request bodies (1 MiB) — a crude protection against
/// a client streaming an unbounded body at the server.
const MAX_BODY: usize = 1 << 20;

/// Error value for a connection that closed (or went idle past its
/// timeout) *between* requests — a normal end of a keep-alive session,
/// not a protocol error.
pub(crate) const CLEAN_CLOSE: &str = "connection closed between requests";

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Upper-case method.
    pub method: String,
    /// Path with query string stripped.
    pub path: String,
    /// Raw query string (no leading `?`; empty when absent).
    pub query: String,
    /// Raw body (empty when absent).
    pub body: String,
    /// Whether the client wants the connection kept open after the
    /// response (HTTP/1.1 default unless `Connection: close`).
    pub keep_alive: bool,
}

impl HttpRequest {
    /// The value of query parameter `name`, if present
    /// (`last_ms=500&x=1` → `param("last_ms") == Some("500")`).
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == name).then_some(v)
        })
    }
}

/// Reads one HTTP request off `stream` (which should carry a read
/// timeout).
pub fn read_request(stream: &mut TcpStream) -> Result<HttpRequest, String> {
    let head = read_until_blank_line(stream)?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or("empty request")?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or("missing method")?.to_ascii_uppercase();
    let target = parts.next().ok_or("missing request target")?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    // Persistence is the HTTP/1.1 default; HTTP/1.0 must opt in.
    let version = parts.next().unwrap_or("HTTP/1.1");
    let mut keep_alive = !version.eq_ignore_ascii_case("HTTP/1.0");
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse::<usize>()
                    .map_err(|e| format!("bad content-length: {e}"))?;
            } else if name.eq_ignore_ascii_case("connection") {
                let value = value.trim();
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(format!("body of {content_length} bytes exceeds the cap"));
    }
    let mut body = vec![0u8; content_length];
    stream
        .read_exact(&mut body)
        .map_err(|e| format!("reading body: {e}"))?;
    Ok(HttpRequest {
        method,
        path,
        query,
        body: String::from_utf8(body).map_err(|_| "body is not UTF-8")?,
        keep_alive,
    })
}

/// Reads bytes one at a time until the `\r\n\r\n` header terminator.
/// (Byte-at-a-time keeps the body untouched for `read_exact`; request
/// heads are tiny, so this costs nothing that matters here.)
fn read_until_blank_line(stream: &mut TcpStream) -> Result<String, String> {
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() > 16 * 1024 {
            return Err("request head too large".into());
        }
        match stream.read(&mut byte) {
            Ok(0) if head.is_empty() => return Err(CLEAN_CLOSE.into()),
            Ok(0) => return Err("connection closed mid-request".into()),
            Ok(_) => head.push(byte[0]),
            Err(e)
                if head.is_empty()
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
            {
                // An idle keep-alive connection hitting the read timeout
                // is a normal hang-up, not a malformed request.
                return Err(CLEAN_CLOSE.into());
            }
            Err(e) => return Err(format!("reading request: {e}")),
        }
    }
    head.truncate(head.len() - 4);
    String::from_utf8(head).map_err(|_| "request head is not UTF-8".into())
}

/// Standard reason phrase of the statuses this API emits.
pub fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes one JSON response and flushes. `keep_alive` controls the
/// advertised connection disposition; the caller owns actually keeping
/// the socket open (or not) to match.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    write_response_ex(stream, status, body, keep_alive, None)
}

/// [`write_response`] with an optional `Retry-After` header (seconds),
/// used by 503 rejections from an open circuit breaker to tell clients
/// when a retry has a chance of succeeding.
pub fn write_response_ex(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
    retry_after_s: Option<u64>,
) -> std::io::Result<()> {
    let opts = ResponseOptions {
        retry_after_s,
        ..ResponseOptions::default()
    };
    write_response_opts(stream, status, body, keep_alive, &opts)
}

/// Non-default response headers for [`write_response_opts`].
#[derive(Debug, Clone, Default)]
pub struct ResponseOptions {
    /// `Content-Type` override (`application/json` when `None` — the
    /// API's default; `/metrics` sets the Prometheus text type).
    pub content_type: Option<&'static str>,
    /// `Retry-After` seconds, emitted by breaker-open 503s.
    pub retry_after_s: Option<u64>,
    /// Extra `(name, value)` headers, e.g. `X-LDDP-Trace-Id`. Names
    /// and values must be valid ASCII header text; no escaping is
    /// applied.
    pub extra_headers: Vec<(&'static str, String)>,
}

/// The fully general response writer: status, body, connection
/// disposition, plus whatever [`ResponseOptions`] carries.
pub fn write_response_opts(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
    opts: &ResponseOptions,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        status,
        status_text(status),
        opts.content_type.unwrap_or("application/json"),
        body.len(),
    );
    if let Some(s) = opts.retry_after_s {
        head.push_str(&format!("Retry-After: {s}\r\n"));
    }
    for (name, value) in &opts.extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!(
        "Connection: {}\r\n\r\n",
        if keep_alive { "keep-alive" } else { "close" }
    ));
    // One write per response: a separate small head write would sit in
    // Nagle's buffer waiting for the peer's delayed ACK (~40 ms on a
    // quiet connection) before the body could follow.
    head.push_str(body);
    stream.write_all(head.as_bytes())?;
    stream.flush()
}

/// Writes the head of a `Transfer-Encoding: chunked` response and
/// flushes. The caller then emits any number of [`write_chunk`]s and
/// finishes with [`finish_chunked`]; the connection stays usable for
/// the next request afterwards when `keep_alive` holds.
pub fn write_chunked_head(
    stream: &mut TcpStream,
    status: u16,
    keep_alive: bool,
    opts: &ResponseOptions,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\n",
        status,
        status_text(status),
        opts.content_type.unwrap_or("application/json"),
    );
    if let Some(s) = opts.retry_after_s {
        head.push_str(&format!("Retry-After: {s}\r\n"));
    }
    for (name, value) in &opts.extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!(
        "Connection: {}\r\n\r\n",
        if keep_alive { "keep-alive" } else { "close" }
    ));
    stream.write_all(head.as_bytes())?;
    stream.flush()
}

/// Writes one non-empty chunk (`<hex len>\r\n<data>\r\n`) and flushes
/// immediately — each flush is what turns a band into a wire-visible
/// event rather than a buffered byte. Empty payloads are skipped: a
/// zero-length chunk would terminate the stream early.
pub fn write_chunk(stream: &mut TcpStream, data: &str) -> std::io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    // Size line, payload, and CRLF go out as one segment: three small
    // writes would let Nagle hold the tail of every band frame until
    // the reader's delayed ACK, turning a live stream into 40 ms beats.
    let mut chunk = format!("{:x}\r\n", data.len());
    chunk.push_str(data);
    chunk.push_str("\r\n");
    stream.write_all(chunk.as_bytes())?;
    stream.flush()
}

/// Terminates a chunked response (`0\r\n\r\n`, no trailers) and
/// flushes, leaving the connection aligned on a request boundary.
pub fn finish_chunked(stream: &mut TcpStream) -> std::io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

/// Reads one CRLF-terminated line byte-at-a-time (chunk-size lines and
/// trailers are tiny; bytewise reads keep the stream aligned).
fn read_crlf_line(stream: &mut TcpStream) -> Result<String, String> {
    let mut line = Vec::with_capacity(32);
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => return Err("connection closed mid-chunk".into()),
            Ok(_) => {
                line.push(byte[0]);
                if line.ends_with(b"\r\n") {
                    line.truncate(line.len() - 2);
                    return String::from_utf8(line).map_err(|_| "chunk line is not UTF-8".into());
                }
                if line.len() > 1024 {
                    return Err("chunk-size line too long".into());
                }
            }
            Err(e) => return Err(format!("reading chunk: {e}")),
        }
    }
}

/// Reads one chunk of a chunked response body: `Some(data)` for a data
/// chunk, `None` once the zero-length terminal chunk (and any trailers)
/// has been consumed and the connection is back on a request boundary.
fn read_chunk(stream: &mut TcpStream) -> Result<Option<String>, String> {
    let size_line = read_crlf_line(stream)?;
    // Tolerate chunk extensions (`1a;name=value`) by ignoring them.
    let size_hex = size_line.split(';').next().unwrap_or("").trim();
    let size = usize::from_str_radix(size_hex, 16)
        .map_err(|_| format!("malformed chunk-size line {size_line:?}"))?;
    if size > MAX_BODY {
        return Err(format!("chunk of {size} bytes exceeds the cap"));
    }
    if size == 0 {
        // Discard trailers until the blank line that ends the body.
        loop {
            if read_crlf_line(stream)?.is_empty() {
                return Ok(None);
            }
        }
    }
    let mut data = vec![0u8; size];
    stream
        .read_exact(&mut data)
        .map_err(|e| format!("reading chunk data: {e}"))?;
    let mut crlf = [0u8; 2];
    stream
        .read_exact(&mut crlf)
        .map_err(|e| format!("reading chunk terminator: {e}"))?;
    if &crlf != b"\r\n" {
        return Err("chunk data not CRLF-terminated".into());
    }
    String::from_utf8(data)
        .map(Some)
        .map_err(|_| "chunk is not UTF-8".into())
}

/// What [`HttpConnection::request_stream`] observed: the status, the
/// plain body when the server answered without chunking (rejections
/// stay ordinary JSON responses), and any `Retry-After` hint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamOutcome {
    /// HTTP status code.
    pub status: u16,
    /// The full body when the response was *not* chunked; `None` when
    /// the body was streamed through the chunk callback instead.
    pub plain_body: Option<String>,
    /// Parsed `Retry-After` header (whole seconds), when present.
    pub retry_after_s: Option<u64>,
}

/// A persistent client connection: many requests over one TCP stream
/// (`Connection: keep-alive`), reading each response body by its
/// `Content-Length` instead of waiting for EOF. This is what makes a
/// load generator measure solve latency rather than TCP handshakes.
#[derive(Debug)]
pub struct HttpConnection {
    stream: TcpStream,
    addr: String,
}

impl HttpConnection {
    /// Dials `addr` and applies `timeout` to reads and writes.
    pub fn connect(addr: &str, timeout: Duration) -> Result<HttpConnection, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        // A connection whose timeouts failed to apply would hang forever
        // on a stalled peer — refuse it rather than limp along unbounded.
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| format!("set read timeout on {addr}: {e}"))?;
        stream
            .set_write_timeout(Some(timeout))
            .map_err(|e| format!("set write timeout on {addr}: {e}"))?;
        // Nagle would batch our small request/frame segments behind the
        // peer's delayed ACK; this is a latency-measuring client, so
        // send segments as written. Best-effort: a platform that cannot
        // disable it still works, just slower.
        stream.set_nodelay(true).ok();
        Ok(HttpConnection {
            stream,
            addr: addr.to_string(),
        })
    }

    /// Sends one request and reads its response, leaving the connection
    /// open for the next call. On any error the connection should be
    /// dropped and redialed — a half-read stream is not reusable.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), String> {
        self.request_ex(method, path, body)
            .map(|(status, body, _)| (status, body))
    }

    /// [`HttpConnection::request`], also returning the parsed
    /// `Retry-After` header (whole seconds) when the server sent one —
    /// how backpressure rejections (429/503) tell clients when a retry
    /// has a chance.
    pub fn request_ex(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String, Option<u64>), String> {
        let body = body.unwrap_or("");
        // Head and body leave in one segment (see `write_response`'s
        // note on Nagle + delayed ACK).
        let mut req = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            self.addr,
            body.len()
        );
        req.push_str(body);
        self.stream
            .write_all(req.as_bytes())
            .and_then(|_| self.stream.flush())
            .map_err(|e| format!("sending request: {e}"))?;

        let head = read_until_blank_line(&mut self.stream)?;
        let mut lines = head.split("\r\n");
        let status = lines
            .next()
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or("response missing status code")?;
        let mut content_length = 0usize;
        let mut retry_after_s = None;
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse::<usize>()
                        .map_err(|e| format!("bad content-length: {e}"))?;
                } else if name.eq_ignore_ascii_case("retry-after") {
                    // Only the delta-seconds form; an unparseable value
                    // (e.g. an HTTP-date) degrades to "no hint".
                    retry_after_s = value.trim().parse::<u64>().ok();
                }
            }
        }
        if content_length > MAX_BODY {
            return Err(format!(
                "response of {content_length} bytes exceeds the cap"
            ));
        }
        let mut payload = vec![0u8; content_length];
        self.stream
            .read_exact(&mut payload)
            .map_err(|e| format!("reading response body: {e}"))?;
        let payload = String::from_utf8(payload).map_err(|_| "response is not UTF-8")?;
        Ok((status, payload, retry_after_s))
    }

    /// Sends one request and reads a possibly chunked response,
    /// delivering each chunk to `on_chunk` as it arrives (the streaming
    /// solve path writes one JSON frame per chunk, so chunk boundaries
    /// are frame boundaries). When the server answers with a plain
    /// `Content-Length` body instead — every rejection does — the body
    /// comes back in [`StreamOutcome::plain_body`] and `on_chunk` is
    /// never called. After `Ok`, the connection is aligned for reuse;
    /// on `Err` it must be dropped.
    pub fn request_stream(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        on_chunk: &mut dyn FnMut(&str),
    ) -> Result<StreamOutcome, String> {
        let body = body.unwrap_or("");
        // Head and body leave in one segment (see `write_response`'s
        // note on Nagle + delayed ACK).
        let mut req = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            self.addr,
            body.len()
        );
        req.push_str(body);
        self.stream
            .write_all(req.as_bytes())
            .and_then(|_| self.stream.flush())
            .map_err(|e| format!("sending request: {e}"))?;

        let head = read_until_blank_line(&mut self.stream)?;
        let mut lines = head.split("\r\n");
        let status = lines
            .next()
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or("response missing status code")?;
        let mut content_length = 0usize;
        let mut chunked = false;
        let mut retry_after_s = None;
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse::<usize>()
                        .map_err(|e| format!("bad content-length: {e}"))?;
                } else if name.eq_ignore_ascii_case("transfer-encoding") {
                    chunked = value.trim().eq_ignore_ascii_case("chunked");
                } else if name.eq_ignore_ascii_case("retry-after") {
                    retry_after_s = value.trim().parse::<u64>().ok();
                }
            }
        }
        if !chunked {
            if content_length > MAX_BODY {
                return Err(format!(
                    "response of {content_length} bytes exceeds the cap"
                ));
            }
            let mut payload = vec![0u8; content_length];
            self.stream
                .read_exact(&mut payload)
                .map_err(|e| format!("reading response body: {e}"))?;
            let payload = String::from_utf8(payload).map_err(|_| "response is not UTF-8")?;
            return Ok(StreamOutcome {
                status,
                plain_body: Some(payload),
                retry_after_s,
            });
        }
        while let Some(chunk) = read_chunk(&mut self.stream)? {
            on_chunk(&chunk);
        }
        Ok(StreamOutcome {
            status,
            plain_body: None,
            retry_after_s,
        })
    }
}

/// Minimal one-shot HTTP client: one request on a fresh connection
/// (`Connection: close`), one `(status, body)` response read to EOF.
/// Used by the CI smoke test; the load generator prefers pooled
/// [`HttpConnection`]s.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> Result<(u16, String), String> {
    request_with_head(addr, method, path, body, timeout).map(|(status, _, body)| (status, body))
}

/// [`request`], also returning the raw response head (status line and
/// headers) so callers can inspect headers like `X-LDDP-Trace-Id`.
pub fn request_with_head(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> Result<(u16, String, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| format!("set read timeout on {addr}: {e}"))?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| format!("set write timeout on {addr}: {e}"))?;
    let body = body.unwrap_or("");
    let mut req = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    req.push_str(body);
    stream
        .write_all(req.as_bytes())
        .and_then(|_| stream.flush())
        .map_err(|e| format!("sending request: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("reading response: {e}"))?;
    let text = String::from_utf8(raw).map_err(|_| "response is not UTF-8")?;
    let (head, payload) = text
        .split_once("\r\n\r\n")
        .ok_or("response missing header terminator")?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or("response missing status code")?;
    Ok((status, head.to_string(), payload.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn request_round_trips_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            conn.set_read_timeout(Some(Duration::from_secs(5))).ok();
            let req = read_request(&mut conn).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/solve");
            assert_eq!(req.body, r#"{"problem":"lcs"}"#);
            assert!(!req.keep_alive, "one-shot client sends Connection: close");
            write_response(&mut conn, 200, r#"{"ok":true}"#, false).unwrap();
        });
        let (status, body) = request(
            &addr,
            "POST",
            "/solve?verbose=1",
            Some(r#"{"problem":"lcs"}"#),
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, r#"{"ok":true}"#);
        server.join().unwrap();
    }

    #[test]
    fn bodyless_get_parses() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let req = read_request(&mut conn).unwrap();
            assert_eq!(req.method, "GET");
            assert_eq!(req.path, "/healthz");
            assert!(req.body.is_empty());
            write_response(&mut conn, 404, "{}", false).unwrap();
        });
        let (status, _) = request(&addr, "GET", "/healthz", None, Duration::from_secs(5)).unwrap();
        assert_eq!(status, 404);
        server.join().unwrap();
    }

    #[test]
    fn persistent_connection_carries_multiple_requests() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            conn.set_read_timeout(Some(Duration::from_secs(5))).ok();
            for i in 0..3 {
                let req = read_request(&mut conn).unwrap();
                assert_eq!(req.method, "POST");
                assert!(req.keep_alive, "pooled client keeps the connection");
                write_response(&mut conn, 200, &format!("{{\"i\":{i}}}"), true).unwrap();
            }
            // The client hanging up afterwards is a clean close.
            assert_eq!(read_request(&mut conn).unwrap_err(), CLEAN_CLOSE);
        });
        let mut conn = HttpConnection::connect(&addr, Duration::from_secs(5)).unwrap();
        for i in 0..3 {
            let (status, body) = conn.request("POST", "/solve", Some("{}")).unwrap();
            assert_eq!(status, 200);
            assert_eq!(body, format!("{{\"i\":{i}}}"));
        }
        drop(conn);
        server.join().unwrap();
    }

    #[test]
    fn connection_close_header_is_honored_in_parsing() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let req = read_request(&mut conn).unwrap();
            assert!(!req.keep_alive);
            write_response(&mut conn, 200, "{}", false).unwrap();
        });
        // The one-shot helper labels itself Connection: close.
        let (status, _) = request(&addr, "GET", "/x", None, Duration::from_secs(5)).unwrap();
        assert_eq!(status, 200);
        server.join().unwrap();
    }

    #[test]
    fn retry_after_header_is_emitted() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let _ = read_request(&mut conn).unwrap();
            write_response_ex(&mut conn, 503, "{}", false, Some(7)).unwrap();
        });
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream
            .write_all(b"GET /x HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).unwrap();
        let text = String::from_utf8(raw).unwrap();
        assert!(text.contains("Retry-After: 7\r\n"), "{text}");
        server.join().unwrap();
    }

    #[test]
    fn pooled_connection_parses_retry_after() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            conn.set_read_timeout(Some(Duration::from_secs(5))).ok();
            let _ = read_request(&mut conn).unwrap();
            write_response_ex(&mut conn, 429, "{}", true, Some(3)).unwrap();
            let _ = read_request(&mut conn).unwrap();
            write_response(&mut conn, 200, "{}", true).unwrap();
        });
        let mut conn = HttpConnection::connect(&addr, Duration::from_secs(5)).unwrap();
        let (status, _, retry) = conn.request_ex("POST", "/solve", Some("{}")).unwrap();
        assert_eq!(status, 429);
        assert_eq!(retry, Some(3));
        // A response without the header reports None.
        let (status, _, retry) = conn.request_ex("POST", "/solve", Some("{}")).unwrap();
        assert_eq!(status, 200);
        assert_eq!(retry, None);
        drop(conn);
        server.join().unwrap();
    }

    #[test]
    fn query_string_is_captured_and_parsed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let req = read_request(&mut conn).unwrap();
            assert_eq!(req.path, "/debug/trace");
            assert_eq!(req.query, "last_ms=500&full=");
            assert_eq!(req.param("last_ms"), Some("500"));
            assert_eq!(req.param("full"), Some(""));
            assert_eq!(req.param("missing"), None);
            write_response(&mut conn, 200, "{}", false).unwrap();
        });
        let (status, _) = request(
            &addr,
            "GET",
            "/debug/trace?last_ms=500&full=",
            None,
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(status, 200);
        server.join().unwrap();
    }

    #[test]
    fn response_options_emit_content_type_and_extra_headers() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let _ = read_request(&mut conn).unwrap();
            let opts = ResponseOptions {
                content_type: Some("text/plain; version=0.0.4"),
                retry_after_s: None,
                extra_headers: vec![("X-LDDP-Trace-Id", "00ff00ff00ff00ff".to_string())],
            };
            write_response_opts(&mut conn, 200, "ok 1\n", false, &opts).unwrap();
        });
        let (status, head, body) =
            request_with_head(&addr, "GET", "/metrics", None, Duration::from_secs(5)).unwrap();
        assert_eq!(status, 200);
        assert!(
            head.contains("Content-Type: text/plain; version=0.0.4"),
            "{head}"
        );
        assert!(head.contains("X-LDDP-Trace-Id: 00ff00ff00ff00ff"), "{head}");
        assert_eq!(body, "ok 1\n");
        server.join().unwrap();
    }

    #[test]
    fn chunked_response_streams_frame_per_chunk() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            conn.set_read_timeout(Some(Duration::from_secs(5))).ok();
            let req = read_request(&mut conn).unwrap();
            assert_eq!(req.param("stream"), Some("1"));
            let opts = ResponseOptions {
                extra_headers: vec![("X-LDDP-Trace-Id", "abc123".to_string())],
                ..ResponseOptions::default()
            };
            write_chunked_head(&mut conn, 200, true, &opts).unwrap();
            for i in 0..3 {
                write_chunk(&mut conn, &format!("{{\"band\":{i}}}")).unwrap();
            }
            // Empty writes are dropped, not emitted as a terminal chunk.
            write_chunk(&mut conn, "").unwrap();
            write_chunk(&mut conn, r#"{"frame":"done"}"#).unwrap();
            finish_chunked(&mut conn).unwrap();
        });
        let mut conn = HttpConnection::connect(&addr, Duration::from_secs(5)).unwrap();
        let mut chunks = Vec::new();
        let outcome = conn
            .request_stream("POST", "/solve?stream=1", Some("{}"), &mut |c| {
                chunks.push(c.to_string())
            })
            .unwrap();
        assert_eq!(outcome.status, 200);
        assert_eq!(outcome.plain_body, None);
        assert_eq!(
            chunks,
            vec![
                r#"{"band":0}"#,
                r#"{"band":1}"#,
                r#"{"band":2}"#,
                r#"{"frame":"done"}"#
            ]
        );
        server.join().unwrap();
    }

    #[test]
    fn malformed_chunk_size_lines_are_errors() {
        // Each case replaces the first chunk-size line with garbage; the
        // reader must reject it rather than misinterpret the stream.
        for bad in ["zz\r\n", "-4\r\n", "\r\n", "1g;ext=1\r\n"] {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap().to_string();
            let wire = bad.to_string();
            let server = std::thread::spawn(move || {
                let (mut conn, _) = listener.accept().unwrap();
                conn.set_read_timeout(Some(Duration::from_secs(5))).ok();
                let _ = read_request(&mut conn).unwrap();
                conn.write_all(
                    b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
                )
                .unwrap();
                conn.write_all(wire.as_bytes()).unwrap();
                conn.flush().unwrap();
            });
            let mut conn = HttpConnection::connect(&addr, Duration::from_secs(5)).unwrap();
            let err = conn
                .request_stream("POST", "/solve?stream=1", Some("{}"), &mut |_| {})
                .unwrap_err();
            assert!(err.contains("malformed chunk-size line"), "{bad:?}: {err}");
            server.join().unwrap();
        }
    }

    #[test]
    fn zero_length_terminal_chunk_with_extension_and_trailers_parses() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            conn.set_read_timeout(Some(Duration::from_secs(5))).ok();
            let _ = read_request(&mut conn).unwrap();
            conn.write_all(
                b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            )
            .unwrap();
            // A chunk with an extension, then a terminal chunk followed
            // by a trailer header — both legal, both must be consumed.
            conn.write_all(b"b;speed=fast\r\n{\"band\":42}\r\n")
                .unwrap();
            conn.write_all(b"0\r\nX-Trailer: ignored\r\n\r\n").unwrap();
            conn.flush().unwrap();
        });
        let mut conn = HttpConnection::connect(&addr, Duration::from_secs(5)).unwrap();
        let mut chunks = Vec::new();
        let outcome = conn
            .request_stream("POST", "/solve?stream=1", Some("{}"), &mut |c| {
                chunks.push(c.to_string())
            })
            .unwrap();
        assert_eq!(outcome.status, 200);
        assert_eq!(chunks, vec![r#"{"band":42}"#]);
        server.join().unwrap();
    }

    #[test]
    fn early_peer_close_mid_stream_is_an_error_not_a_short_stream() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            conn.set_read_timeout(Some(Duration::from_secs(5))).ok();
            let _ = read_request(&mut conn).unwrap();
            conn.write_all(
                b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nTransfer-Encoding: chunked\r\nConnection: keep-alive\r\n\r\n",
            )
            .unwrap();
            // One whole chunk, then half of a second one; the socket
            // then closes without the terminal chunk.
            conn.write_all(b"a\r\n{\"band\":0}\r\n").unwrap();
            conn.write_all(b"a\r\n{\"ban").unwrap();
            conn.flush().unwrap();
        });
        let mut conn = HttpConnection::connect(&addr, Duration::from_secs(5)).unwrap();
        let mut chunks = Vec::new();
        let err = conn
            .request_stream("POST", "/solve?stream=1", Some("{}"), &mut |c| {
                chunks.push(c.to_string())
            })
            .unwrap_err();
        assert!(
            err.contains("reading chunk"),
            "truncated stream must surface as an error: {err}"
        );
        assert_eq!(chunks, vec![r#"{"band":0}"#], "whole chunks still arrive");
        server.join().unwrap();
    }

    #[test]
    fn keep_alive_connection_is_reusable_after_a_completed_stream() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            conn.set_read_timeout(Some(Duration::from_secs(5))).ok();
            // First exchange: a chunked stream.
            let _ = read_request(&mut conn).unwrap();
            write_chunked_head(&mut conn, 200, true, &ResponseOptions::default()).unwrap();
            write_chunk(&mut conn, r#"{"band":0}"#).unwrap();
            write_chunk(&mut conn, r#"{"frame":"done"}"#).unwrap();
            finish_chunked(&mut conn).unwrap();
            // Second exchange on the same socket: a plain response. If
            // the client left stray bytes unread, this request never
            // parses.
            let req = read_request(&mut conn).unwrap();
            assert_eq!(req.path, "/healthz");
            write_response(&mut conn, 200, r#"{"ok":true}"#, true).unwrap();
        });
        let mut conn = HttpConnection::connect(&addr, Duration::from_secs(5)).unwrap();
        let mut chunks = Vec::new();
        let outcome = conn
            .request_stream("POST", "/solve?stream=1", Some("{}"), &mut |c| {
                chunks.push(c.to_string())
            })
            .unwrap();
        assert_eq!(outcome.status, 200);
        assert_eq!(chunks.len(), 2);
        let (status, body) = conn.request("GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, r#"{"ok":true}"#);
        drop(conn);
        server.join().unwrap();
    }

    #[test]
    fn non_chunked_response_to_a_stream_request_returns_plain_body() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            conn.set_read_timeout(Some(Duration::from_secs(5))).ok();
            let _ = read_request(&mut conn).unwrap();
            write_response_ex(&mut conn, 429, r#"{"error":"queue_full"}"#, true, Some(2)).unwrap();
        });
        let mut conn = HttpConnection::connect(&addr, Duration::from_secs(5)).unwrap();
        let mut called = false;
        let outcome = conn
            .request_stream("POST", "/solve?stream=1", Some("{}"), &mut |_| {
                called = true
            })
            .unwrap();
        assert_eq!(outcome.status, 429);
        assert_eq!(
            outcome.plain_body.as_deref(),
            Some(r#"{"error":"queue_full"}"#)
        );
        assert_eq!(outcome.retry_after_s, Some(2));
        assert!(!called, "no chunks on a plain response");
        server.join().unwrap();
    }

    #[test]
    fn status_texts_cover_api_codes() {
        for code in [200, 400, 404, 405, 429, 500, 503, 504] {
            assert_ne!(status_text(code), "Unknown");
        }
        assert_eq!(status_text(999), "Unknown");
    }
}
