//! Wire frames for the streaming solve path (`POST /solve?stream=1`).
//!
//! A streamed solve answers over `Transfer-Encoding: chunked`, one JSON
//! frame per chunk. Band frames (`"frame":"band"`) arrive while the
//! solve is still running — one per sealed wave-band of the rolling
//! execution, carrying the completed-row watermark and a running score
//! — and the stream ends with either a done frame (`"frame":"done"`,
//! the ordinary [`SolveResponse`](crate::job::SolveResponse) body plus
//! the frame tag) or an error frame (`"frame":"error"`). Frames are
//! emitted from inside the solve through a bounded channel, so a slow
//! reader throttles band emission (the pool stalls at its next wave
//! barrier) instead of buffering unboundedly.

use lddp_trace::json::{self, num, Json};

/// One completed wave-band of a streaming solve, as put on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct BandFrame {
    /// Band index, `0..bands`, strictly increasing within a stream.
    pub band: usize,
    /// Total bands this stream will emit (the schedule may merge
    /// near-empty bands on small grids, so this can undershoot the
    /// requested band count).
    pub bands: usize,
    /// First anti-diagonal wave of this band.
    pub wave_lo: usize,
    /// Last anti-diagonal wave of this band (inclusive).
    pub wave_hi: usize,
    /// Rows fully sealed once this band completes — the consumer's
    /// resumable watermark. Early bands of a square grid report 0:
    /// a row only seals once its last column's wave has passed.
    pub rows_completed: usize,
    /// Total rows in the grid.
    pub rows: usize,
    /// Cells computed so far (monotone, ends at `cells_total`).
    pub cells_done: u64,
    /// Total cells in the grid.
    pub cells_total: u64,
    /// Running score: the projection of the last frontier cell of the
    /// band's final wave (problem-specific; e.g. the running edit
    /// distance on the frontier).
    pub score: f64,
    /// Best cell score seen so far, for kernels that track an arg-best
    /// (Smith–Waterman); absent otherwise.
    pub best: Option<f64>,
    /// Milliseconds from admission to this frame's emission.
    pub elapsed_ms: f64,
}

impl BandFrame {
    /// The JSON chunk body (`{"frame":"band",...}`).
    pub fn to_json(&self) -> String {
        let best = match self.best {
            Some(b) => format!(",\"best\":{}", num(b)),
            None => String::new(),
        };
        format!(
            "{{\"frame\":\"band\",\"band\":{},\"bands\":{},\
             \"wave_lo\":{},\"wave_hi\":{},\
             \"rows_completed\":{},\"rows\":{},\
             \"cells_done\":{},\"cells_total\":{},\
             \"score\":{}{},\"elapsed_ms\":{}}}",
            self.band,
            self.bands,
            self.wave_lo,
            self.wave_hi,
            self.rows_completed,
            self.rows,
            self.cells_done,
            self.cells_total,
            num(self.score),
            best,
            num(self.elapsed_ms),
        )
    }

    /// Parses a band frame; `Err` when `text` is not a band frame.
    pub fn from_json(text: &str) -> Result<BandFrame, String> {
        let v = json::parse(text)?;
        if v.get("frame").and_then(Json::as_str) != Some("band") {
            return Err("not a band frame".into());
        }
        let f = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or(format!("missing number \"{key}\""))
        };
        Ok(BandFrame {
            band: f("band")? as usize,
            bands: f("bands")? as usize,
            wave_lo: f("wave_lo")? as usize,
            wave_hi: f("wave_hi")? as usize,
            rows_completed: f("rows_completed")? as usize,
            rows: f("rows")? as usize,
            cells_done: f("cells_done")? as u64,
            cells_total: f("cells_total")? as u64,
            score: f("score")?,
            best: v.get("best").and_then(Json::as_f64),
            elapsed_ms: f("elapsed_ms")?,
        })
    }
}

/// The `"frame"` tag of a streamed chunk, for consumers dispatching on
/// frame kind without fully parsing each one.
pub fn frame_kind(text: &str) -> Option<String> {
    json::parse(text)
        .ok()?
        .get("frame")
        .and_then(Json::as_str)
        .map(str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> BandFrame {
        BandFrame {
            band: 3,
            bands: 32,
            wave_lo: 120,
            wave_hi: 161,
            rows_completed: 0,
            rows: 512,
            cells_done: 32_768,
            cells_total: 262_144,
            score: 417.0,
            best: Some(96.0),
            elapsed_ms: 1.625,
        }
    }

    #[test]
    fn band_frame_round_trips() {
        let f = frame();
        let json = f.to_json();
        assert!(json.starts_with("{\"frame\":\"band\","), "{json}");
        assert_eq!(BandFrame::from_json(&json).unwrap(), f);

        let mut no_best = frame();
        no_best.best = None;
        let json = no_best.to_json();
        assert!(!json.contains("best"), "{json}");
        assert_eq!(BandFrame::from_json(&json).unwrap(), no_best);
    }

    #[test]
    fn band_frame_rejects_other_frames() {
        assert!(BandFrame::from_json(r#"{"frame":"done","id":1}"#).is_err());
        assert!(BandFrame::from_json(r#"{"band":1}"#).is_err());
        assert!(BandFrame::from_json("garbage").is_err());
    }

    #[test]
    fn frame_kinds_dispatch() {
        assert_eq!(frame_kind(&frame().to_json()).as_deref(), Some("band"));
        assert_eq!(
            frame_kind(r#"{"frame":"done","id":1}"#).as_deref(),
            Some("done")
        );
        assert_eq!(
            frame_kind(r#"{"frame":"error","error":"backend_error"}"#).as_deref(),
            Some("error")
        );
        assert_eq!(frame_kind(r#"{"id":1}"#), None);
        assert_eq!(frame_kind("not json"), None);
    }
}
