//! Server-side counters and latency accounting behind `GET /stats`.
//!
//! Counters are sharded lock-free atomics and latency distributions are
//! log-linear [`HistogramSketch`]es — O(1) memory in request count, so
//! a long-lived server never grows, and the same objects double as the
//! `/metrics` series when the stats are built from a [`LiveRegistry`]
//! (one source of truth; `/stats` and `/metrics` can never disagree).

use lddp_trace::json::num;
use lddp_trace::live::{Counter, HistogramSketch, LiveRegistry};
use std::sync::Arc;

/// Interpolated percentile of an ascending-sorted slice (`q` clamped
/// to 0..=1, `NaN` treated as 0). Returns 0 for an empty slice and the
/// element itself for a single-element slice — never indexes out of
/// bounds.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
    let pos = q * (sorted.len() - 1) as f64;
    let lo = (pos.floor() as usize).min(sorted.len() - 1);
    let hi = (pos.ceil() as usize).min(sorted.len() - 1);
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Live counters and latency sketches of one server.
///
/// Every instrument is an `Arc` handle; [`ServeStats::new`] creates
/// standalone instruments (tests, embedded servers without a scrape
/// endpoint), while [`ServeStats::with_registry`] registers the same
/// instruments under their `/metrics` family names so one increment
/// feeds both `/stats` and the Prometheus exposition.
#[derive(Debug)]
pub struct ServeStats {
    pub(crate) accepted: Arc<Counter>,
    pub(crate) completed: Arc<Counter>,
    pub(crate) errors: Arc<Counter>,
    pub(crate) rejected_full: Arc<Counter>,
    pub(crate) rejected_shutdown: Arc<Counter>,
    pub(crate) rejected_deadline: Arc<Counter>,
    pub(crate) rejected_invalid: Arc<Counter>,
    pub(crate) rejected_breaker: Arc<Counter>,
    pub(crate) rejected_infeasible: Arc<Counter>,
    pub(crate) rejected_tenant: Arc<Counter>,
    pub(crate) rejected_brownout: Arc<Counter>,
    pub(crate) panics: Arc<Counter>,
    pub(crate) watchdog_timeouts: Arc<Counter>,
    pub(crate) breaker_opens: Arc<Counter>,
    pub(crate) degraded_solves: Arc<Counter>,
    pub(crate) batches: Arc<Counter>,
    pub(crate) batched_jobs: Arc<Counter>,
    pub(crate) tune_hits: Arc<Counter>,
    pub(crate) tune_misses: Arc<Counter>,
    pub(crate) tier_scalar: Arc<Counter>,
    pub(crate) tier_bulk: Arc<Counter>,
    pub(crate) tier_simd: Arc<Counter>,
    pub(crate) tier_bitparallel: Arc<Counter>,
    /// Per-class accepted counters, indexed by
    /// [`Priority::index`](crate::job::Priority::index).
    pub(crate) class_accepted: [Arc<Counter>; 2],
    /// Per-class completed counters.
    pub(crate) class_completed: [Arc<Counter>; 2],
    /// Per-class shed counters (deadline sheds, brownout sheds, and
    /// class-budget queue-full rejections).
    pub(crate) class_shed: [Arc<Counter>; 2],
    /// Brownout ladder climbs (level went up).
    pub(crate) brownout_engaged: Arc<Counter>,
    /// Brownout ladder descents (level went down).
    pub(crate) brownout_disengaged: Arc<Counter>,
    /// Band frames emitted by streamed solves.
    pub(crate) stream_bands: Arc<Counter>,
    /// Times a streamed solve's band emission blocked because the
    /// consumer's bounded channel was full (backpressure engaged).
    pub(crate) stream_stalls: Arc<Counter>,
    /// Time to first streamed band, admission to emission, seconds.
    pub(crate) stream_ttfb_s: Arc<HistogramSketch>,
    /// Jobs per executed batch.
    pub(crate) batch_size: Arc<HistogramSketch>,
    /// End-to-end latency, seconds.
    total_s: Arc<HistogramSketch>,
    /// Queue-wait latency, seconds.
    queue_s: Arc<HistogramSketch>,
    /// Solve latency, seconds.
    solve_s: Arc<HistogramSketch>,
    /// Per-class end-to-end latency, seconds.
    pub(crate) class_latency_s: [Arc<HistogramSketch>; 2],
}

impl Default for ServeStats {
    fn default() -> ServeStats {
        ServeStats::new()
    }
}

impl ServeStats {
    /// Fresh zeroed stats on standalone instruments.
    pub fn new() -> ServeStats {
        ServeStats {
            accepted: Arc::new(Counter::new()),
            completed: Arc::new(Counter::new()),
            errors: Arc::new(Counter::new()),
            rejected_full: Arc::new(Counter::new()),
            rejected_shutdown: Arc::new(Counter::new()),
            rejected_deadline: Arc::new(Counter::new()),
            rejected_invalid: Arc::new(Counter::new()),
            rejected_breaker: Arc::new(Counter::new()),
            rejected_infeasible: Arc::new(Counter::new()),
            rejected_tenant: Arc::new(Counter::new()),
            rejected_brownout: Arc::new(Counter::new()),
            panics: Arc::new(Counter::new()),
            watchdog_timeouts: Arc::new(Counter::new()),
            breaker_opens: Arc::new(Counter::new()),
            degraded_solves: Arc::new(Counter::new()),
            batches: Arc::new(Counter::new()),
            batched_jobs: Arc::new(Counter::new()),
            tune_hits: Arc::new(Counter::new()),
            tune_misses: Arc::new(Counter::new()),
            tier_scalar: Arc::new(Counter::new()),
            tier_bulk: Arc::new(Counter::new()),
            tier_simd: Arc::new(Counter::new()),
            tier_bitparallel: Arc::new(Counter::new()),
            class_accepted: [Arc::new(Counter::new()), Arc::new(Counter::new())],
            class_completed: [Arc::new(Counter::new()), Arc::new(Counter::new())],
            class_shed: [Arc::new(Counter::new()), Arc::new(Counter::new())],
            brownout_engaged: Arc::new(Counter::new()),
            brownout_disengaged: Arc::new(Counter::new()),
            stream_bands: Arc::new(Counter::new()),
            stream_stalls: Arc::new(Counter::new()),
            stream_ttfb_s: Arc::new(HistogramSketch::new()),
            batch_size: Arc::new(HistogramSketch::new()),
            total_s: Arc::new(HistogramSketch::new()),
            queue_s: Arc::new(HistogramSketch::new()),
            solve_s: Arc::new(HistogramSketch::new()),
            class_latency_s: [
                Arc::new(HistogramSketch::new()),
                Arc::new(HistogramSketch::new()),
            ],
        }
    }

    /// Stats whose instruments live in `registry` under their
    /// `/metrics` family names, so the Prometheus exposition and the
    /// `/stats` JSON report the same numbers.
    pub fn with_registry(registry: &LiveRegistry) -> ServeStats {
        let rej = |reason: &str| {
            registry.counter(
                "lddp_serve_rejected_total",
                &[("reason", reason)],
                "Requests rejected at admission or in queue, by reason.",
            )
        };
        let fault = |kind: &str| {
            registry.counter(
                "lddp_serve_faults_total",
                &[("kind", kind)],
                "Faults absorbed by the serving stack, by kind.",
            )
        };
        let tune = |result: &str| {
            registry.counter(
                "lddp_serve_tuner_cache_total",
                &[("result", result)],
                "Tuner-cache lookups per batch, by result.",
            )
        };
        let tier = |tier: &str| {
            registry.counter(
                "lddp_serve_solves_total",
                &[("tier", tier)],
                "Completed solves by execution tier.",
            )
        };
        let lat = |kind: &str| {
            registry.histogram(
                "lddp_serve_latency_seconds",
                &[("kind", kind)],
                "Per-request latency split, seconds.",
            )
        };
        let class = |class: &str, outcome: &str| {
            registry.counter(
                "lddp_serve_class_total",
                &[("class", class), ("outcome", outcome)],
                "Per-service-class request outcomes.",
            )
        };
        let class_lat = |class: &str| {
            registry.histogram(
                "lddp_serve_class_latency_seconds",
                &[("class", class)],
                "End-to-end latency by service class, seconds.",
            )
        };
        let brownout = |direction: &str| {
            registry.counter(
                "lddp_serve_brownout_transitions_total",
                &[("direction", direction)],
                "Brownout-ladder level transitions, by direction.",
            )
        };
        ServeStats {
            accepted: registry.counter(
                "lddp_serve_accepted_total",
                &[],
                "Requests admitted to the queue.",
            ),
            completed: registry.counter(
                "lddp_serve_completed_total",
                &[],
                "Requests completed successfully.",
            ),
            errors: registry.counter(
                "lddp_serve_errors_total",
                &[],
                "Requests that failed in the backend.",
            ),
            rejected_full: rej("queue_full"),
            rejected_shutdown: rej("shutting_down"),
            rejected_deadline: rej("deadline"),
            rejected_invalid: rej("invalid"),
            rejected_breaker: rej("breaker_open"),
            rejected_infeasible: rej("deadline_infeasible"),
            rejected_tenant: rej("tenant_quota"),
            rejected_brownout: rej("brownout_shed"),
            panics: fault("panic"),
            watchdog_timeouts: fault("watchdog_timeout"),
            breaker_opens: fault("breaker_open"),
            degraded_solves: fault("degraded"),
            batches: registry.counter("lddp_serve_batches_total", &[], "Batches executed."),
            batched_jobs: registry.counter(
                "lddp_serve_batched_jobs_total",
                &[],
                "Jobs that rode in executed batches.",
            ),
            tune_hits: tune("hit"),
            tune_misses: tune("miss"),
            tier_scalar: tier("scalar"),
            tier_bulk: tier("bulk"),
            tier_simd: tier("simd"),
            tier_bitparallel: tier("bitparallel"),
            class_accepted: [class("interactive", "accepted"), class("batch", "accepted")],
            class_completed: [
                class("interactive", "completed"),
                class("batch", "completed"),
            ],
            class_shed: [class("interactive", "shed"), class("batch", "shed")],
            brownout_engaged: brownout("engage"),
            brownout_disengaged: brownout("disengage"),
            stream_bands: registry.counter(
                "lddp_serve_stream_bands_total",
                &[],
                "Band frames emitted by streamed solves.",
            ),
            stream_stalls: registry.counter(
                "lddp_serve_stream_backpressure_stalls_total",
                &[],
                "Band emissions that blocked on a full stream channel \
                 (slow consumer backpressure).",
            ),
            stream_ttfb_s: registry.histogram(
                "lddp_serve_stream_ttfb_seconds",
                &[],
                "Time from admission to the first streamed band frame, seconds.",
            ),
            batch_size: registry.histogram(
                "lddp_serve_batch_size",
                &[],
                "Jobs per executed batch.",
            ),
            total_s: lat("total"),
            queue_s: lat("queue_wait"),
            solve_s: lat("solve"),
            class_latency_s: [class_lat("interactive"), class_lat("batch")],
        }
    }

    /// Records one completed request's latency split (milliseconds in,
    /// stored as seconds).
    pub(crate) fn record_latency(&self, total_ms: f64, queue_ms: f64, solve_ms: f64) {
        self.total_s.observe(total_ms * 1e-3);
        self.queue_s.observe(queue_ms * 1e-3);
        self.solve_s.observe(solve_ms * 1e-3);
    }

    /// Point-in-time copy of every counter and latency distribution.
    pub fn snapshot(
        &self,
        queue_depth: usize,
        in_flight: usize,
        draining: bool,
        brownout_level: u8,
    ) -> StatsSnapshot {
        StatsSnapshot {
            accepted: self.accepted.get(),
            completed: self.completed.get(),
            errors: self.errors.get(),
            rejected_full: self.rejected_full.get(),
            rejected_shutdown: self.rejected_shutdown.get(),
            rejected_deadline: self.rejected_deadline.get(),
            rejected_invalid: self.rejected_invalid.get(),
            rejected_breaker: self.rejected_breaker.get(),
            rejected_infeasible: self.rejected_infeasible.get(),
            rejected_tenant: self.rejected_tenant.get(),
            rejected_brownout: self.rejected_brownout.get(),
            panics: self.panics.get(),
            watchdog_timeouts: self.watchdog_timeouts.get(),
            breaker_opens: self.breaker_opens.get(),
            degraded_solves: self.degraded_solves.get(),
            batches: self.batches.get(),
            batched_jobs: self.batched_jobs.get(),
            tune_hits: self.tune_hits.get(),
            tune_misses: self.tune_misses.get(),
            tier_scalar: self.tier_scalar.get(),
            tier_bulk: self.tier_bulk.get(),
            tier_simd: self.tier_simd.get(),
            tier_bitparallel: self.tier_bitparallel.get(),
            queue_depth,
            in_flight,
            draining,
            brownout_level,
            class_accepted: [self.class_accepted[0].get(), self.class_accepted[1].get()],
            class_completed: [self.class_completed[0].get(), self.class_completed[1].get()],
            class_shed: [self.class_shed[0].get(), self.class_shed[1].get()],
            brownout_engaged: self.brownout_engaged.get(),
            brownout_disengaged: self.brownout_disengaged.get(),
            total: LatencySummary::from_sketch(&self.total_s),
            queue: LatencySummary::from_sketch(&self.queue_s),
            solve: LatencySummary::from_sketch(&self.solve_s),
            class_latency: [
                LatencySummary::from_sketch(&self.class_latency_s[0]),
                LatencySummary::from_sketch(&self.class_latency_s[1]),
            ],
        }
    }
}

/// Percentile summary of one latency kind, milliseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Median (sketch estimate, relative error ≤
    /// [`lddp_trace::live::SKETCH_RELATIVE_ERROR`]).
    pub p50_ms: f64,
    /// 95th percentile (sketch estimate).
    pub p95_ms: f64,
    /// 99th percentile (sketch estimate).
    pub p99_ms: f64,
    /// Exact largest sample.
    pub max_ms: f64,
}

impl LatencySummary {
    /// The summary of a seconds-valued sketch, reported in ms.
    pub(crate) fn from_sketch(sketch: &HistogramSketch) -> LatencySummary {
        LatencySummary {
            count: sketch.count(),
            p50_ms: sketch.quantile(0.50) * 1e3,
            p95_ms: sketch.quantile(0.95) * 1e3,
            p99_ms: sketch.quantile(0.99) * 1e3,
            max_ms: sketch.max() * 1e3,
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"p50_ms\":{},\"p95_ms\":{},\"p99_ms\":{},\"max_ms\":{}}}",
            self.count,
            num(self.p50_ms),
            num(self.p95_ms),
            num(self.p99_ms),
            num(self.max_ms)
        )
    }
}

/// What `GET /stats` serializes.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Requests admitted.
    pub accepted: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests that failed in the backend.
    pub errors: u64,
    /// Rejections: queue at capacity.
    pub rejected_full: u64,
    /// Rejections: draining.
    pub rejected_shutdown: u64,
    /// Rejections: deadline expired in queue.
    pub rejected_deadline: u64,
    /// Rejections: invalid request.
    pub rejected_invalid: u64,
    /// Rejections: circuit breaker open.
    pub rejected_breaker: u64,
    /// Rejections: §IV estimate says the deadline cannot be met.
    pub rejected_infeasible: u64,
    /// Rejections: tenant over admission quota.
    pub rejected_tenant: u64,
    /// Rejections: brownout ladder shedding batch-class admissions.
    pub rejected_brownout: u64,
    /// Backend panics caught and isolated (each answered with a 500).
    pub panics: u64,
    /// Solves withheld for blowing the watchdog budget.
    pub watchdog_timeouts: u64,
    /// Circuit-breaker trips (→ open).
    pub breaker_opens: u64,
    /// Solves that succeeded only after degradation.
    pub degraded_solves: u64,
    /// Batches executed.
    pub batches: u64,
    /// Jobs that rode in those batches.
    pub batched_jobs: u64,
    /// Tuner-cache hits (per batch).
    pub tune_hits: u64,
    /// Tuner-cache misses (per batch).
    pub tune_misses: u64,
    /// Solves that ran on the scalar cell-at-a-time tier.
    pub tier_scalar: u64,
    /// Solves that ran on the bulk run-at-a-time tier.
    pub tier_bulk: u64,
    /// Solves that ran on the SIMD lane tier.
    pub tier_simd: u64,
    /// Solves that ran on the bit-parallel tier.
    pub tier_bitparallel: u64,
    /// Jobs queued right now.
    pub queue_depth: usize,
    /// Jobs being solved right now.
    pub in_flight: usize,
    /// Whether the server is draining.
    pub draining: bool,
    /// Current brownout-ladder level (0 = normal service).
    pub brownout_level: u8,
    /// Requests admitted, by class (interactive, batch).
    pub class_accepted: [u64; 2],
    /// Requests completed, by class.
    pub class_completed: [u64; 2],
    /// Requests shed (deadline, brownout, class budget), by class.
    pub class_shed: [u64; 2],
    /// Brownout-ladder climbs recorded.
    pub brownout_engaged: u64,
    /// Brownout-ladder descents recorded.
    pub brownout_disengaged: u64,
    /// End-to-end latency (admission → reply).
    pub total: LatencySummary,
    /// Queue-wait latency.
    pub queue: LatencySummary,
    /// Solve latency.
    pub solve: LatencySummary,
    /// End-to-end latency by class (interactive, batch).
    pub class_latency: [LatencySummary; 2],
}

impl StatsSnapshot {
    /// Total rejections across reasons.
    pub fn rejected(&self) -> u64 {
        self.rejected_full
            + self.rejected_shutdown
            + self.rejected_deadline
            + self.rejected_invalid
            + self.rejected_breaker
            + self.rejected_infeasible
            + self.rejected_tenant
            + self.rejected_brownout
    }

    /// Mean jobs per executed batch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_jobs as f64 / self.batches as f64
        }
    }

    /// The `GET /stats` JSON body.
    pub fn to_json(&self) -> String {
        let class = |i: usize| {
            format!(
                "{{\"accepted\":{},\"completed\":{},\"shed\":{},\"latency_ms\":{}}}",
                self.class_accepted[i],
                self.class_completed[i],
                self.class_shed[i],
                self.class_latency[i].to_json()
            )
        };
        format!(
            "{{\"accepted\":{},\"completed\":{},\"errors\":{},\
             \"rejected\":{{\"queue_full\":{},\"shutting_down\":{},\"deadline\":{},\"invalid\":{},\"breaker_open\":{},\
             \"deadline_infeasible\":{},\"tenant_quota\":{},\"brownout_shed\":{}}},\
             \"faults\":{{\"panics\":{},\"watchdog_timeouts\":{},\"breaker_opens\":{},\"degraded_solves\":{}}},\
             \"qos\":{{\"brownout_level\":{},\"brownout_engaged\":{},\"brownout_disengaged\":{},\
             \"interactive\":{},\"batch\":{}}},\
             \"batches\":{},\"mean_batch_size\":{},\
             \"tuner_cache\":{{\"hits\":{},\"misses\":{}}},\
             \"tiers\":{{\"scalar\":{},\"bulk\":{},\"simd\":{},\"bitparallel\":{}}},\
             \"queue_depth\":{},\"in_flight\":{},\"draining\":{},\
             \"latency_ms\":{{\"total\":{},\"queue\":{},\"solve\":{}}}}}",
            self.accepted,
            self.completed,
            self.errors,
            self.rejected_full,
            self.rejected_shutdown,
            self.rejected_deadline,
            self.rejected_invalid,
            self.rejected_breaker,
            self.rejected_infeasible,
            self.rejected_tenant,
            self.rejected_brownout,
            self.panics,
            self.watchdog_timeouts,
            self.breaker_opens,
            self.degraded_solves,
            self.brownout_level,
            self.brownout_engaged,
            self.brownout_disengaged,
            class(0),
            class(1),
            self.batches,
            num(self.mean_batch_size()),
            self.tune_hits,
            self.tune_misses,
            self.tier_scalar,
            self.tier_bulk,
            self.tier_simd,
            self.tier_bitparallel,
            self.queue_depth,
            self.in_flight,
            self.draining,
            self.total.to_json(),
            self.queue.to_json(),
            self.solve.to_json(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert!((percentile(&v, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_edge_cases_never_index_out_of_bounds() {
        // Empty input → 0.0 at every q.
        assert_eq!(percentile(&[], 0.0), 0.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[], 1.0), 0.0);
        // Single element → the element, regardless of q.
        assert_eq!(percentile(&[7.0], 0.0), 7.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
        assert_eq!(percentile(&[7.0], 1.0), 7.0);
        // Out-of-range and non-finite q clamp instead of panicking.
        assert_eq!(percentile(&[1.0, 2.0], -3.0), 1.0);
        assert_eq!(percentile(&[1.0, 2.0], 17.0), 2.0);
        assert_eq!(percentile(&[1.0, 2.0], f64::NAN), 1.0);
        assert_eq!(percentile(&[1.0, 2.0], f64::INFINITY), 2.0);
    }

    #[test]
    fn snapshot_serializes_parseable_json() {
        let stats = ServeStats::new();
        stats.accepted.add(3);
        stats.completed.add(2);
        stats.rejected_full.add(1);
        stats.batches.add(2);
        stats.batched_jobs.add(3);
        stats.tier_simd.add(2);
        stats.record_latency(10.0, 2.0, 8.0);
        stats.record_latency(20.0, 4.0, 16.0);
        stats.class_accepted[0].add(2);
        stats.class_shed[1].add(1);
        stats.rejected_tenant.add(1);
        let snap = stats.snapshot(1, 1, false, 2);
        assert_eq!(snap.rejected(), 2);
        assert!((snap.mean_batch_size() - 1.5).abs() < 1e-12);
        let v = lddp_trace::json::parse(&snap.to_json()).unwrap();
        assert_eq!(v.get("accepted").and_then(|j| j.as_f64()), Some(3.0));
        let lat = v.get("latency_ms").unwrap().get("total").unwrap();
        assert_eq!(lat.get("count").and_then(|j| j.as_f64()), Some(2.0));
        assert!(lat.get("p99_ms").and_then(|j| j.as_f64()).unwrap() >= 10.0);
        assert_eq!(
            v.get("rejected")
                .unwrap()
                .get("queue_full")
                .and_then(|j| j.as_f64()),
            Some(1.0)
        );
        let faults = v.get("faults").expect("faults object");
        for key in [
            "panics",
            "watchdog_timeouts",
            "breaker_opens",
            "degraded_solves",
        ] {
            assert!(faults.get(key).and_then(|j| j.as_f64()).is_some(), "{key}");
        }
        assert_eq!(
            v.get("rejected")
                .unwrap()
                .get("breaker_open")
                .and_then(|j| j.as_f64()),
            Some(0.0)
        );
        let tiers = v.get("tiers").expect("tiers object");
        assert_eq!(tiers.get("simd").and_then(|j| j.as_f64()), Some(2.0));
        for key in ["scalar", "bulk", "bitparallel"] {
            assert_eq!(tiers.get(key).and_then(|j| j.as_f64()), Some(0.0), "{key}");
        }
        // The QoS section: brownout level and per-class outcomes.
        let qos = v.get("qos").expect("qos object");
        assert_eq!(
            qos.get("brownout_level").and_then(|j| j.as_f64()),
            Some(2.0)
        );
        let fg = qos.get("interactive").expect("interactive class");
        assert_eq!(fg.get("accepted").and_then(|j| j.as_f64()), Some(2.0));
        let bg = qos.get("batch").expect("batch class");
        assert_eq!(bg.get("shed").and_then(|j| j.as_f64()), Some(1.0));
        assert_eq!(
            v.get("rejected")
                .unwrap()
                .get("tenant_quota")
                .and_then(|j| j.as_f64()),
            Some(1.0)
        );
    }

    /// The sketch replaces the old sample reservoir: memory stays fixed
    /// no matter how many samples arrive, the count is exact, and the
    /// percentiles stay within the sketch's documented relative error.
    #[test]
    fn latency_sketch_is_bounded_and_accurate() {
        use lddp_trace::live::SKETCH_RELATIVE_ERROR;
        let stats = ServeStats::new();
        let n = 200_000u64;
        for i in 1..=n {
            // 1 µs … 200 ms, uniform in index.
            let ms = i as f64 * 1e-3;
            stats.record_latency(ms, ms * 0.25, ms * 0.5);
        }
        let snap = stats.snapshot(0, 0, false, 0);
        assert_eq!(snap.total.count, n);
        let exact_p50 = (n / 2) as f64 * 1e-3;
        let rel = (snap.total.p50_ms - exact_p50).abs() / exact_p50;
        assert!(rel <= SKETCH_RELATIVE_ERROR + 1e-9, "rel={rel}");
        assert!((snap.total.max_ms - n as f64 * 1e-3).abs() < 1e-9);
        assert!(snap.total.p50_ms <= snap.total.p95_ms);
        assert!(snap.total.p95_ms <= snap.total.p99_ms);
        assert!(snap.total.p99_ms <= snap.total.max_ms + 1e-12);
    }

    /// Registry-backed stats are the same objects the exposition
    /// renders: incrementing through `ServeStats` shows up in
    /// `to_prometheus` with no copy step.
    #[test]
    fn registry_backed_stats_feed_the_exposition() {
        let registry = LiveRegistry::new();
        let stats = ServeStats::with_registry(&registry);
        stats.accepted.add(4);
        stats.rejected_breaker.add(1);
        stats.tier_bulk.add(2);
        stats.record_latency(12.0, 1.0, 10.0);
        stats.class_accepted[1].add(3);
        stats.class_latency_s[0].observe(0.012);
        stats.brownout_engaged.inc();
        let text = registry.to_prometheus();
        assert!(text.contains("lddp_serve_accepted_total 4\n"), "{text}");
        assert!(text.contains("lddp_serve_rejected_total{reason=\"breaker_open\"} 1\n"));
        assert!(text.contains("lddp_serve_solves_total{tier=\"bulk\"} 2\n"));
        assert!(text.contains("lddp_serve_latency_seconds_count{kind=\"total\"} 1\n"));
        assert!(
            text.contains("lddp_serve_class_total{class=\"batch\",outcome=\"accepted\"} 3\n"),
            "{text}"
        );
        assert!(text.contains("lddp_serve_class_latency_seconds_count{class=\"interactive\"} 1\n"));
        assert!(text.contains("lddp_serve_brownout_transitions_total{direction=\"engage\"} 1\n"));
    }
}
