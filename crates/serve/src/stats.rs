//! Server-side counters and latency accounting behind `GET /stats`.
//!
//! Counters are lock-free atomics; latency samples go into capped
//! per-kind reservoirs (newest samples win once the cap is reached, via
//! ring overwrite) so a long-lived server's memory stays bounded while
//! percentiles still reflect recent traffic.

use lddp_trace::json::num;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Cap on each latency reservoir (samples, not bytes).
const RESERVOIR_CAP: usize = 65536;

#[derive(Debug, Default)]
struct Reservoir {
    samples: Vec<f64>,
    next: usize,
    total: u64,
}

impl Reservoir {
    fn record(&mut self, v: f64) {
        self.total += 1;
        if self.samples.len() < RESERVOIR_CAP {
            self.samples.push(v);
        } else {
            self.samples[self.next] = v;
            self.next = (self.next + 1) % RESERVOIR_CAP;
        }
    }
}

/// Interpolated percentile of an ascending-sorted slice (`q` in 0..=1).
/// Returns 0 for an empty slice.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Live counters of one server.
#[derive(Debug, Default)]
pub struct ServeStats {
    pub(crate) accepted: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) errors: AtomicU64,
    pub(crate) rejected_full: AtomicU64,
    pub(crate) rejected_shutdown: AtomicU64,
    pub(crate) rejected_deadline: AtomicU64,
    pub(crate) rejected_invalid: AtomicU64,
    pub(crate) rejected_breaker: AtomicU64,
    pub(crate) panics: AtomicU64,
    pub(crate) watchdog_timeouts: AtomicU64,
    pub(crate) breaker_opens: AtomicU64,
    pub(crate) degraded_solves: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) batched_jobs: AtomicU64,
    pub(crate) tune_hits: AtomicU64,
    pub(crate) tune_misses: AtomicU64,
    pub(crate) tier_scalar: AtomicU64,
    pub(crate) tier_bulk: AtomicU64,
    pub(crate) tier_simd: AtomicU64,
    pub(crate) tier_bitparallel: AtomicU64,
    total_ms: Mutex<Reservoir>,
    queue_ms: Mutex<Reservoir>,
    solve_ms: Mutex<Reservoir>,
}

impl ServeStats {
    /// Fresh zeroed stats.
    pub fn new() -> ServeStats {
        ServeStats::default()
    }

    /// Records one completed request's latency split.
    pub(crate) fn record_latency(&self, total_ms: f64, queue_ms: f64, solve_ms: f64) {
        self.total_ms.lock().unwrap().record(total_ms);
        self.queue_ms.lock().unwrap().record(queue_ms);
        self.solve_ms.lock().unwrap().record(solve_ms);
    }

    /// Point-in-time copy of every counter and latency distribution.
    pub fn snapshot(&self, queue_depth: usize, in_flight: usize, draining: bool) -> StatsSnapshot {
        let lat = |m: &Mutex<Reservoir>| -> LatencySummary {
            let r = m.lock().unwrap();
            let mut sorted = r.samples.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            LatencySummary {
                count: r.total,
                p50_ms: percentile(&sorted, 0.50),
                p95_ms: percentile(&sorted, 0.95),
                p99_ms: percentile(&sorted, 0.99),
                max_ms: sorted.last().copied().unwrap_or(0.0),
            }
        };
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        StatsSnapshot {
            accepted: g(&self.accepted),
            completed: g(&self.completed),
            errors: g(&self.errors),
            rejected_full: g(&self.rejected_full),
            rejected_shutdown: g(&self.rejected_shutdown),
            rejected_deadline: g(&self.rejected_deadline),
            rejected_invalid: g(&self.rejected_invalid),
            rejected_breaker: g(&self.rejected_breaker),
            panics: g(&self.panics),
            watchdog_timeouts: g(&self.watchdog_timeouts),
            breaker_opens: g(&self.breaker_opens),
            degraded_solves: g(&self.degraded_solves),
            batches: g(&self.batches),
            batched_jobs: g(&self.batched_jobs),
            tune_hits: g(&self.tune_hits),
            tune_misses: g(&self.tune_misses),
            tier_scalar: g(&self.tier_scalar),
            tier_bulk: g(&self.tier_bulk),
            tier_simd: g(&self.tier_simd),
            tier_bitparallel: g(&self.tier_bitparallel),
            queue_depth,
            in_flight,
            draining,
            total: lat(&self.total_ms),
            queue: lat(&self.queue_ms),
            solve: lat(&self.solve_ms),
        }
    }
}

/// Percentile summary of one latency kind, milliseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    /// Samples recorded overall (may exceed the reservoir cap).
    pub count: u64,
    /// Median.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Largest retained sample.
    pub max_ms: f64,
}

impl LatencySummary {
    fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"p50_ms\":{},\"p95_ms\":{},\"p99_ms\":{},\"max_ms\":{}}}",
            self.count,
            num(self.p50_ms),
            num(self.p95_ms),
            num(self.p99_ms),
            num(self.max_ms)
        )
    }
}

/// What `GET /stats` serializes.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Requests admitted.
    pub accepted: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests that failed in the backend.
    pub errors: u64,
    /// Rejections: queue at capacity.
    pub rejected_full: u64,
    /// Rejections: draining.
    pub rejected_shutdown: u64,
    /// Rejections: deadline expired in queue.
    pub rejected_deadline: u64,
    /// Rejections: invalid request.
    pub rejected_invalid: u64,
    /// Rejections: circuit breaker open.
    pub rejected_breaker: u64,
    /// Backend panics caught and isolated (each answered with a 500).
    pub panics: u64,
    /// Solves withheld for blowing the watchdog budget.
    pub watchdog_timeouts: u64,
    /// Circuit-breaker trips (→ open).
    pub breaker_opens: u64,
    /// Solves that succeeded only after degradation.
    pub degraded_solves: u64,
    /// Batches executed.
    pub batches: u64,
    /// Jobs that rode in those batches.
    pub batched_jobs: u64,
    /// Tuner-cache hits (per batch).
    pub tune_hits: u64,
    /// Tuner-cache misses (per batch).
    pub tune_misses: u64,
    /// Solves that ran on the scalar cell-at-a-time tier.
    pub tier_scalar: u64,
    /// Solves that ran on the bulk run-at-a-time tier.
    pub tier_bulk: u64,
    /// Solves that ran on the SIMD lane tier.
    pub tier_simd: u64,
    /// Solves that ran on the bit-parallel tier.
    pub tier_bitparallel: u64,
    /// Jobs queued right now.
    pub queue_depth: usize,
    /// Jobs being solved right now.
    pub in_flight: usize,
    /// Whether the server is draining.
    pub draining: bool,
    /// End-to-end latency (admission → reply).
    pub total: LatencySummary,
    /// Queue-wait latency.
    pub queue: LatencySummary,
    /// Solve latency.
    pub solve: LatencySummary,
}

impl StatsSnapshot {
    /// Total rejections across reasons.
    pub fn rejected(&self) -> u64 {
        self.rejected_full
            + self.rejected_shutdown
            + self.rejected_deadline
            + self.rejected_invalid
            + self.rejected_breaker
    }

    /// Mean jobs per executed batch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_jobs as f64 / self.batches as f64
        }
    }

    /// The `GET /stats` JSON body.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"accepted\":{},\"completed\":{},\"errors\":{},\
             \"rejected\":{{\"queue_full\":{},\"shutting_down\":{},\"deadline\":{},\"invalid\":{},\"breaker_open\":{}}},\
             \"faults\":{{\"panics\":{},\"watchdog_timeouts\":{},\"breaker_opens\":{},\"degraded_solves\":{}}},\
             \"batches\":{},\"mean_batch_size\":{},\
             \"tuner_cache\":{{\"hits\":{},\"misses\":{}}},\
             \"tiers\":{{\"scalar\":{},\"bulk\":{},\"simd\":{},\"bitparallel\":{}}},\
             \"queue_depth\":{},\"in_flight\":{},\"draining\":{},\
             \"latency_ms\":{{\"total\":{},\"queue\":{},\"solve\":{}}}}}",
            self.accepted,
            self.completed,
            self.errors,
            self.rejected_full,
            self.rejected_shutdown,
            self.rejected_deadline,
            self.rejected_invalid,
            self.rejected_breaker,
            self.panics,
            self.watchdog_timeouts,
            self.breaker_opens,
            self.degraded_solves,
            self.batches,
            num(self.mean_batch_size()),
            self.tune_hits,
            self.tune_misses,
            self.tier_scalar,
            self.tier_bulk,
            self.tier_simd,
            self.tier_bitparallel,
            self.queue_depth,
            self.in_flight,
            self.draining,
            self.total.to_json(),
            self.queue.to_json(),
            self.solve.to_json(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert!((percentile(&v, 0.5) - 2.5).abs() < 1e-12);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn snapshot_serializes_parseable_json() {
        let stats = ServeStats::new();
        stats.accepted.fetch_add(3, Ordering::Relaxed);
        stats.completed.fetch_add(2, Ordering::Relaxed);
        stats.rejected_full.fetch_add(1, Ordering::Relaxed);
        stats.batches.fetch_add(2, Ordering::Relaxed);
        stats.batched_jobs.fetch_add(3, Ordering::Relaxed);
        stats.tier_simd.fetch_add(2, Ordering::Relaxed);
        stats.record_latency(10.0, 2.0, 8.0);
        stats.record_latency(20.0, 4.0, 16.0);
        let snap = stats.snapshot(1, 1, false);
        assert_eq!(snap.rejected(), 1);
        assert!((snap.mean_batch_size() - 1.5).abs() < 1e-12);
        let v = lddp_trace::json::parse(&snap.to_json()).unwrap();
        assert_eq!(v.get("accepted").and_then(|j| j.as_f64()), Some(3.0));
        let lat = v.get("latency_ms").unwrap().get("total").unwrap();
        assert_eq!(lat.get("count").and_then(|j| j.as_f64()), Some(2.0));
        assert!(lat.get("p99_ms").and_then(|j| j.as_f64()).unwrap() >= 10.0);
        assert_eq!(
            v.get("rejected")
                .unwrap()
                .get("queue_full")
                .and_then(|j| j.as_f64()),
            Some(1.0)
        );
        let faults = v.get("faults").expect("faults object");
        for key in [
            "panics",
            "watchdog_timeouts",
            "breaker_opens",
            "degraded_solves",
        ] {
            assert!(faults.get(key).and_then(|j| j.as_f64()).is_some(), "{key}");
        }
        assert_eq!(
            v.get("rejected")
                .unwrap()
                .get("breaker_open")
                .and_then(|j| j.as_f64()),
            Some(0.0)
        );
        let tiers = v.get("tiers").expect("tiers object");
        assert_eq!(tiers.get("simd").and_then(|j| j.as_f64()), Some(2.0));
        for key in ["scalar", "bulk", "bitparallel"] {
            assert_eq!(tiers.get(key).and_then(|j| j.as_f64()), Some(0.0), "{key}");
        }
    }

    #[test]
    fn reservoir_overwrites_oldest_beyond_cap() {
        let mut r = Reservoir::default();
        for i in 0..(RESERVOIR_CAP + 10) {
            r.record(i as f64);
        }
        assert_eq!(r.samples.len(), RESERVOIR_CAP);
        assert_eq!(r.total, (RESERVOIR_CAP + 10) as u64);
        // The first ten slots now hold the newest samples.
        assert_eq!(r.samples[0], RESERVOIR_CAP as f64);
    }
}
