//! The serving engine: admission → bounded queue → batching worker
//! pool → backend solve, with per-request tracing and graceful drain.
//!
//! A [`Server`] is wired to a [`SolveBackend`] (the thing that actually
//! tunes and solves — `lddp::serve_backend::FrameworkBackend` in the
//! umbrella crate, a mock in tests) and a
//! [`TraceSink`](lddp_trace::TraceSink). [`Server::run`] owns the
//! thread topology: it spawns the worker pool (and, given a listener,
//! the HTTP front end) inside one `std::thread::scope`, hands the
//! caller an in-process [`Client`], and on return of the caller's
//! closure initiates shutdown and drains — every admitted request is
//! answered before `run` returns.
//!
//! ```
//! use lddp_serve::{BackendSolve, ServeConfig, Server, SolveBackend, SolveRequest};
//! use lddp_core::kernel::ExecTier;
//! use lddp_core::schedule::ScheduleParams;
//! use lddp_core::tuner_cache::TunedConfig;
//! use lddp_trace::{NullSink, TraceSink};
//!
//! struct Echo;
//! impl SolveBackend for Echo {
//!     fn tune(&self, _req: &SolveRequest, _sink: &dyn TraceSink)
//!         -> Result<(TunedConfig, bool), String> {
//!         Ok((TunedConfig::new(ScheduleParams::new(0, 0), ExecTier::Scalar), false))
//!     }
//!     fn solve(&self, req: &SolveRequest, config: TunedConfig, _sink: &dyn TraceSink)
//!         -> Result<BackendSolve, String> {
//!         Ok(BackendSolve {
//!             answer: format!("echo {}", req.n),
//!             virtual_ms: 0.1,
//!             params: config.params,
//!             tier: config.tier,
//!             memory_mode: config.memory_mode,
//!             table_bytes: 0,
//!             degraded: vec![],
//!             placed_on: None,
//!             devices: 1,
//!         })
//!     }
//! }
//!
//! let backend = Echo;
//! let server = Server::new(ServeConfig::default(), &backend, &NullSink);
//! let answer = server
//!     .run(None, |client| client.solve(SolveRequest::new("x", 7)).unwrap().answer);
//! assert_eq!(answer, "echo 7");
//! ```

use crate::brownout::{Brownout, BrownoutConfig};
use crate::http::{self, ResponseOptions};
use crate::job::{Priority, RejectReason, ServeError, SolveRequest, SolveResponse};
use crate::queue::{Job, JobQueue};
use crate::stats::{ServeStats, StatsSnapshot};
use crate::stream::BandFrame;
use lddp_chaos::{mix64, BreakerConfig, BreakerState, CircuitBreaker, FaultInjector};
use lddp_core::kernel::{avx512_available, simd_backend, ExecTier, MemoryMode};
use lddp_core::schedule::ScheduleParams;
use lddp_core::tuner_cache::TunedConfig;
use lddp_trace::live::LiveRegistry;
use lddp_trace::{catalog, chrome, tracks, Span, TraceSink};
use std::collections::HashMap;
use std::io::ErrorKind;
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Sizing knobs of one server.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing batches.
    pub workers: usize,
    /// Admission-queue capacity (requests beyond it are rejected).
    pub queue_capacity: usize,
    /// Most jobs one batch may carry.
    pub max_batch: usize,
    /// Deadline applied to requests that don't carry their own,
    /// milliseconds (`None` = wait forever).
    pub default_deadline_ms: Option<u64>,
    /// Per-solve watchdog budget, milliseconds: a solve that takes
    /// longer gets its answer withheld and a 504, and charges the
    /// circuit breaker (`None` = no watchdog).
    pub watchdog_ms: Option<u64>,
    /// Consecutive backend failures (errors, panics, watchdog
    /// overruns) that trip the circuit breaker open.
    pub breaker_failure_threshold: usize,
    /// How long a tripped breaker stays open before probing again,
    /// milliseconds.
    pub breaker_open_ms: u64,
    /// Admission budget of the batch service class (`None` = half of
    /// `queue_capacity`, at least 1). The interactive class always gets
    /// the full `queue_capacity`.
    pub batch_queue_capacity: Option<usize>,
    /// Per-tenant admission quota, requests per second (`None` = no
    /// quotas). Enforced as a token bucket per distinct `tenant`
    /// value; over-quota requests get `429 tenant_quota`.
    pub tenant_quota_rps: Option<f64>,
    /// Token-bucket burst: how many back-to-back requests a tenant may
    /// land before the per-second rate applies.
    pub tenant_quota_burst: f64,
    /// Brownout-ladder watermarks and dwell counts.
    pub brownout: BrownoutConfig,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 4,
            queue_capacity: 256,
            max_batch: 8,
            default_deadline_ms: None,
            watchdog_ms: None,
            breaker_failure_threshold: 5,
            breaker_open_ms: 2000,
            batch_queue_capacity: None,
            tenant_quota_rps: None,
            tenant_quota_burst: 8.0,
            brownout: BrownoutConfig::default(),
        }
    }
}

/// What a backend returns for one solved request.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendSolve {
    /// Headline answer text (the oracle-checkable payload).
    pub answer: String,
    /// Modelled solve time on the platform, milliseconds.
    pub virtual_ms: f64,
    /// The parameters actually executed (post-clamping).
    pub params: ScheduleParams,
    /// The execution tier the solve actually ran on (may be lower than
    /// the tuned tier if the host or kernel cannot support it).
    pub tier: ExecTier,
    /// Memory mode the solve ran in: `Full` materialized the table,
    /// `Rolling` kept only the live wave-band ring.
    pub memory_mode: MemoryMode,
    /// Peak DP working-set bytes of the solve (full table or band
    /// ring), echoed into the response's timings breakdown.
    pub table_bytes: usize,
    /// Degradation steps taken to produce this answer (stable codes
    /// such as `bulk_to_scalar`); empty for a full-configuration solve.
    pub degraded: Vec<String>,
    /// Fleet platform this solve actually ran on, when the backend is
    /// a fleet (`None` for single-platform backends; the server falls
    /// back to the batch plan's placement).
    pub placed_on: Option<String>,
    /// Simulated devices that cooperated on the grid (1 = ordinary
    /// solve, >1 = cross-device `MultiPlan` band split).
    pub devices: usize,
}

/// The batch-level decision a backend makes before per-request solves:
/// the tuned configuration plus, for fleet backends, where the batch
/// was placed and what completion the dispatcher predicted.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchPlan {
    /// Tuned schedule parameters and execution tier for the batch.
    pub config: TunedConfig,
    /// Whether `config` came from the tuner cache.
    pub cache_hit: bool,
    /// Fleet platform the dispatcher chose (`None` without a fleet).
    pub placement: Option<String>,
    /// The dispatcher's predicted completion time for one batch
    /// member, model seconds (`None` without a fleet).
    pub predicted_s: Option<f64>,
}

/// Depth of the bounded band-frame channel between a streamed solve
/// and its consumer. Small on purpose: once a slow reader is this many
/// bands behind, the solving pool stalls at its next wave barrier
/// instead of buffering further — bounded memory, real backpressure.
const STREAM_CHANNEL_DEPTH: usize = 4;

/// A submitted streaming solve: band frames arrive on `bands` while
/// the solve runs, then `done` yields the final outcome. Dropping the
/// handle mid-stream disables further emission (the solve still runs
/// to completion server-side).
#[derive(Debug)]
pub struct StreamHandle {
    /// The request's wire trace id (`{:016x}`), known at admission so
    /// streaming front ends can send it before the solve finishes.
    pub trace_id: String,
    /// Band frames, in band order, closed when the solve finishes.
    pub bands: mpsc::Receiver<BandFrame>,
    /// The final outcome; ready once `bands` has closed.
    pub done: mpsc::Receiver<Result<SolveResponse, ServeError>>,
}

/// Readiness of one backend worker pool, surfaced through `/healthz`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolHealth {
    /// Pool name ("hetero-high", …).
    pub platform: String,
    /// `true` when every worker of the pool is alive.
    pub ready: bool,
    /// Dead workers awaiting a heal.
    pub dead_workers: usize,
}

/// The pluggable solving side of the server.
///
/// `tune` runs **once per batch** with the batch leader as the probe —
/// implementations are expected to consult a
/// [`TunerCache`](lddp_core::tuner_cache::TunerCache) keyed by
/// `(pattern, dims bucket, platform)` and report whether they hit.
/// `solve` then runs once per request with the shared parameters.
pub trait SolveBackend: Sync {
    /// Admission-time validation; an `Err` rejects the request as
    /// [`RejectReason::Invalid`] without queueing it.
    fn validate(&self, _req: &SolveRequest) -> Result<(), String> {
        Ok(())
    }

    /// Produces the tuned schedule parameters and execution tier for
    /// the batch led by `probe`, returning `(config, cache_hit)`.
    fn tune(
        &self,
        probe: &SolveRequest,
        sink: &dyn TraceSink,
    ) -> Result<(TunedConfig, bool), String>;

    /// Solves one request with the batch's tuned configuration.
    fn solve(
        &self,
        req: &SolveRequest,
        config: TunedConfig,
        sink: &dyn TraceSink,
    ) -> Result<BackendSolve, String>;

    /// Produces the full batch plan: tuned configuration plus, for
    /// fleet backends, the dispatcher's placement and predicted
    /// completion. The default wraps [`SolveBackend::tune`] with no
    /// placement, so single-platform backends need not implement it.
    fn plan(&self, probe: &SolveRequest, sink: &dyn TraceSink) -> Result<BatchPlan, String> {
        let (config, cache_hit) = self.tune(probe, sink)?;
        Ok(BatchPlan {
            config,
            cache_hit,
            placement: None,
            predicted_s: None,
        })
    }

    /// Solves one request under a batch plan. The default ignores the
    /// placement half and delegates to [`SolveBackend::solve`]; fleet
    /// backends override it to execute on the placed pool (and to
    /// route large grids through cross-device `MultiPlan` splits).
    fn solve_placed(
        &self,
        req: &SolveRequest,
        plan: &BatchPlan,
        sink: &dyn TraceSink,
    ) -> Result<BackendSolve, String> {
        self.solve(req, plan.config, sink)
    }

    /// Solves one request under a batch plan while streaming completed
    /// wave-bands through `emit` (`POST /solve?stream=1`). `emit` is
    /// called once per sealed band, in band order, from inside the
    /// solve; it may block — that is the backpressure path — and
    /// returns `false` to tell the backend to stop emitting while the
    /// solve runs to completion. The final answer must be bit-identical
    /// to [`SolveBackend::solve_placed`] on the same request. The
    /// default delegates to `solve_placed` and emits nothing, so
    /// backends without a streaming path still answer (the client just
    /// sees zero band frames before the done frame).
    fn solve_streamed(
        &self,
        req: &SolveRequest,
        plan: &BatchPlan,
        sink: &dyn TraceSink,
        emit: &(dyn Fn(crate::stream::BandFrame) -> bool + Sync),
    ) -> Result<BackendSolve, String> {
        let _ = emit;
        self.solve_placed(req, plan, sink)
    }

    /// Cheap modelled solve-time estimate for `req`, milliseconds (the
    /// paper's §IV cost model). Admission uses it to reject requests
    /// whose deadline cannot possibly be met (`504
    /// deadline_infeasible`) without spending a solve slot. `None` (the
    /// default) disables feasibility checking.
    fn estimate_ms(&self, _req: &SolveRequest) -> Option<f64> {
        None
    }

    /// Whether `req`'s problem supports the rolling (wave-band) memory
    /// mode — consulted before the brownout ladder forces rolling onto
    /// batch-class solves. `false` (the default) opts out.
    fn supports_rolling(&self, _req: &SolveRequest) -> bool {
        false
    }

    /// Per-pool readiness for `/healthz`. Empty (the default) means
    /// the backend has no distinguishable pools to report.
    fn pool_health(&self) -> Vec<PoolHealth> {
        Vec::new()
    }

    /// A JSON object describing fleet state, spliced into `/stats`
    /// under the `"fleet"` key. `None` (the default) omits the key.
    fn fleet_stats_json(&self) -> Option<String> {
        None
    }
}

/// The batching solve server. See the module docs for the lifecycle.
pub struct Server<'a> {
    config: ServeConfig,
    backend: &'a dyn SolveBackend,
    sink: &'a (dyn TraceSink + Sync),
    queue: JobQueue,
    stats: ServeStats,
    live: Arc<LiveRegistry>,
    trace_seed: u64,
    breaker: CircuitBreaker,
    injector: Option<&'a (dyn FaultInjector + 'a)>,
    epoch: Instant,
    next_id: AtomicU64,
    in_flight: AtomicUsize,
    /// Currently open streaming responses (`lddp_serve_stream_open`).
    stream_open: AtomicUsize,
    /// The brownout ladder's state machine, fed queue-fill
    /// observations at admission and dequeue.
    brownout: Mutex<Brownout>,
    /// The ladder's current level, published for lock-free reads on
    /// the admission and worker hot paths.
    brownout_level: AtomicU8,
    /// Per-tenant admission token buckets (lazily created).
    tenants: Mutex<HashMap<String, TenantBucket>>,
    shutdown: Mutex<bool>,
    shutdown_cv: Condvar,
}

/// One tenant's admission token bucket.
#[derive(Debug)]
struct TenantBucket {
    tokens: f64,
    last: Instant,
}

impl<'a> Server<'a> {
    /// A server wired to `backend` and `sink` (pass
    /// [`NullSink`](lddp_trace::NullSink) for untraced serving).
    pub fn new(
        config: ServeConfig,
        backend: &'a (dyn SolveBackend + 'a),
        sink: &'a (dyn TraceSink + Sync + 'a),
    ) -> Server<'a> {
        let batch_budget = config
            .batch_queue_capacity
            .unwrap_or((config.queue_capacity / 2).max(1));
        let queue = JobQueue::with_budgets(config.queue_capacity, batch_budget);
        let breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: config.breaker_failure_threshold as u32,
            open_for: Duration::from_millis(config.breaker_open_ms),
            half_open_probes: 1,
        });
        let live = Arc::new(LiveRegistry::new());
        let brownout = Brownout::new(config.brownout);
        Server {
            config,
            backend,
            sink,
            queue,
            stats: ServeStats::with_registry(&live),
            live,
            trace_seed: 0x1dd9_7e1e_3e72_90aa,
            breaker,
            injector: None,
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            in_flight: AtomicUsize::new(0),
            stream_open: AtomicUsize::new(0),
            brownout: Mutex::new(brownout),
            brownout_level: AtomicU8::new(0),
            tenants: Mutex::new(HashMap::new()),
            shutdown: Mutex::new(false),
            shutdown_cv: Condvar::new(),
        }
    }

    /// Replaces the server's private [`LiveRegistry`] with a shared one
    /// so other components (engine pool, tuner, chaos plan) publish
    /// into the same `/metrics` exposition. Call before [`Server::run`]:
    /// the serve metric families re-register on the new registry and
    /// counts recorded so far stay behind on the old one.
    pub fn attach_live(&mut self, live: Arc<LiveRegistry>) {
        self.stats = ServeStats::with_registry(&live);
        self.live = live;
    }

    /// The live registry this server publishes into (shared after
    /// [`Server::attach_live`]).
    pub fn live(&self) -> &Arc<LiveRegistry> {
        &self.live
    }

    /// Seeds per-request trace-id generation (ids are
    /// `mix64(seed + request_id)`), making wire-visible trace ids
    /// reproducible in tests and chaos campaigns.
    pub fn set_trace_seed(&mut self, seed: u64) {
        self.trace_seed = seed;
    }

    /// [`Server::new`] plus a fault injector for chaos campaigns: the
    /// server draws torn/slow connections at accept time and queue
    /// stalls at dequeue time from it. Production servers never attach
    /// one — the hooks cost nothing when absent.
    pub fn with_injector(
        config: ServeConfig,
        backend: &'a (dyn SolveBackend + 'a),
        sink: &'a (dyn TraceSink + Sync + 'a),
        injector: &'a (dyn FaultInjector + 'a),
    ) -> Server<'a> {
        let mut server = Server::new(config, backend, sink);
        server.injector = Some(injector);
        server
    }

    /// Runs the worker pool (and, with a listener, the HTTP front end),
    /// executes `body` with an in-process [`Client`], then shuts down
    /// gracefully: admission closes, queued jobs drain, every thread
    /// joins. `body`'s return value is passed through.
    pub fn run<R>(
        &self,
        listener: Option<TcpListener>,
        body: impl FnOnce(&Client<'_, 'a>) -> R,
    ) -> R {
        thread::scope(|s| {
            for idx in 0..self.config.workers.max(1) {
                s.spawn(move || self.worker_loop(idx));
            }
            if let Some(listener) = &listener {
                listener
                    .set_nonblocking(true)
                    .expect("listener supports nonblocking accept");
                s.spawn(move || self.http_loop(s, listener));
            }
            let client = Client { server: self };
            // A panicking body (a failed assertion in a test closure)
            // must still shut the server down, or the scope would join
            // workers that never see the signal and deadlock.
            let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&client)));
            self.initiate_shutdown();
            match out {
                Ok(out) => out,
                Err(payload) => std::panic::resume_unwind(payload),
            }
        })
    }

    /// Stops admission and wakes everything; idempotent.
    pub fn initiate_shutdown(&self) {
        self.queue.close();
        *self.shutdown.lock().unwrap() = true;
        self.shutdown_cv.notify_all();
    }

    fn is_shutdown(&self) -> bool {
        *self.shutdown.lock().unwrap()
    }

    /// Seconds since the server epoch (span timestamps).
    fn since_epoch(&self, t: Instant) -> f64 {
        t.duration_since(self.epoch).as_secs_f64()
    }

    /// Point-in-time stats.
    pub fn snapshot(&self) -> StatsSnapshot {
        self.stats.snapshot(
            self.queue.depth(),
            self.in_flight.load(Ordering::Relaxed),
            !self.queue.is_open(),
            self.brownout_level.load(Ordering::Relaxed),
        )
    }

    /// Current brownout-ladder level (0 = normal service).
    pub fn brownout_level(&self) -> u8 {
        self.brownout_level.load(Ordering::Relaxed)
    }

    /// Feeds the ladder one queue-fill observation, publishing the new
    /// level and recording any transition in the stats, the flight
    /// recorder, and the trace sink.
    fn observe_pressure(&self) {
        let fill = self.queue.fill();
        let transition = {
            let mut ladder = self.brownout.lock().unwrap();
            let t = ladder.observe(fill);
            if t.is_some() {
                self.brownout_level.store(ladder.level(), Ordering::Relaxed);
            }
            t
        };
        if let Some(t) = transition {
            if t.to > t.from {
                self.stats.brownout_engaged.inc();
            } else {
                self.stats.brownout_disengaged.inc();
            }
            let span = Span::new(
                catalog::SPAN_BROWNOUT,
                tracks::SERVE_QUEUE,
                self.since_epoch(Instant::now()),
                0.0,
            )
            .with_arg("from", t.from as u64)
            .with_arg("to", t.to as u64);
            self.live.flight().record_span(span.clone());
            if self.sink.enabled() {
                self.sink.span(span);
            }
        }
    }

    /// Bumps the per-tenant outcome counter (skipped for unattributed
    /// requests so the family stays low-cardinality by default).
    fn tenant_outcome(&self, tenant: &str, outcome: &str) {
        if tenant.is_empty() {
            return;
        }
        self.live
            .counter(
                "lddp_serve_tenant_total",
                &[("tenant", tenant), ("outcome", outcome)],
                "Per-tenant request outcomes at admission.",
            )
            .inc();
    }

    /// Checks (and charges) the submitting tenant's token bucket.
    /// `Ok` when quotas are off, the request is unattributed (no
    /// `tenant` field — quotas meter named tenants only), or a token
    /// was available.
    fn check_tenant_quota(&self, tenant: &str) -> Result<(), u64> {
        let Some(rps) = self.config.tenant_quota_rps else {
            return Ok(());
        };
        if rps <= 0.0 || tenant.is_empty() {
            return Ok(());
        }
        let burst = self.config.tenant_quota_burst.max(1.0);
        let now = Instant::now();
        let mut tenants = self.tenants.lock().unwrap();
        let bucket = tenants
            .entry(tenant.to_string())
            .or_insert_with(|| TenantBucket {
                tokens: burst,
                last: now,
            });
        let dt = now.duration_since(bucket.last).as_secs_f64();
        bucket.tokens = (bucket.tokens + dt * rps).min(burst);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            Err(((1.0 - bucket.tokens) / rps).ceil().max(1.0) as u64)
        }
    }

    // ---- admission -------------------------------------------------

    fn submit(
        &self,
        req: SolveRequest,
    ) -> Result<mpsc::Receiver<Result<SolveResponse, ServeError>>, RejectReason> {
        self.submit_inner(req, None).map(|(_, rx)| rx)
    }

    /// Streaming admission: same validation, breaker, quota, QoS, and
    /// brownout gates as [`Server::submit`] — a stream is admitted (or
    /// shed) exactly like any other request — plus a bounded band
    /// channel wired into the job.
    fn submit_stream(&self, req: SolveRequest) -> Result<StreamHandle, RejectReason> {
        let (band_tx, band_rx) = mpsc::sync_channel(STREAM_CHANNEL_DEPTH);
        let (trace_id, done) = self.submit_inner(req, Some(band_tx))?;
        Ok(StreamHandle {
            trace_id,
            bands: band_rx,
            done,
        })
    }

    #[allow(clippy::type_complexity)]
    fn submit_inner(
        &self,
        req: SolveRequest,
        stream: Option<mpsc::SyncSender<BandFrame>>,
    ) -> Result<(String, mpsc::Receiver<Result<SolveResponse, ServeError>>), RejectReason> {
        if let Err(msg) = self.backend.validate(&req) {
            self.stats.rejected_invalid.inc();
            if self.sink.enabled() {
                self.sink.count(catalog::CTR_REJECTED_INVALID, 1);
            }
            return Err(RejectReason::Invalid(msg));
        }
        if let Err(wait) = self.breaker.allow() {
            self.stats.rejected_breaker.inc();
            if self.sink.enabled() {
                self.sink.count(catalog::CTR_REJECTED_BREAKER, 1);
            }
            return Err(RejectReason::BreakerOpen {
                retry_after_s: wait.as_secs().max(1),
            });
        }
        // Injected admission storm: a seeded burst of synthetic
        // batch-class arrivals rides in on this (valid) request,
        // attributed to a reserved tenant. The clones take the normal
        // admission path — brownout shedding and class budgets apply —
        // with their receivers dropped, so answers evaporate without a
        // submitter. This is the overload the brownout ladder exists
        // to contain, made reproducible.
        if let Some(inj) = self.injector {
            if let Some(burst) = inj.admission_storm() {
                self.chaos_injected("admission_storm");
                for _ in 0..burst {
                    let mut clone = req.clone();
                    clone.priority = Priority::Batch;
                    clone.tenant = "chaos-storm".to_string();
                    let _ = self.admit(clone, None);
                }
            }
        }
        if let Err(retry_after_s) = self.check_tenant_quota(&req.tenant) {
            self.stats.rejected_tenant.inc();
            if self.sink.enabled() {
                self.sink.count(catalog::CTR_REJECTED_TENANT, 1);
            }
            self.tenant_outcome(&req.tenant, "rejected");
            return Err(RejectReason::TenantQuota {
                tenant: req.tenant.clone(),
                retry_after_s,
            });
        }
        self.admit(req, stream)
    }

    /// Post-validation admission: deadline defaulting, §IV
    /// feasibility, brownout shedding, and the queue push — shared by
    /// real submissions and injected storm arrivals.
    #[allow(clippy::type_complexity)]
    fn admit(
        &self,
        mut req: SolveRequest,
        stream: Option<mpsc::SyncSender<BandFrame>>,
    ) -> Result<(String, mpsc::Receiver<Result<SolveResponse, ServeError>>), RejectReason> {
        let class = req.priority.index();
        if req.deadline_ms.is_none() {
            req.deadline_ms = self.config.default_deadline_ms;
        }
        // §IV feasibility: if the cost model says the solve alone
        // outruns the deadline, fail fast instead of letting the
        // request queue, solve, and time out anyway.
        if let Some(deadline_ms) = req.deadline_ms {
            if let Some(estimate) = self.backend.estimate_ms(&req) {
                if estimate.is_finite() && estimate > deadline_ms as f64 {
                    self.stats.rejected_infeasible.inc();
                    self.stats.class_shed[class].inc();
                    if self.sink.enabled() {
                        self.sink.count(catalog::CTR_REJECTED_INFEASIBLE, 1);
                    }
                    self.tenant_outcome(&req.tenant, "rejected");
                    return Err(RejectReason::DeadlineInfeasible {
                        estimate_ms: estimate.ceil() as u64,
                        deadline_ms,
                    });
                }
            }
        }
        // Brownout level ≥ 1: the batch class is shed at admission.
        // Interactive traffic is never shed by the ladder.
        let level = self.brownout_level();
        if level >= 1 && req.priority == Priority::Batch {
            self.stats.rejected_brownout.inc();
            self.stats.class_shed[class].inc();
            if self.sink.enabled() {
                self.sink.count(catalog::CTR_REJECTED_BROWNOUT, 1);
            }
            self.tenant_outcome(&req.tenant, "rejected");
            self.observe_pressure();
            return Err(RejectReason::BrownoutShed {
                level,
                retry_after_s: 1,
            });
        }
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let tenant = req.tenant.clone();
        let trace_id = mix64(self.trace_seed.wrapping_add(id));
        let job = Job {
            id,
            trace_id,
            deadline: req.deadline_ms.map(|ms| now + Duration::from_millis(ms)),
            req,
            enqueued: now,
            tx,
            stream,
        };
        let out = match self.queue.push(job) {
            Ok(depth) => {
                self.stats.accepted.inc();
                self.stats.class_accepted[class].inc();
                self.tenant_outcome(&tenant, "accepted");
                if self.sink.enabled() {
                    self.sink.count(catalog::CTR_ACCEPTED, 1);
                    self.sink.sample(
                        tracks::SERVE_QUEUE,
                        catalog::SMP_QUEUE_DEPTH,
                        self.since_epoch(now),
                        depth as f64,
                    );
                }
                Ok((format!("{trace_id:016x}"), rx))
            }
            Err((_job, reason)) => {
                let (counter, name) = match &reason {
                    RejectReason::QueueFull { .. } => {
                        self.stats.class_shed[class].inc();
                        (&self.stats.rejected_full, catalog::CTR_REJECTED_FULL)
                    }
                    _ => (
                        &self.stats.rejected_shutdown,
                        catalog::CTR_REJECTED_SHUTDOWN,
                    ),
                };
                counter.inc();
                self.tenant_outcome(&tenant, "rejected");
                if self.sink.enabled() {
                    self.sink.count(name, 1);
                }
                Err(reason)
            }
        };
        // Every admission attempt is a pressure observation — floods
        // climb the ladder even when nothing is being dequeued.
        self.observe_pressure();
        out
    }

    // ---- workers ---------------------------------------------------

    fn worker_loop(&self, idx: usize) {
        let busy = self.live.fcounter(
            "lddp_serve_worker_busy_seconds_total",
            &[("worker", &idx.to_string())],
            "Wall-clock seconds this serve worker spent processing batches.",
        );
        loop {
            // Brownout level ≥ 2 caps batch concurrency: only worker 0
            // still takes batch-class work, so interactive batches
            // always find a free worker while the backlog drains.
            let allow_batch = self.brownout_level() < 2 || idx == 0;
            let Some(popped) = self
                .queue
                .pop_batch_filtered(self.config.max_batch, allow_batch)
            else {
                return;
            };
            // Every dequeue is a pressure observation — this is what
            // walks the ladder back down as the flood drains, even
            // with no new admissions arriving.
            self.observe_pressure();
            // Injected queue stall: the worker sits on its batch, so
            // queued deadlines keep ticking — exactly the failure a
            // stalled dequeue path produces.
            if let Some(inj) = self.injector {
                if let Some(stall) = inj.queue_stall() {
                    self.chaos_injected("queue_stall");
                    thread::sleep(stall);
                }
            }
            self.in_flight
                .fetch_add(popped.batch.len() + popped.expired.len(), Ordering::SeqCst);
            // Jobs shed at pop time: answer 504 without a solve slot.
            for job in popped.expired {
                let waited = job.enqueued.elapsed();
                self.stats.rejected_deadline.inc();
                self.stats.class_shed[job.req.priority.index()].inc();
                if self.sink.enabled() {
                    self.sink.count(catalog::CTR_REJECTED_DEADLINE, 1);
                }
                let reason = RejectReason::DeadlineExceeded {
                    waited_ms: waited.as_millis() as u64,
                    deadline_ms: job.req.deadline_ms.unwrap_or(0),
                };
                self.finish_job(job, Err(ServeError::Rejected(reason)));
            }
            if !popped.batch.is_empty() {
                let picked_up = Instant::now();
                self.process_batch(idx, popped.batch);
                busy.add(picked_up.elapsed().as_secs_f64());
            }
        }
    }

    /// Bumps the per-site injected-fault counter (only called when a
    /// chaos fault actually fires, so production servers never pay the
    /// registry lookup).
    fn chaos_injected(&self, site: &str) {
        self.live
            .counter(
                "lddp_chaos_injected_total",
                &[("site", site)],
                "Faults injected by the attached chaos plan, by site.",
            )
            .inc();
    }

    /// Charges one backend failure to the circuit breaker, recording
    /// the trip when this one pushes it open.
    fn record_backend_failure(&self) {
        if self.breaker.record_failure() {
            self.stats.breaker_opens.inc();
            if self.sink.enabled() {
                self.sink.count(catalog::CTR_BREAKER_OPEN, 1);
            }
        }
    }

    fn finish_job(&self, job: Job, result: Result<SolveResponse, ServeError>) {
        // The submitter may have hung up (load generator timeout);
        // a dead receiver is not a server error.
        let _ = job.tx.send(result);
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }

    fn process_batch(&self, worker_idx: usize, batch: Vec<Job>) {
        let sink = self.sink;
        let lane = tracks::serve_worker(worker_idx);
        let picked_up = Instant::now();

        // Queue-wait accounting + deadline enforcement.
        let mut live: Vec<(Job, Duration)> = Vec::with_capacity(batch.len());
        for job in batch {
            let waited = picked_up.duration_since(job.enqueued);
            let wait_span = Span::new(
                catalog::SPAN_QUEUE_WAIT,
                tracks::SERVE_QUEUE,
                self.since_epoch(job.enqueued),
                waited.as_secs_f64(),
            )
            .with_arg("id", job.id)
            .with_arg("trace_id", format!("{:016x}", job.trace_id))
            .with_arg("problem", job.req.problem.clone());
            self.live.flight().record_span(wait_span.clone());
            if sink.enabled() {
                sink.span(wait_span);
                sink.observe(catalog::HIST_QUEUE_WAIT, waited.as_secs_f64());
            }
            if job.deadline.is_some_and(|d| picked_up > d) {
                self.stats.rejected_deadline.inc();
                self.stats.class_shed[job.req.priority.index()].inc();
                if sink.enabled() {
                    sink.count(catalog::CTR_REJECTED_DEADLINE, 1);
                }
                let reason = RejectReason::DeadlineExceeded {
                    waited_ms: waited.as_millis() as u64,
                    deadline_ms: job.req.deadline_ms.unwrap_or(0),
                };
                self.finish_job(job, Err(ServeError::Rejected(reason)));
            } else {
                live.push((job, waited));
            }
        }
        if live.is_empty() {
            return;
        }

        let key = live[0].0.req.batch_key();
        let batch_size = live.len();
        self.stats.batches.inc();
        self.stats.batched_jobs.add(batch_size as u64);
        self.stats.batch_size.observe(batch_size as f64);
        if sink.enabled() {
            sink.count(catalog::CTR_BATCHES, 1);
            sink.observe(catalog::HIST_BATCH_SIZE, batch_size as f64);
        }

        // Brownout level ≥ 3: force the rolling (wave-band) memory
        // mode onto batch-class solves that support it — smaller
        // tables, lower peak memory — by pinning the mode on the tune
        // probe. Interactive batches and explicit pins are untouched.
        let mut probe = live[0].0.req.clone();
        if self.brownout_level() >= 3
            && probe.priority == Priority::Batch
            && probe.memory_mode.is_none()
            && self.backend.supports_rolling(&probe)
        {
            probe.memory_mode = Some(MemoryMode::Rolling);
            self.live
                .counter(
                    "lddp_serve_brownout_forced_rolling_total",
                    &[],
                    "Batch-class batches forced to rolling memory by the brownout ladder.",
                )
                .inc();
        }

        // One tune per batch — the cached §V-A artifact. A panicking
        // tuner is isolated exactly like a panicking solve: the batch
        // gets clean 500s and the worker thread survives.
        let tune_start = Instant::now();
        // Assembly cost charged to every rider: queue pickup to tune
        // start (grouping, queue-wait accounting, deadline shedding).
        let batch_wait = tune_start.duration_since(picked_up);
        let tuned = catch_unwind(AssertUnwindSafe(|| self.backend.plan(&probe, sink)));
        let tune_wait = tune_start.elapsed();
        let plan = match tuned {
            Ok(Ok(x)) => x,
            Ok(Err(msg)) => {
                self.record_backend_failure();
                self.stats.errors.add(batch_size as u64);
                if sink.enabled() {
                    sink.count(catalog::CTR_ERRORS, batch_size as u64);
                }
                for (job, _) in live {
                    self.finish_job(job, Err(ServeError::Backend(msg.clone())));
                }
                return;
            }
            Err(payload) => {
                let msg = panic_text(payload.as_ref());
                self.record_backend_failure();
                self.stats.panics.add(batch_size as u64);
                if sink.enabled() {
                    sink.count(catalog::CTR_PANICS, batch_size as u64);
                }
                for (job, _) in live {
                    self.finish_job(job, Err(ServeError::Panicked(msg.clone())));
                }
                return;
            }
        };
        let cache_hit = plan.cache_hit;
        let tune_ctr = if cache_hit {
            &self.stats.tune_hits
        } else {
            &self.stats.tune_misses
        };
        tune_ctr.inc();
        let mut tune_span = Span::new(
            catalog::SPAN_TUNE,
            lane,
            self.since_epoch(tune_start),
            tune_wait.as_secs_f64(),
        )
        .with_arg("key", key.label())
        .with_arg("cache_hit", if cache_hit { "true" } else { "false" });
        if let Some(placement) = &plan.placement {
            tune_span = tune_span.with_arg("placed_on", placement.clone());
        }
        self.live.flight().record_span(tune_span.clone());
        if sink.enabled() {
            sink.span(tune_span);
            sink.count(
                if cache_hit {
                    catalog::CTR_TUNE_HIT
                } else {
                    catalog::CTR_TUNE_MISS
                },
                1,
            );
        }

        for (mut job, waited) in live {
            let solve_start = Instant::now();
            // Streamed jobs carry a bounded band channel. The emit
            // closure runs on the solving thread: it stamps the frame's
            // wall clock, records first-band latency, and pushes into
            // the channel — trying first, then blocking when the
            // consumer is behind (the backpressure stall the metrics
            // count). A hung-up consumer disables further emission.
            let stream_tx = job.stream.take();
            let ttfb_ms = Mutex::new(None::<f64>);
            let enqueued = job.enqueued;
            let emit = |mut frame: BandFrame| -> bool {
                let Some(tx) = &stream_tx else { return false };
                frame.elapsed_ms = enqueued.elapsed().as_secs_f64() * 1e3;
                {
                    let mut first = ttfb_ms.lock().unwrap();
                    if first.is_none() {
                        *first = Some(frame.elapsed_ms);
                        self.stats.stream_ttfb_s.observe(frame.elapsed_ms / 1e3);
                    }
                }
                self.stats.stream_bands.inc();
                match tx.try_send(frame) {
                    Ok(()) => true,
                    Err(mpsc::TrySendError::Full(frame)) => {
                        self.stats.stream_stalls.inc();
                        tx.send(frame).is_ok()
                    }
                    Err(mpsc::TrySendError::Disconnected(_)) => false,
                }
            };
            let caught = catch_unwind(AssertUnwindSafe(|| {
                if stream_tx.is_some() {
                    self.backend.solve_streamed(&job.req, &plan, sink, &emit)
                } else {
                    self.backend.solve_placed(&job.req, &plan, sink)
                }
            }));
            let solve_end = Instant::now();
            let solve = solve_end.duration_since(solve_start);
            let solve_span = Span::new(
                catalog::SPAN_SOLVE,
                lane,
                self.since_epoch(solve_start),
                solve.as_secs_f64(),
            )
            .with_arg("id", job.id)
            .with_arg("trace_id", format!("{:016x}", job.trace_id))
            .with_arg("problem", job.req.problem.clone())
            .with_arg("n", job.req.n);
            self.live.flight().record_span(solve_span.clone());
            if sink.enabled() {
                sink.span(solve_span);
            }
            let elapsed_ms = solve.as_millis() as u64;
            let overran = self
                .config
                .watchdog_ms
                .is_some_and(|budget| elapsed_ms > budget);
            match caught {
                Ok(Ok(_)) | Ok(Err(_)) if overran => {
                    // The solve came back (either way) but blew the
                    // watchdog budget: withhold the answer, answer 504,
                    // and charge the breaker — a backend this slow is
                    // as unhealthy as a failing one.
                    self.record_backend_failure();
                    self.stats.watchdog_timeouts.inc();
                    if sink.enabled() {
                        sink.count(catalog::CTR_WATCHDOG, 1);
                    }
                    let err = ServeError::WatchdogTimeout {
                        elapsed_ms,
                        watchdog_ms: self.config.watchdog_ms.unwrap_or(0),
                    };
                    self.finish_job(job, Err(err));
                }
                Ok(Ok(done)) => {
                    self.breaker.record_success();
                    let total = solve_end.duration_since(job.enqueued);
                    self.stats.completed.inc();
                    let class = job.req.priority.index();
                    self.stats.class_completed[class].inc();
                    self.stats.class_latency_s[class].observe(total.as_secs_f64());
                    if !done.degraded.is_empty() {
                        self.stats.degraded_solves.inc();
                        if sink.enabled() {
                            sink.count(catalog::CTR_DEGRADED, 1);
                        }
                    }
                    self.stats.record_latency(
                        total.as_secs_f64() * 1e3,
                        waited.as_secs_f64() * 1e3,
                        solve.as_secs_f64() * 1e3,
                    );
                    self.live
                        .counter(
                            "lddp_serve_problem_solves_total",
                            &[("problem", &job.req.problem)],
                            "Completed solves by problem.",
                        )
                        .inc();
                    self.live
                        .histogram(
                            "lddp_serve_problem_latency_seconds",
                            &[("problem", &job.req.problem)],
                            "End-to-end latency (admission to answer) by problem, seconds.",
                        )
                        .observe(total.as_secs_f64());
                    let (tier_ctr, tier_name) = match done.tier {
                        ExecTier::Scalar => (&self.stats.tier_scalar, catalog::CTR_TIER_SCALAR),
                        ExecTier::Bulk => (&self.stats.tier_bulk, catalog::CTR_TIER_BULK),
                        ExecTier::Simd => (&self.stats.tier_simd, catalog::CTR_TIER_SIMD),
                        ExecTier::BitParallel => {
                            (&self.stats.tier_bitparallel, catalog::CTR_TIER_BITPARALLEL)
                        }
                    };
                    tier_ctr.inc();
                    if sink.enabled() {
                        sink.count(catalog::CTR_COMPLETED, 1);
                        sink.count(tier_name, 1);
                        sink.observe(catalog::HIST_LATENCY, total.as_secs_f64());
                    }
                    let resp = SolveResponse {
                        id: job.id,
                        problem: job.req.problem.clone(),
                        n: job.req.n,
                        answer: done.answer,
                        virtual_ms: done.virtual_ms,
                        params: done.params,
                        tier: done.tier,
                        memory_mode: done.memory_mode,
                        table_bytes: done.table_bytes,
                        queue_ms: waited.as_secs_f64() * 1e3,
                        solve_ms: solve.as_secs_f64() * 1e3,
                        batch_ms: batch_wait.as_secs_f64() * 1e3,
                        tune_ms: tune_wait.as_secs_f64() * 1e3,
                        trace_id: format!("{:016x}", job.trace_id),
                        batch_size,
                        cache_hit,
                        degraded: done.degraded,
                        placed_on: done
                            .placed_on
                            .or_else(|| plan.placement.clone())
                            .unwrap_or_default(),
                        devices: done.devices.max(1),
                        ttfb_ms: ttfb_ms.lock().unwrap().unwrap_or(0.0),
                    };
                    self.finish_job(job, Ok(resp));
                }
                Ok(Err(msg)) => {
                    self.record_backend_failure();
                    self.stats.errors.inc();
                    if sink.enabled() {
                        sink.count(catalog::CTR_ERRORS, 1);
                    }
                    self.finish_job(job, Err(ServeError::Backend(msg)));
                }
                Err(payload) => {
                    let msg = panic_text(payload.as_ref());
                    self.record_backend_failure();
                    self.stats.panics.inc();
                    if sink.enabled() {
                        sink.count(catalog::CTR_PANICS, 1);
                    }
                    self.finish_job(job, Err(ServeError::Panicked(msg)));
                }
            }
        }

        let batch_end = Instant::now();
        let batch_span = Span::new(
            catalog::SPAN_BATCH,
            lane,
            self.since_epoch(picked_up),
            batch_end.duration_since(picked_up).as_secs_f64(),
        )
        .with_arg("batch", batch_size)
        .with_arg("key", key.label())
        .with_arg("cache_hit", if cache_hit { "true" } else { "false" });
        self.live.flight().record_span(batch_span.clone());
        if sink.enabled() {
            sink.span(batch_span);
        }
    }

    // ---- HTTP front end --------------------------------------------

    fn http_loop<'scope>(
        &'scope self,
        scope: &'scope thread::Scope<'scope, '_>,
        listener: &TcpListener,
    ) {
        loop {
            if self.is_shutdown() {
                return;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    scope.spawn(move || self.handle_conn(stream));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(5));
                }
                Err(_) => thread::sleep(Duration::from_millis(5)),
            }
        }
    }

    fn handle_conn(&self, mut stream: TcpStream) {
        stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
        stream.set_write_timeout(Some(Duration::from_secs(10))).ok();
        // Band frames are small and latency is the product: without
        // nodelay, Nagle holds each flushed frame for the client's
        // delayed ACK and a live stream degrades into ~40 ms beats.
        stream.set_nodelay(true).ok();
        // Keep-alive loop: serve requests off this connection until the
        // client closes it, asks for `Connection: close`, the request is
        // malformed, or the server starts draining.
        loop {
            let req = match http::read_request(&mut stream) {
                Ok(r) => r,
                Err(msg) if msg == http::CLEAN_CLOSE => return,
                Err(msg) => {
                    let body = ServeError::Rejected(RejectReason::Invalid(msg)).to_json();
                    let _ = http::write_response(&mut stream, 400, &body, false);
                    return;
                }
            };
            // Injected connection faults, drawn per request: a torn
            // connection drops the socket after reading (the client
            // sees a reset mid-exchange and must retry); a slow one
            // stalls before answering.
            if let Some(inj) = self.injector {
                if inj.torn_connection() {
                    self.chaos_injected("torn_connection");
                    return;
                }
                if let Some(delay) = inj.slow_connection() {
                    self.chaos_injected("slow_connection");
                    thread::sleep(delay);
                }
            }
            // /shutdown drains the server; don't hold its connection open.
            let keep = req.keep_alive && req.path != "/shutdown" && !self.is_shutdown();
            // `POST /solve?stream=1` answers over chunked encoding with
            // one frame per band; everything else is a plain response.
            if req.method == "POST"
                && req.path == "/solve"
                && matches!(req.param("stream"), Some("1" | "true"))
            {
                if !self.stream_solve(&mut stream, &req, keep) {
                    return;
                }
                continue;
            }
            let (status, body, opts) = self.route(&req);
            let wrote = http::write_response_opts(&mut stream, status, &body, keep, &opts);
            if wrote.is_err() || !keep {
                return;
            }
        }
    }

    /// Serves one `POST /solve?stream=1` exchange on `sock`. Parse and
    /// admission failures answer as ordinary (non-chunked) JSON — the
    /// same status, body, and `Retry-After` a non-streamed request
    /// would get. An accepted stream commits to a chunked 200 carrying
    /// the trace id header, one [`BandFrame`] chunk per band, and a
    /// terminal done/error frame. Returns whether the connection is
    /// still aligned and keepable.
    fn stream_solve(&self, sock: &mut TcpStream, req: &http::HttpRequest, keep: bool) -> bool {
        let reject = |sock: &mut TcpStream, e: ServeError| {
            let opts = ResponseOptions {
                retry_after_s: e.retry_after_s(),
                ..ResponseOptions::default()
            };
            let ok = http::write_response_opts(sock, e.http_status(), &e.to_json(), keep, &opts);
            ok.is_ok() && keep
        };
        let sreq = match SolveRequest::from_json(&req.body) {
            Err(msg) => {
                self.stats.rejected_invalid.inc();
                return reject(sock, ServeError::Rejected(RejectReason::Invalid(msg)));
            }
            Ok(r) => r,
        };
        let handle = match self.submit_stream(sreq) {
            Err(reason) => return reject(sock, ServeError::Rejected(reason)),
            Ok(h) => h,
        };
        self.stream_open.fetch_add(1, Ordering::Relaxed);
        let opts = ResponseOptions {
            extra_headers: vec![("X-LDDP-Trace-Id", handle.trace_id.clone())],
            ..ResponseOptions::default()
        };
        let mut healthy = http::write_chunked_head(sock, 200, keep, &opts).is_ok();
        if healthy {
            for frame in handle.bands.iter() {
                if http::write_chunk(sock, &frame.to_json()).is_err() {
                    healthy = false;
                    break;
                }
            }
        }
        if !healthy {
            // The peer went away mid-stream. Dropping the handle hangs
            // up the band channel, so the solve's next emit sees
            // Disconnected and stops; the solve itself finishes.
            self.stream_open.fetch_sub(1, Ordering::Relaxed);
            return false;
        }
        // The band channel closed, so the outcome is already (or is
        // about to be) in the done channel.
        let done = handle
            .done
            .recv()
            .unwrap_or_else(|_| Err(ServeError::Backend("worker dropped the request".into())));
        // The terminal frame rides in-stream: the 200 head is long
        // gone, so even failures arrive as a frame, not a status.
        let tail = match done {
            Ok(resp) => {
                let body = resp.to_json();
                format!("{{\"frame\":\"done\",{}", &body[1..])
            }
            Err(e) => {
                let body = e.to_json();
                format!("{{\"frame\":\"error\",{}", &body[1..])
            }
        };
        let ok = http::write_chunk(sock, &tail).is_ok() && http::finish_chunked(sock).is_ok();
        self.stream_open.fetch_sub(1, Ordering::Relaxed);
        ok && keep
    }

    /// Routes one parsed request to `(status, body, response options)`.
    fn route(&self, req: &http::HttpRequest) -> (u16, String, ResponseOptions) {
        let err = |e: ServeError| {
            let opts = ResponseOptions {
                retry_after_s: e.retry_after_s(),
                ..ResponseOptions::default()
            };
            (e.http_status(), e.to_json(), opts)
        };
        let ok = |body: String| (200, body, ResponseOptions::default());
        match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/solve") => match SolveRequest::from_json(&req.body) {
                Err(msg) => {
                    self.stats.rejected_invalid.inc();
                    err(ServeError::Rejected(RejectReason::Invalid(msg)))
                }
                Ok(sreq) => match self.submit(sreq) {
                    Err(reason) => err(ServeError::Rejected(reason)),
                    Ok(rx) => match rx.recv() {
                        Ok(Ok(resp)) => {
                            let opts = ResponseOptions {
                                extra_headers: vec![("X-LDDP-Trace-Id", resp.trace_id.clone())],
                                ..ResponseOptions::default()
                            };
                            (200, resp.to_json(), opts)
                        }
                        Ok(Err(e)) => err(e),
                        Err(_) => err(ServeError::Backend("worker dropped the request".into())),
                    },
                },
            },
            ("GET", "/healthz") => ok(self.healthz_json()),
            ("GET", "/stats") => ok(self.stats_json()),
            ("GET", "/metrics") => (
                200,
                self.metrics_text(),
                ResponseOptions {
                    content_type: Some("text/plain; version=0.0.4"),
                    ..ResponseOptions::default()
                },
            ),
            ("GET", "/debug/trace") => {
                let last_ms = req
                    .param("last_ms")
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or(10_000);
                ok(self.debug_trace_json(last_ms))
            }
            ("POST", "/shutdown") => {
                self.initiate_shutdown();
                ok("{\"status\":\"draining\"}".to_string())
            }
            (_, "/solve" | "/healthz" | "/stats" | "/metrics" | "/debug/trace" | "/shutdown") => (
                405,
                "{\"error\":\"method_not_allowed\",\"message\":\"wrong method for this path\"}"
                    .to_string(),
                ResponseOptions::default(),
            ),
            _ => (
                404,
                "{\"error\":\"not_found\",\"message\":\"unknown path\"}".to_string(),
                ResponseOptions::default(),
            ),
        }
    }

    /// The `GET /metrics` body: sets the scrape-time gauges (queue
    /// depth, in-flight, drain and breaker state), then renders the
    /// whole registry as Prometheus text exposition.
    pub fn metrics_text(&self) -> String {
        self.live
            .gauge(
                "lddp_serve_queue_depth",
                &[],
                "Jobs currently waiting in the admission queue.",
            )
            .set(self.queue.depth() as f64);
        self.live
            .gauge(
                "lddp_serve_in_flight",
                &[],
                "Jobs popped from the queue and not yet answered.",
            )
            .set(self.in_flight.load(Ordering::Relaxed) as f64);
        self.live
            .gauge(
                "lddp_serve_draining",
                &[],
                "1 while the server is draining (admission closed), else 0.",
            )
            .set(if self.queue.is_open() { 0.0 } else { 1.0 });
        self.live
            .gauge(
                "lddp_serve_breaker_state",
                &[],
                "Circuit breaker state: 0 closed, 1 half-open, 2 open.",
            )
            .set(match self.breaker.state() {
                BreakerState::Closed => 0.0,
                BreakerState::HalfOpen => 1.0,
                BreakerState::Open => 2.0,
            });
        self.live
            .gauge(
                "lddp_serve_stream_open",
                &[],
                "Streaming solve responses currently open.",
            )
            .set(self.stream_open.load(Ordering::Relaxed) as f64);
        self.live
            .gauge(
                "lddp_serve_brownout_level",
                &[],
                "Brownout-ladder level: 0 normal, 1 shed batch, 2 cap batch \
                 concurrency, 3 force rolling memory on batch solves.",
            )
            .set(self.brownout_level() as f64);
        for class in [Priority::Interactive, Priority::Batch] {
            self.live
                .gauge(
                    "lddp_serve_class_queue_depth",
                    &[("class", class.as_str())],
                    "Jobs currently waiting in the admission queue, by service class.",
                )
                .set(self.queue.class_depth(class) as f64);
        }
        self.live.to_prometheus()
    }

    /// The `GET /debug/trace` body: every flight-recorder event that
    /// ended within the last `last_ms` milliseconds, exported as Chrome
    /// trace JSON (load it in Perfetto / `chrome://tracing`).
    pub fn debug_trace_json(&self, last_ms: u64) -> String {
        let since = self.since_epoch(Instant::now()) - last_ms as f64 / 1e3;
        let data = self.live.flight().snapshot_since(since);
        chrome::to_chrome_json(&data)
    }

    /// The `GET /stats` body: the snapshot, plus the backend's fleet
    /// section under `"fleet"` when it reports one.
    pub fn stats_json(&self) -> String {
        let mut body = self.snapshot().to_json();
        if let Some(fleet) = self.backend.fleet_stats_json() {
            debug_assert!(body.ends_with('}'));
            body.truncate(body.len() - 1);
            body.push_str(&format!(",\"fleet\":{fleet}}}"));
        }
        body
    }

    fn healthz_json(&self) -> String {
        let draining = !self.queue.is_open();
        let breaker = self.breaker.state();
        let pools = self.backend.pool_health();
        let unhealed = pools.iter().any(|p| !p.ready);
        let status = if draining {
            "draining"
        } else if breaker != BreakerState::Closed || unhealed {
            "degraded"
        } else {
            "ok"
        };
        let mut body = format!(
            "{{\"status\":\"{}\",\"breaker\":\"{}\",\"queue_depth\":{},\"in_flight\":{},\"workers\":{},\"simd\":\"{}\",\"avx512\":{}",
            status,
            breaker.name(),
            self.queue.depth(),
            self.in_flight.load(Ordering::Relaxed),
            self.config.workers.max(1),
            simd_backend(),
            avx512_available(),
        );
        if !pools.is_empty() {
            let entries: Vec<String> = pools
                .iter()
                .map(|p| {
                    format!(
                        "{{\"platform\":\"{}\",\"ready\":{},\"dead_workers\":{}}}",
                        p.platform, p.ready, p.dead_workers
                    )
                })
                .collect();
            body.push_str(&format!(",\"fleet\":[{}]", entries.join(",")));
        }
        body.push('}');
        body
    }
}

/// Best-effort text of a caught panic payload (the common `&str` /
/// `String` cases; anything else gets a placeholder).
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// In-process handle to a running [`Server`] — the no-sockets API used
/// by tests, the in-process load generator, and the CLI.
pub struct Client<'s, 'a> {
    server: &'s Server<'a>,
}

impl Client<'_, '_> {
    /// Submits a request; the returned receiver yields the eventual
    /// outcome. Admission rejections surface immediately as `Err`.
    pub fn submit(
        &self,
        req: SolveRequest,
    ) -> Result<mpsc::Receiver<Result<SolveResponse, ServeError>>, RejectReason> {
        self.server.submit(req)
    }

    /// Submits and blocks for the outcome.
    pub fn solve(&self, req: SolveRequest) -> Result<SolveResponse, ServeError> {
        let rx = self.submit(req).map_err(ServeError::Rejected)?;
        rx.recv()
            .unwrap_or_else(|_| Err(ServeError::Backend("worker dropped the request".into())))
    }

    /// Submits a streaming solve; band frames arrive on the handle
    /// while the solve runs. Admission rejections surface immediately.
    pub fn submit_stream(&self, req: SolveRequest) -> Result<StreamHandle, RejectReason> {
        self.server.submit_stream(req)
    }

    /// Submits a streaming solve and blocks for the outcome, invoking
    /// `on_band` for each band frame as it arrives. A slow `on_band`
    /// backpressures the solve exactly like a slow HTTP reader.
    pub fn solve_stream(
        &self,
        req: SolveRequest,
        on_band: &mut dyn FnMut(&BandFrame),
    ) -> Result<SolveResponse, ServeError> {
        let handle = self.submit_stream(req).map_err(ServeError::Rejected)?;
        for frame in handle.bands.iter() {
            on_band(&frame);
        }
        handle
            .done
            .recv()
            .unwrap_or_else(|_| Err(ServeError::Backend("worker dropped the request".into())))
    }

    /// Point-in-time stats.
    pub fn snapshot(&self) -> StatsSnapshot {
        self.server.snapshot()
    }

    /// The `GET /healthz` body.
    pub fn healthz_json(&self) -> String {
        self.server.healthz_json()
    }

    /// The `GET /stats` body (snapshot plus any fleet section).
    pub fn stats_json(&self) -> String {
        self.server.stats_json()
    }

    /// The `GET /metrics` body (Prometheus text exposition).
    pub fn metrics_text(&self) -> String {
        self.server.metrics_text()
    }

    /// The `GET /debug/trace` body for the last `last_ms` milliseconds
    /// (Chrome trace JSON from the flight recorder).
    pub fn debug_trace_json(&self, last_ms: u64) -> String {
        self.server.debug_trace_json(last_ms)
    }

    /// Initiates graceful shutdown (idempotent): admission closes,
    /// queued work drains, `Server::run` returns once workers join.
    pub fn shutdown(&self) {
        self.server.initiate_shutdown()
    }

    /// Blocks until shutdown is initiated (by this client, another
    /// thread, or `POST /shutdown`).
    pub fn wait_shutdown(&self) {
        let mut flag = self.server.shutdown.lock().unwrap();
        while !*flag {
            flag = self.server.shutdown_cv.wait(flag).unwrap();
        }
    }
}
