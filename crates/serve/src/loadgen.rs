//! Closed- and open-loop load generation against a solve target.
//!
//! *Closed loop* (no `rps`): `concurrency` workers each keep exactly one
//! request in flight — offered load adapts to server speed, so the
//! report measures capacity. *Open loop* (`rps` set): requests launch on
//! a fixed schedule regardless of completions — offered load is
//! constant, so the report measures behaviour under pressure (queueing,
//! rejections) the way a real client population would.
//!
//! The target is abstracted behind [`SolveTarget`] so the same engine
//! drives a remote server over HTTP ([`HttpTarget`]) or an in-process
//! [`Client`](crate::Client) (zero-socket mode for tests and
//! single-command benchmarks).

use crate::http;
use crate::job::{SolveRequest, SolveResponse};
use crate::stats::{percentile, LatencySummary};
use crate::Client;
use lddp_trace::json;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

/// Something that answers one solve request at a time.
///
/// Errors are `(code, message)` pairs using the server's wire codes
/// (`queue_full`, `shutting_down`, `deadline_exceeded`, `invalid`,
/// `backend`) plus the loadgen-local `transport` for connections that
/// failed before an HTTP status came back.
pub trait SolveTarget: Sync {
    /// Executes one request, blocking until the outcome.
    fn solve_once(&self, req: &SolveRequest) -> Result<SolveResponse, (String, String)>;
}

/// A remote server reached over HTTP, with a pool of keep-alive
/// connections shared by the closed-loop workers: each request pops a
/// warm connection (dialing only when the pool is dry) and returns it
/// after the response, so steady-state load pays zero TCP handshakes.
pub struct HttpTarget {
    addr: String,
    timeout: Duration,
    pool: Mutex<Vec<http::HttpConnection>>,
}

impl HttpTarget {
    /// Creates a target for `addr` with the given per-request timeout.
    pub fn new(addr: impl Into<String>, timeout: Duration) -> HttpTarget {
        HttpTarget {
            addr: addr.into(),
            timeout,
            pool: Mutex::new(Vec::new()),
        }
    }

    fn interpret(status: u16, body: String) -> Result<SolveResponse, (String, String)> {
        if status == 200 {
            SolveResponse::from_json(&body).map_err(|e| ("transport".to_string(), e))
        } else {
            let parsed = json::parse(&body).ok();
            let field = |name: &str| {
                parsed
                    .as_ref()
                    .and_then(|v| v.get(name))
                    .and_then(|v| v.as_str())
                    .map(str::to_string)
            };
            Err((
                field("error").unwrap_or_else(|| format!("http_{status}")),
                field("message").unwrap_or(body),
            ))
        }
    }
}

impl SolveTarget for HttpTarget {
    fn solve_once(&self, req: &SolveRequest) -> Result<SolveResponse, (String, String)> {
        let payload = req.to_json();
        // A pooled connection may be stale (server closed it); treat a
        // transport failure on it as a miss and redial fresh instead of
        // failing the request. The pop is bound first so the pool guard
        // is released before the request (and the push-back) run.
        let pooled = self.pool.lock().unwrap().pop();
        if let Some(mut conn) = pooled {
            if let Ok((status, body)) = conn.request("POST", "/solve", Some(&payload)) {
                self.pool.lock().unwrap().push(conn);
                return Self::interpret(status, body);
            }
        }
        let mut conn = http::HttpConnection::connect(&self.addr, self.timeout)
            .map_err(|e| ("transport".to_string(), e))?;
        match conn.request("POST", "/solve", Some(&payload)) {
            Ok((status, body)) => {
                self.pool.lock().unwrap().push(conn);
                Self::interpret(status, body)
            }
            Err(e) => Err(("transport".to_string(), e)),
        }
    }
}

impl SolveTarget for Client<'_, '_> {
    fn solve_once(&self, req: &SolveRequest) -> Result<SolveResponse, (String, String)> {
        self.solve(req.clone())
            .map_err(|e| (e.code().to_string(), e.message()))
    }
}

/// What one load run should do.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Request template; every request in the run is a clone of it.
    pub request: SolveRequest,
    /// Requests to send (`0` = unlimited, bounded by `duration` only).
    pub total: usize,
    /// Open-loop arrival rate; `None` selects closed-loop mode.
    pub rps: Option<f64>,
    /// Wall-clock cap on the run.
    pub duration: Option<Duration>,
    /// Closed-loop workers (ignored in open loop, where arrivals pace
    /// themselves).
    pub concurrency: usize,
    /// Oracle answer: completed responses that disagree count as
    /// `mismatches` (the correctness signal of a run).
    pub expect_answer: Option<String>,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            request: SolveRequest::new("lcs", 256),
            total: 100,
            rps: None,
            duration: None,
            concurrency: 4,
            expect_answer: None,
        }
    }
}

#[derive(Debug, Default)]
struct Tally {
    completed: usize,
    mismatches: usize,
    by_code: Vec<(String, usize)>,
    total_ms: Vec<f64>,
    queue_ms: Vec<f64>,
    solve_ms: Vec<f64>,
}

impl Tally {
    fn bump_code(&mut self, code: &str) {
        if let Some(entry) = self.by_code.iter_mut().find(|(c, _)| c == code) {
            entry.1 += 1;
        } else {
            self.by_code.push((code.to_string(), 1));
        }
    }
}

/// Outcome of one load run — what `lddp-cli loadgen` prints as JSON.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests actually launched.
    pub sent: usize,
    /// Requests answered successfully.
    pub completed: usize,
    /// Admission/deadline rejections (`queue_full`, `shutting_down`,
    /// `deadline_exceeded`, `invalid`).
    pub rejected: usize,
    /// Backend/transport failures.
    pub errors: usize,
    /// Completed responses whose answer disagreed with the oracle.
    pub mismatches: usize,
    /// Per-code breakdown of every non-completed outcome.
    pub by_code: Vec<(String, usize)>,
    /// Run wall clock, seconds.
    pub wall_s: f64,
    /// Completions per second of wall clock.
    pub throughput_rps: f64,
    /// `rejected / sent`.
    pub rejection_rate: f64,
    /// End-to-end client-observed latency.
    pub latency: LatencySummary,
    /// Server-reported queue wait of completed requests.
    pub queue: LatencySummary,
    /// Server-reported solve time of completed requests.
    pub solve: LatencySummary,
}

const REJECT_CODES: [&str; 4] = ["queue_full", "shutting_down", "deadline_exceeded", "invalid"];

fn summarize(mut samples: Vec<f64>) -> LatencySummary {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    LatencySummary {
        count: samples.len() as u64,
        p50_ms: percentile(&samples, 0.50),
        p95_ms: percentile(&samples, 0.95),
        p99_ms: percentile(&samples, 0.99),
        max_ms: samples.last().copied().unwrap_or(0.0),
    }
}

impl LoadReport {
    fn from_tally(tally: Tally, sent: usize, wall_s: f64) -> LoadReport {
        let rejected = tally
            .by_code
            .iter()
            .filter(|(c, _)| REJECT_CODES.contains(&c.as_str()))
            .map(|(_, n)| n)
            .sum();
        let errors = tally
            .by_code
            .iter()
            .filter(|(c, _)| !REJECT_CODES.contains(&c.as_str()))
            .map(|(_, n)| n)
            .sum();
        LoadReport {
            sent,
            completed: tally.completed,
            rejected,
            errors,
            mismatches: tally.mismatches,
            by_code: tally.by_code,
            wall_s,
            throughput_rps: if wall_s > 0.0 {
                tally.completed as f64 / wall_s
            } else {
                0.0
            },
            rejection_rate: if sent > 0 {
                rejected as f64 / sent as f64
            } else {
                0.0
            },
            latency: summarize(tally.total_ms),
            queue: summarize(tally.queue_ms),
            solve: summarize(tally.solve_ms),
        }
    }

    /// The report as a JSON object.
    pub fn to_json(&self) -> String {
        let lat = |l: &LatencySummary| {
            format!(
                "{{\"count\":{},\"p50_ms\":{},\"p95_ms\":{},\"p99_ms\":{},\"max_ms\":{}}}",
                l.count,
                json::num(l.p50_ms),
                json::num(l.p95_ms),
                json::num(l.p99_ms),
                json::num(l.max_ms)
            )
        };
        let codes = self
            .by_code
            .iter()
            .map(|(c, n)| format!("\"{}\":{}", json::escape(c), n))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"sent\":{},\"completed\":{},\"rejected\":{},\"errors\":{},\"mismatches\":{},\
             \"outcomes\":{{{}}},\"wall_s\":{},\"throughput_rps\":{},\"rejection_rate\":{},\
             \"latency_ms\":{{\"total\":{},\"queue\":{},\"solve\":{}}}}}",
            self.sent,
            self.completed,
            self.rejected,
            self.errors,
            self.mismatches,
            codes,
            json::num(self.wall_s),
            json::num(self.throughput_rps),
            json::num(self.rejection_rate),
            lat(&self.latency),
            lat(&self.queue),
            lat(&self.solve),
        )
    }
}

fn fire(target: &dyn SolveTarget, cfg: &LoadgenConfig, tally: &Mutex<Tally>) {
    let started = Instant::now();
    let outcome = target.solve_once(&cfg.request);
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    let mut t = tally.lock().unwrap();
    t.total_ms.push(elapsed_ms);
    match outcome {
        Ok(resp) => {
            t.completed += 1;
            t.queue_ms.push(resp.queue_ms);
            t.solve_ms.push(resp.solve_ms);
            if cfg
                .expect_answer
                .as_ref()
                .is_some_and(|want| *want != resp.answer)
            {
                t.mismatches += 1;
            }
        }
        Err((code, _message)) => t.bump_code(&code),
    }
}

/// Runs one load experiment to completion and reports.
pub fn run(target: &dyn SolveTarget, cfg: &LoadgenConfig) -> LoadReport {
    let tally = Mutex::new(Tally::default());
    let start = Instant::now();
    let deadline = cfg.duration.map(|d| start + d);
    let sent = match cfg.rps {
        None => run_closed(target, cfg, &tally, deadline),
        Some(rps) => run_open(target, cfg, &tally, deadline, rps),
    };
    let wall_s = start.elapsed().as_secs_f64();
    LoadReport::from_tally(tally.into_inner().unwrap(), sent, wall_s)
}

fn run_closed(
    target: &dyn SolveTarget,
    cfg: &LoadgenConfig,
    tally: &Mutex<Tally>,
    deadline: Option<Instant>,
) -> usize {
    let next = AtomicUsize::new(0);
    thread::scope(|s| {
        for _ in 0..cfg.concurrency.max(1) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if cfg.total > 0 && i >= cfg.total {
                    // Give the slot back so the sent count stays exact.
                    next.fetch_sub(1, Ordering::SeqCst);
                    return;
                }
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    next.fetch_sub(1, Ordering::SeqCst);
                    return;
                }
                fire(target, cfg, tally);
            });
        }
    });
    next.load(Ordering::SeqCst)
}

fn run_open(
    target: &dyn SolveTarget,
    cfg: &LoadgenConfig,
    tally: &Mutex<Tally>,
    deadline: Option<Instant>,
    rps: f64,
) -> usize {
    let interval = Duration::from_secs_f64(1.0 / rps.max(1e-3));
    let start = Instant::now();
    let mut sent = 0usize;
    thread::scope(|s| {
        loop {
            if cfg.total > 0 && sent >= cfg.total {
                break;
            }
            let tick = start + interval.mul_f64(sent as f64);
            if deadline.is_some_and(|d| tick >= d) {
                break;
            }
            let now = Instant::now();
            if tick > now {
                thread::sleep(tick - now);
            }
            s.spawn(|| fire(target, cfg, tally));
            sent += 1;
        }
    });
    sent
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Canned {
        answer: String,
        fail_every: usize,
        hits: AtomicUsize,
    }

    impl SolveTarget for Canned {
        fn solve_once(&self, req: &SolveRequest) -> Result<SolveResponse, (String, String)> {
            let i = self.hits.fetch_add(1, Ordering::SeqCst) + 1;
            if self.fail_every > 0 && i % self.fail_every == 0 {
                return Err(("queue_full".into(), "full".into()));
            }
            Ok(SolveResponse {
                id: i as u64,
                problem: req.problem.clone(),
                n: req.n,
                answer: self.answer.clone(),
                virtual_ms: 1.0,
                params: lddp_core::schedule::ScheduleParams::new(0, 0),
                queue_ms: 0.5,
                solve_ms: 2.0,
                batch_size: 1,
                cache_hit: false,
            })
        }
    }

    #[test]
    fn closed_loop_sends_exactly_total() {
        let target = Canned {
            answer: "42".into(),
            fail_every: 0,
            hits: AtomicUsize::new(0),
        };
        let cfg = LoadgenConfig {
            total: 25,
            concurrency: 4,
            expect_answer: Some("42".into()),
            ..LoadgenConfig::default()
        };
        let report = run(&target, &cfg);
        assert_eq!(report.sent, 25);
        assert_eq!(report.completed, 25);
        assert_eq!(report.mismatches, 0);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.latency.count, 25);
        assert!(report.throughput_rps > 0.0);
    }

    #[test]
    fn rejections_and_mismatches_are_counted() {
        let target = Canned {
            answer: "wrong".into(),
            fail_every: 5,
            hits: AtomicUsize::new(0),
        };
        let cfg = LoadgenConfig {
            total: 20,
            concurrency: 2,
            expect_answer: Some("right".into()),
            ..LoadgenConfig::default()
        };
        let report = run(&target, &cfg);
        assert_eq!(report.sent, 20);
        assert_eq!(report.completed, 16);
        assert_eq!(report.rejected, 4);
        assert_eq!(report.mismatches, 16);
        assert!((report.rejection_rate - 0.2).abs() < 1e-12);
        assert_eq!(report.by_code, vec![("queue_full".to_string(), 4)]);
    }

    #[test]
    fn open_loop_paces_and_caps_by_total() {
        let target = Canned {
            answer: "x".into(),
            fail_every: 0,
            hits: AtomicUsize::new(0),
        };
        let cfg = LoadgenConfig {
            total: 10,
            rps: Some(500.0),
            concurrency: 1,
            ..LoadgenConfig::default()
        };
        let report = run(&target, &cfg);
        assert_eq!(report.sent, 10);
        assert_eq!(report.completed, 10);
        // 10 requests at 500 rps should take about 20 ms of pacing.
        assert!(report.wall_s >= 0.015, "wall_s = {}", report.wall_s);
    }

    #[test]
    fn report_json_parses() {
        let target = Canned {
            answer: "x".into(),
            fail_every: 3,
            hits: AtomicUsize::new(0),
        };
        let cfg = LoadgenConfig {
            total: 9,
            concurrency: 3,
            ..LoadgenConfig::default()
        };
        let report = run(&target, &cfg);
        let v = json::parse(&report.to_json()).unwrap();
        assert_eq!(v.get("sent").and_then(|j| j.as_f64()), Some(9.0));
        assert!(v.get("latency_ms").and_then(|j| j.get("total")).is_some());
        assert_eq!(
            v.get("outcomes")
                .and_then(|j| j.get("queue_full"))
                .and_then(|j| j.as_f64()),
            Some(3.0)
        );
    }
}
