//! Closed- and open-loop load generation against a solve target.
//!
//! *Closed loop* (no `rps`): `concurrency` workers each keep exactly one
//! request in flight — offered load adapts to server speed, so the
//! report measures capacity. *Open loop* (`rps` set): requests launch on
//! a fixed schedule regardless of completions — offered load is
//! constant, so the report measures behaviour under pressure (queueing,
//! rejections) the way a real client population would.
//!
//! The target is abstracted behind [`SolveTarget`] so the same engine
//! drives a remote server over HTTP ([`HttpTarget`]) or an in-process
//! [`Client`](crate::Client) (zero-socket mode for tests and
//! single-command benchmarks).

use crate::http;
use crate::job::{SolveRequest, SolveResponse};
use crate::stats::{percentile, LatencySummary};
use crate::stream::{self, BandFrame};
use crate::Client;
use lddp_chaos::RetryPolicy;
use lddp_trace::json;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

/// A failed solve attempt, in the server's wire vocabulary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetError {
    /// Wire code (`queue_full`, `tenant_quota`, `brownout_shed`,
    /// `deadline_exceeded`…) plus the loadgen-local `transport` for
    /// connections that failed before an HTTP status came back.
    pub code: String,
    /// Human-readable detail.
    pub message: String,
    /// The server's `Retry-After` hint, seconds, when the rejection
    /// carried one (backpressure 429/503s do).
    pub retry_after_s: Option<u64>,
}

impl TargetError {
    /// An error with no retry hint.
    pub fn new(code: impl Into<String>, message: impl Into<String>) -> TargetError {
        TargetError {
            code: code.into(),
            message: message.into(),
            retry_after_s: None,
        }
    }
}

/// Something that answers one solve request at a time.
pub trait SolveTarget: Sync {
    /// Executes one request, blocking until the outcome.
    fn solve_once(&self, req: &SolveRequest) -> Result<SolveResponse, TargetError>;

    /// Executes one request in streaming mode, invoking `on_band` for
    /// each band frame as it arrives, then returning the final
    /// outcome. The default delegates to [`SolveTarget::solve_once`]
    /// with zero band frames, so targets without a streaming path
    /// still measure (their time-to-first-band is simply absent).
    fn solve_stream_once(
        &self,
        req: &SolveRequest,
        on_band: &mut dyn FnMut(&BandFrame),
    ) -> Result<SolveResponse, TargetError> {
        let _ = on_band;
        self.solve_once(req)
    }
}

/// A remote server reached over HTTP, with a pool of keep-alive
/// connections shared by the closed-loop workers: each request pops a
/// warm connection (dialing only when the pool is dry) and returns it
/// after the response, so steady-state load pays zero TCP handshakes.
pub struct HttpTarget {
    addr: String,
    timeout: Duration,
    pool: Mutex<Vec<http::HttpConnection>>,
}

impl HttpTarget {
    /// Creates a target for `addr` with the given per-request timeout.
    pub fn new(addr: impl Into<String>, timeout: Duration) -> HttpTarget {
        HttpTarget {
            addr: addr.into(),
            timeout,
            pool: Mutex::new(Vec::new()),
        }
    }

    fn interpret(
        status: u16,
        body: String,
        retry_after_s: Option<u64>,
    ) -> Result<SolveResponse, TargetError> {
        if status == 200 {
            SolveResponse::from_json(&body).map_err(|e| TargetError::new("transport", e))
        } else {
            let parsed = json::parse(&body).ok();
            let field = |name: &str| {
                parsed
                    .as_ref()
                    .and_then(|v| v.get(name))
                    .and_then(|v| v.as_str())
                    .map(str::to_string)
            };
            Err(TargetError {
                code: field("error").unwrap_or_else(|| format!("http_{status}")),
                message: field("message").unwrap_or(body),
                retry_after_s,
            })
        }
    }
}

impl SolveTarget for HttpTarget {
    fn solve_once(&self, req: &SolveRequest) -> Result<SolveResponse, TargetError> {
        let payload = req.to_json();
        // A pooled connection may be stale (server closed it); treat a
        // transport failure on it as a miss and redial fresh instead of
        // failing the request. The pop is bound first so the pool guard
        // is released before the request (and the push-back) run.
        let pooled = self.pool.lock().unwrap().pop();
        if let Some(mut conn) = pooled {
            if let Ok((status, body, retry)) = conn.request_ex("POST", "/solve", Some(&payload)) {
                self.pool.lock().unwrap().push(conn);
                return Self::interpret(status, body, retry);
            }
        }
        let mut conn = http::HttpConnection::connect(&self.addr, self.timeout)
            .map_err(|e| TargetError::new("transport", e))?;
        match conn.request_ex("POST", "/solve", Some(&payload)) {
            Ok((status, body, retry)) => {
                self.pool.lock().unwrap().push(conn);
                Self::interpret(status, body, retry)
            }
            Err(e) => Err(TargetError::new("transport", e)),
        }
    }

    fn solve_stream_once(
        &self,
        req: &SolveRequest,
        on_band: &mut dyn FnMut(&BandFrame),
    ) -> Result<SolveResponse, TargetError> {
        let payload = req.to_json();
        let mut delivered = 0usize;
        let mut done: Option<Result<SolveResponse, TargetError>> = None;
        // Drives one streamed exchange on `conn`, demultiplexing frames:
        // band frames to the callback, the terminal done/error frame
        // into `done`.
        let drive = |conn: &mut http::HttpConnection,
                     delivered: &mut usize,
                     done: &mut Option<Result<SolveResponse, TargetError>>,
                     on_band: &mut dyn FnMut(&BandFrame)| {
            conn.request_stream("POST", "/solve?stream=1", Some(&payload), &mut |chunk| {
                match stream::frame_kind(chunk).as_deref() {
                    Some("band") => {
                        if let Ok(frame) = BandFrame::from_json(chunk) {
                            *delivered += 1;
                            on_band(&frame);
                        }
                    }
                    Some("done") => {
                        *done = Some(
                            SolveResponse::from_json(chunk)
                                .map_err(|e| TargetError::new("transport", e)),
                        );
                    }
                    Some("error") => {
                        let parsed = json::parse(chunk).ok();
                        let field = |name: &str| {
                            parsed
                                .as_ref()
                                .and_then(|v| v.get(name))
                                .and_then(|v| v.as_str())
                                .map(str::to_string)
                        };
                        *done = Some(Err(TargetError::new(
                            field("error").unwrap_or_else(|| "backend_error".into()),
                            field("message").unwrap_or_else(|| chunk.to_string()),
                        )));
                    }
                    _ => {}
                }
            })
        };
        // Stale-pool handling mirrors solve_once, with one extra rule:
        // once any frame was delivered, a transport failure must NOT
        // silently restart the stream (the consumer already saw bands),
        // so only a cleanly-failed first attempt redials.
        let pooled = self.pool.lock().unwrap().pop();
        let outcome = if let Some(mut conn) = pooled {
            match drive(&mut conn, &mut delivered, &mut done, on_band) {
                Ok(o) => {
                    self.pool.lock().unwrap().push(conn);
                    Some(o)
                }
                Err(_) if delivered == 0 && done.is_none() => None,
                Err(e) => return Err(TargetError::new("transport", e)),
            }
        } else {
            None
        };
        let outcome = match outcome {
            Some(o) => o,
            None => {
                let mut conn = http::HttpConnection::connect(&self.addr, self.timeout)
                    .map_err(|e| TargetError::new("transport", e))?;
                match drive(&mut conn, &mut delivered, &mut done, on_band) {
                    Ok(o) => {
                        self.pool.lock().unwrap().push(conn);
                        o
                    }
                    Err(e) => return Err(TargetError::new("transport", e)),
                }
            }
        };
        // Rejections come back as ordinary non-chunked responses.
        if let Some(body) = outcome.plain_body {
            return Self::interpret(outcome.status, body, outcome.retry_after_s);
        }
        done.unwrap_or_else(|| {
            Err(TargetError::new(
                "transport",
                "stream ended without a done frame",
            ))
        })
    }
}

impl SolveTarget for Client<'_, '_> {
    fn solve_once(&self, req: &SolveRequest) -> Result<SolveResponse, TargetError> {
        self.solve(req.clone()).map_err(|e| TargetError {
            code: e.code().to_string(),
            message: e.message(),
            retry_after_s: e.retry_after_s(),
        })
    }

    fn solve_stream_once(
        &self,
        req: &SolveRequest,
        on_band: &mut dyn FnMut(&BandFrame),
    ) -> Result<SolveResponse, TargetError> {
        self.solve_stream(req.clone(), on_band)
            .map_err(|e| TargetError {
                code: e.code().to_string(),
                message: e.message(),
                retry_after_s: e.retry_after_s(),
            })
    }
}

/// What one load run should do.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Request template; every request in the run is a clone of it.
    pub request: SolveRequest,
    /// Requests to send (`0` = unlimited, bounded by `duration` only).
    pub total: usize,
    /// Open-loop arrival rate; `None` selects closed-loop mode.
    pub rps: Option<f64>,
    /// Wall-clock cap on the run.
    pub duration: Option<Duration>,
    /// Closed-loop workers (ignored in open loop, where arrivals pace
    /// themselves).
    pub concurrency: usize,
    /// Oracle answer: completed responses that disagree count as
    /// `mismatches` (the correctness signal of a run).
    pub expect_answer: Option<String>,
    /// Retry schedule for transient failures (torn connections,
    /// breaker rejections, panics, watchdog 504s…). The default is
    /// [`RetryPolicy::none`]; chaos campaigns use
    /// [`RetryPolicy::default_serving`].
    pub retry: RetryPolicy,
    /// Size mix for heterogeneous fleet runs: `(n, oracle)` pairs
    /// cycled round-robin by request sequence number, each overriding
    /// `request.n` and `expect_answer` for its turn. Empty (the
    /// default) means every request uses the template unchanged —
    /// mixed sizes are what exercise a fleet's dispatcher, since
    /// uniform requests all score identically.
    pub mix: Vec<(usize, Option<String>)>,
    /// Drive `POST /solve?stream=1` instead of plain solves: band
    /// frames are consumed as they arrive and the report adds
    /// time-to-first-band percentiles and the band count.
    pub stream: bool,
    /// Ceiling on an honored server `Retry-After` pause. Servers under
    /// brownout suggest seconds-scale waits; a load generator that
    /// slept a full server-suggested minute would stop generating
    /// load. Long hints are clamped to this, short ones honored
    /// exactly (`--retry-after-cap-ms`).
    pub retry_after_cap: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            request: SolveRequest::new("lcs", 256),
            total: 100,
            rps: None,
            duration: None,
            concurrency: 4,
            expect_answer: None,
            retry: RetryPolicy::none(),
            mix: Vec::new(),
            stream: false,
            retry_after_cap: DEFAULT_RETRY_AFTER_CAP,
        }
    }
}

#[derive(Debug, Default)]
struct Tally {
    completed: usize,
    mismatches: usize,
    retries: usize,
    recovered: usize,
    retry_after_honored: usize,
    by_code: Vec<(String, usize)>,
    total_ms: Vec<f64>,
    queue_ms: Vec<f64>,
    solve_ms: Vec<f64>,
    ttfb_ms: Vec<f64>,
    bands: usize,
    placements: Vec<(String, usize)>,
    multiplan_splits: usize,
}

impl Tally {
    fn bump_code(&mut self, code: &str) {
        if let Some(entry) = self.by_code.iter_mut().find(|(c, _)| c == code) {
            entry.1 += 1;
        } else {
            self.by_code.push((code.to_string(), 1));
        }
    }

    fn bump_placement(&mut self, platform: &str) {
        if let Some(entry) = self.placements.iter_mut().find(|(p, _)| p == platform) {
            entry.1 += 1;
        } else {
            self.placements.push((platform.to_string(), 1));
        }
    }
}

/// Outcome of one load run — what `lddp-cli loadgen` prints as JSON.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests actually launched.
    pub sent: usize,
    /// Requests answered successfully.
    pub completed: usize,
    /// Admission/deadline rejections (`queue_full`, `shutting_down`,
    /// `deadline_exceeded`, `invalid`).
    pub rejected: usize,
    /// Backend/transport failures.
    pub errors: usize,
    /// Completed responses whose answer disagreed with the oracle.
    pub mismatches: usize,
    /// Retry attempts made across the whole run.
    pub retries: usize,
    /// Requests that completed only after at least one retry, with the
    /// final answer passing the oracle check (when one is configured) —
    /// the "recovered from a transient fault" population.
    pub recovered: usize,
    /// Retry pauses that followed a server `Retry-After` hint instead
    /// of the jittered backoff schedule.
    pub retry_after_honored: usize,
    /// Per-code breakdown of every non-completed outcome.
    pub by_code: Vec<(String, usize)>,
    /// Run wall clock, seconds.
    pub wall_s: f64,
    /// Completions per second of wall clock.
    pub throughput_rps: f64,
    /// `rejected / sent`.
    pub rejection_rate: f64,
    /// End-to-end client-observed latency.
    pub latency: LatencySummary,
    /// Server-reported queue wait of completed requests.
    pub queue: LatencySummary,
    /// Server-reported solve time of completed requests.
    pub solve: LatencySummary,
    /// Client-observed time to first streamed band (request start to
    /// first band frame). Zero-count unless the run streamed and bands
    /// arrived.
    pub ttfb: LatencySummary,
    /// Band frames received across the run (streamed runs only).
    pub stream_bands: usize,
    /// The effective `Retry-After` honor cap this run applied,
    /// milliseconds.
    pub retry_after_cap_ms: u64,
    /// Per-series `/metrics` movement across the run (`after - before`
    /// scrape values, series that did not move dropped). Empty when the
    /// driver did not scrape — in-process runs or a server without the
    /// endpoint.
    pub server_metrics_delta: Vec<(String, f64)>,
    /// Completions per fleet platform, from the `placed_on` response
    /// field. Empty against a non-fleet server (no placement reported).
    pub fleet_placements: Vec<(String, usize)>,
    /// Completions solved as a cross-device `MultiPlan` split
    /// (`devices > 1` in the response).
    pub multiplan_splits: usize,
}

/// Scrapes `GET /metrics` at `addr` and parses the Prometheus text
/// exposition into `(series, value)` pairs.
pub fn scrape_metrics(addr: &str, timeout: Duration) -> Result<Vec<(String, f64)>, String> {
    let (status, body) = http::request(addr, "GET", "/metrics", None, timeout)?;
    if status != 200 {
        return Err(format!("GET /metrics returned HTTP {status}"));
    }
    Ok(lddp_trace::live::parse_prometheus(&body))
}

/// Per-series `after - before` of two scrapes, dropping series that did
/// not move. Series first seen in `after` count from zero.
pub fn metrics_delta(before: &[(String, f64)], after: &[(String, f64)]) -> Vec<(String, f64)> {
    after
        .iter()
        .filter_map(|(series, v)| {
            let base = before
                .iter()
                .find(|(b, _)| b == series)
                .map_or(0.0, |(_, bv)| *bv);
            let delta = v - base;
            (delta != 0.0).then(|| (series.clone(), delta))
        })
        .collect()
}

const REJECT_CODES: [&str; 8] = [
    "queue_full",
    "shutting_down",
    "deadline_exceeded",
    "deadline_infeasible",
    "invalid",
    "breaker_open",
    "tenant_quota",
    "brownout_shed",
];

/// Outcomes worth retrying: transient by construction (a retry may see
/// a healed pool, a closed breaker, a refilled quota bucket, a
/// disengaged brownout, or an intact connection). `invalid`,
/// `deadline_exceeded`, and `deadline_infeasible` are deliberately
/// absent — they would fail again for the same reason.
const RETRYABLE_CODES: [&str; 8] = [
    "transport",
    "queue_full",
    "breaker_open",
    "tenant_quota",
    "brownout_shed",
    "backend_panic",
    "backend_error",
    "watchdog_timeout",
];

/// Default [`LoadgenConfig::retry_after_cap`]: 2 seconds, overridable
/// per run with `--retry-after-cap-ms`.
pub const DEFAULT_RETRY_AFTER_CAP: Duration = Duration::from_secs(2);

fn summarize(mut samples: Vec<f64>) -> LatencySummary {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    LatencySummary {
        count: samples.len() as u64,
        p50_ms: percentile(&samples, 0.50),
        p95_ms: percentile(&samples, 0.95),
        p99_ms: percentile(&samples, 0.99),
        max_ms: samples.last().copied().unwrap_or(0.0),
    }
}

impl LoadReport {
    fn from_tally(tally: Tally, sent: usize, wall_s: f64) -> LoadReport {
        let rejected = tally
            .by_code
            .iter()
            .filter(|(c, _)| REJECT_CODES.contains(&c.as_str()))
            .map(|(_, n)| n)
            .sum();
        let errors = tally
            .by_code
            .iter()
            .filter(|(c, _)| !REJECT_CODES.contains(&c.as_str()))
            .map(|(_, n)| n)
            .sum();
        LoadReport {
            sent,
            completed: tally.completed,
            rejected,
            errors,
            mismatches: tally.mismatches,
            retries: tally.retries,
            recovered: tally.recovered,
            retry_after_honored: tally.retry_after_honored,
            by_code: tally.by_code,
            wall_s,
            throughput_rps: if wall_s > 0.0 {
                tally.completed as f64 / wall_s
            } else {
                0.0
            },
            rejection_rate: if sent > 0 {
                rejected as f64 / sent as f64
            } else {
                0.0
            },
            latency: summarize(tally.total_ms),
            queue: summarize(tally.queue_ms),
            solve: summarize(tally.solve_ms),
            ttfb: summarize(tally.ttfb_ms),
            stream_bands: tally.bands,
            retry_after_cap_ms: 0,
            server_metrics_delta: Vec::new(),
            fleet_placements: tally.placements,
            multiplan_splits: tally.multiplan_splits,
        }
    }

    /// The report as a JSON object.
    pub fn to_json(&self) -> String {
        let lat = |l: &LatencySummary| {
            format!(
                "{{\"count\":{},\"p50_ms\":{},\"p95_ms\":{},\"p99_ms\":{},\"max_ms\":{}}}",
                l.count,
                json::num(l.p50_ms),
                json::num(l.p95_ms),
                json::num(l.p99_ms),
                json::num(l.max_ms)
            )
        };
        let codes = self
            .by_code
            .iter()
            .map(|(c, n)| format!("\"{}\":{}", json::escape(c), n))
            .collect::<Vec<_>>()
            .join(",");
        let deltas = self
            .server_metrics_delta
            .iter()
            .map(|(series, d)| format!("\"{}\":{}", json::escape(series), json::num(*d)))
            .collect::<Vec<_>>()
            .join(",");
        let placements = self
            .fleet_placements
            .iter()
            .map(|(p, n)| format!("\"{}\":{}", json::escape(p), n))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"sent\":{},\"completed\":{},\"rejected\":{},\"errors\":{},\"mismatches\":{},\
             \"retries\":{},\"recovered\":{},\"retry_after_honored\":{},\
             \"outcomes\":{{{}}},\"wall_s\":{},\"throughput_rps\":{},\"rejection_rate\":{},\
             \"retry_after_cap_ms\":{},\
             \"latency_ms\":{{\"total\":{},\"queue\":{},\"solve\":{},\"ttfb\":{}}},\
             \"stream\":{{\"bands\":{}}},\
             \"fleet\":{{\"placements\":{{{}}},\"multiplan_splits\":{}}},\
             \"server_metrics_delta\":{{{}}}}}",
            self.sent,
            self.completed,
            self.rejected,
            self.errors,
            self.mismatches,
            self.retries,
            self.recovered,
            self.retry_after_honored,
            codes,
            json::num(self.wall_s),
            json::num(self.throughput_rps),
            json::num(self.rejection_rate),
            self.retry_after_cap_ms,
            lat(&self.latency),
            lat(&self.queue),
            lat(&self.solve),
            lat(&self.ttfb),
            self.stream_bands,
            placements,
            self.multiplan_splits,
            deltas,
        )
    }
}

fn fire(target: &dyn SolveTarget, cfg: &LoadgenConfig, tally: &Mutex<Tally>, seq: usize) {
    // Each request gets its own jitter stream so concurrent retries
    // decorrelate instead of thundering back in lockstep.
    let policy = RetryPolicy {
        seed: cfg
            .retry
            .seed
            .wrapping_add((seq as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        ..cfg.retry
    };
    // Size mix: the sequence number (not arrival order) picks the slot,
    // so the request stream is deterministic under any concurrency.
    let (request, expect) = if cfg.mix.is_empty() {
        (cfg.request.clone(), cfg.expect_answer.clone())
    } else {
        let (n, oracle) = &cfg.mix[seq % cfg.mix.len()];
        let mut r = cfg.request.clone();
        r.n = *n;
        (r, oracle.clone())
    };
    let started = Instant::now();
    let mut attempt = 0u32;
    let mut retries_used = 0usize;
    let mut hints_honored = 0usize;
    let mut first_band_ms: Option<f64> = None;
    let mut bands = 0usize;
    let outcome = loop {
        let r = if cfg.stream {
            target.solve_stream_once(&request, &mut |_frame| {
                if first_band_ms.is_none() {
                    first_band_ms = Some(started.elapsed().as_secs_f64() * 1e3);
                }
                bands += 1;
            })
        } else {
            target.solve_once(&request)
        };
        match &r {
            Err(e) if policy.may_retry(attempt) && RETRYABLE_CODES.contains(&e.code.as_str()) => {
                // A server-provided Retry-After beats blind jittered
                // backoff: the server knows when the quota refills or
                // the brownout re-evaluates, the client is guessing.
                match e.retry_after_s {
                    Some(s) => {
                        hints_honored += 1;
                        thread::sleep(Duration::from_secs(s).min(cfg.retry_after_cap));
                    }
                    None => thread::sleep(policy.delay(attempt)),
                }
                attempt += 1;
                retries_used += 1;
            }
            _ => break r,
        }
    };
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    let mut t = tally.lock().unwrap();
    t.total_ms.push(elapsed_ms);
    t.retries += retries_used;
    t.retry_after_honored += hints_honored;
    t.bands += bands;
    match outcome {
        Ok(resp) => {
            t.completed += 1;
            if let Some(ms) = first_band_ms {
                t.ttfb_ms.push(ms);
            }
            t.queue_ms.push(resp.queue_ms);
            t.solve_ms.push(resp.solve_ms);
            if !resp.placed_on.is_empty() {
                t.bump_placement(&resp.placed_on);
            }
            if resp.devices > 1 {
                t.multiplan_splits += 1;
            }
            let mismatch = expect.as_ref().is_some_and(|want| *want != resp.answer);
            if mismatch {
                t.mismatches += 1;
            } else if retries_used > 0 {
                // Oracle re-verification of a retried answer: only a
                // (still-)correct late answer counts as recovered.
                t.recovered += 1;
            }
        }
        Err(e) => t.bump_code(&e.code),
    }
}

/// Runs one load experiment to completion and reports.
pub fn run(target: &dyn SolveTarget, cfg: &LoadgenConfig) -> LoadReport {
    let tally = Mutex::new(Tally::default());
    let start = Instant::now();
    let deadline = cfg.duration.map(|d| start + d);
    let sent = match cfg.rps {
        None => run_closed(target, cfg, &tally, deadline),
        Some(rps) => run_open(target, cfg, &tally, deadline, rps),
    };
    let wall_s = start.elapsed().as_secs_f64();
    let mut report = LoadReport::from_tally(tally.into_inner().unwrap(), sent, wall_s);
    report.retry_after_cap_ms = cfg.retry_after_cap.as_millis() as u64;
    report
}

fn run_closed(
    target: &dyn SolveTarget,
    cfg: &LoadgenConfig,
    tally: &Mutex<Tally>,
    deadline: Option<Instant>,
) -> usize {
    let next = AtomicUsize::new(0);
    thread::scope(|s| {
        for _ in 0..cfg.concurrency.max(1) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if cfg.total > 0 && i >= cfg.total {
                    // Give the slot back so the sent count stays exact.
                    next.fetch_sub(1, Ordering::SeqCst);
                    return;
                }
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    next.fetch_sub(1, Ordering::SeqCst);
                    return;
                }
                fire(target, cfg, tally, i);
            });
        }
    });
    next.load(Ordering::SeqCst)
}

fn run_open(
    target: &dyn SolveTarget,
    cfg: &LoadgenConfig,
    tally: &Mutex<Tally>,
    deadline: Option<Instant>,
    rps: f64,
) -> usize {
    let interval = Duration::from_secs_f64(1.0 / rps.max(1e-3));
    let start = Instant::now();
    let mut sent = 0usize;
    thread::scope(|s| loop {
        if cfg.total > 0 && sent >= cfg.total {
            break;
        }
        let tick = start + interval.mul_f64(sent as f64);
        if deadline.is_some_and(|d| tick >= d) {
            break;
        }
        let now = Instant::now();
        if tick > now {
            thread::sleep(tick - now);
        }
        let seq = sent;
        s.spawn(move || fire(target, cfg, tally, seq));
        sent += 1;
    });
    sent
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Canned {
        answer: String,
        fail_every: usize,
        hits: AtomicUsize,
    }

    impl SolveTarget for Canned {
        fn solve_once(&self, req: &SolveRequest) -> Result<SolveResponse, TargetError> {
            let i = self.hits.fetch_add(1, Ordering::SeqCst) + 1;
            if self.fail_every > 0 && i.is_multiple_of(self.fail_every) {
                return Err(TargetError::new("queue_full", "full"));
            }
            Ok(SolveResponse {
                id: i as u64,
                problem: req.problem.clone(),
                n: req.n,
                answer: self.answer.clone(),
                virtual_ms: 1.0,
                params: lddp_core::schedule::ScheduleParams::new(0, 0),
                tier: lddp_core::kernel::ExecTier::Bulk,
                memory_mode: lddp_core::kernel::MemoryMode::Full,
                table_bytes: 0,
                queue_ms: 0.5,
                solve_ms: 2.0,
                batch_ms: 0.1,
                tune_ms: 0.2,
                trace_id: format!("{i:016x}"),
                batch_size: 1,
                cache_hit: false,
                degraded: vec![],
                placed_on: if req.n >= 64 {
                    "hetero-high"
                } else {
                    "cpu-only"
                }
                .to_string(),
                devices: if req.n >= 512 { 3 } else { 1 },
                ttfb_ms: 0.0,
            })
        }

        fn solve_stream_once(
            &self,
            req: &SolveRequest,
            on_band: &mut dyn FnMut(&BandFrame),
        ) -> Result<SolveResponse, TargetError> {
            for band in 0..3 {
                on_band(&BandFrame {
                    band,
                    bands: 3,
                    wave_lo: band * 10,
                    wave_hi: band * 10 + 9,
                    rows_completed: 0,
                    rows: req.n,
                    cells_done: (band as u64 + 1) * 100,
                    cells_total: 300,
                    score: 1.0,
                    best: None,
                    elapsed_ms: 0.1,
                });
            }
            self.solve_once(req)
        }
    }

    #[test]
    fn streamed_run_reports_ttfb_and_band_count() {
        let target = Canned {
            answer: "42".into(),
            fail_every: 0,
            hits: AtomicUsize::new(0),
        };
        let cfg = LoadgenConfig {
            total: 8,
            concurrency: 2,
            stream: true,
            expect_answer: Some("42".into()),
            retry_after_cap: Duration::from_millis(750),
            ..LoadgenConfig::default()
        };
        let report = run(&target, &cfg);
        assert_eq!(report.completed, 8);
        assert_eq!(report.stream_bands, 8 * 3);
        assert_eq!(report.ttfb.count, 8);
        assert_eq!(report.retry_after_cap_ms, 750);
        let json = report.to_json();
        assert!(json.contains("\"ttfb\":{"), "{json}");
        assert!(json.contains("\"stream\":{\"bands\":24}"), "{json}");
        assert!(json.contains("\"retry_after_cap_ms\":750"), "{json}");
        // A non-streamed run leaves the streaming fields empty.
        let plain = run(
            &target,
            &LoadgenConfig {
                total: 4,
                concurrency: 2,
                expect_answer: Some("42".into()),
                ..LoadgenConfig::default()
            },
        );
        assert_eq!(plain.stream_bands, 0);
        assert_eq!(plain.ttfb.count, 0);
        assert_eq!(plain.retry_after_cap_ms, 2000);
    }

    #[test]
    fn closed_loop_sends_exactly_total() {
        let target = Canned {
            answer: "42".into(),
            fail_every: 0,
            hits: AtomicUsize::new(0),
        };
        let cfg = LoadgenConfig {
            total: 25,
            concurrency: 4,
            expect_answer: Some("42".into()),
            ..LoadgenConfig::default()
        };
        let report = run(&target, &cfg);
        assert_eq!(report.sent, 25);
        assert_eq!(report.completed, 25);
        assert_eq!(report.mismatches, 0);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.latency.count, 25);
        assert!(report.throughput_rps > 0.0);
    }

    #[test]
    fn rejections_and_mismatches_are_counted() {
        let target = Canned {
            answer: "wrong".into(),
            fail_every: 5,
            hits: AtomicUsize::new(0),
        };
        let cfg = LoadgenConfig {
            total: 20,
            concurrency: 2,
            expect_answer: Some("right".into()),
            ..LoadgenConfig::default()
        };
        let report = run(&target, &cfg);
        assert_eq!(report.sent, 20);
        assert_eq!(report.completed, 16);
        assert_eq!(report.rejected, 4);
        assert_eq!(report.mismatches, 16);
        assert!((report.rejection_rate - 0.2).abs() < 1e-12);
        assert_eq!(report.by_code, vec![("queue_full".to_string(), 4)]);
    }

    #[test]
    fn open_loop_paces_and_caps_by_total() {
        let target = Canned {
            answer: "x".into(),
            fail_every: 0,
            hits: AtomicUsize::new(0),
        };
        let cfg = LoadgenConfig {
            total: 10,
            rps: Some(500.0),
            concurrency: 1,
            ..LoadgenConfig::default()
        };
        let report = run(&target, &cfg);
        assert_eq!(report.sent, 10);
        assert_eq!(report.completed, 10);
        // 10 requests at 500 rps should take about 20 ms of pacing.
        assert!(report.wall_s >= 0.015, "wall_s = {}", report.wall_s);
    }

    /// Fails every first attempt with a retryable code; succeeds on the
    /// retry. Odd hit numbers are the failures under 2 attempts/request.
    struct FlakyOnce {
        answer: String,
        hits: AtomicUsize,
        failures: AtomicUsize,
    }

    impl SolveTarget for FlakyOnce {
        fn solve_once(&self, req: &SolveRequest) -> Result<SolveResponse, TargetError> {
            let i = self.hits.fetch_add(1, Ordering::SeqCst);
            if i.is_multiple_of(2) {
                self.failures.fetch_add(1, Ordering::SeqCst);
                return Err(TargetError::new("backend_panic", "injected"));
            }
            Ok(SolveResponse {
                id: i as u64,
                problem: req.problem.clone(),
                n: req.n,
                answer: self.answer.clone(),
                virtual_ms: 1.0,
                params: lddp_core::schedule::ScheduleParams::new(0, 0),
                tier: lddp_core::kernel::ExecTier::Bulk,
                memory_mode: lddp_core::kernel::MemoryMode::Full,
                table_bytes: 0,
                queue_ms: 0.1,
                solve_ms: 0.2,
                batch_ms: 0.0,
                tune_ms: 0.0,
                trace_id: format!("{i:016x}"),
                batch_size: 1,
                cache_hit: false,
                degraded: vec![],
                placed_on: String::new(),
                devices: 1,
                ttfb_ms: 0.0,
            })
        }
    }

    #[test]
    fn retries_recover_transient_failures_with_oracle_check() {
        let target = FlakyOnce {
            answer: "42".into(),
            hits: AtomicUsize::new(0),
            failures: AtomicUsize::new(0),
        };
        let cfg = LoadgenConfig {
            total: 10,
            concurrency: 1, // sequential so the fail/succeed cadence holds
            expect_answer: Some("42".into()),
            retry: RetryPolicy {
                max_attempts: 2,
                base_ms: 1,
                cap_ms: 2,
                seed: 9,
            },
            ..LoadgenConfig::default()
        };
        let report = run(&target, &cfg);
        assert_eq!(report.sent, 10);
        assert_eq!(report.completed, 10, "every request recovers on retry");
        assert_eq!(report.errors, 0);
        assert_eq!(report.retries, 10);
        assert_eq!(report.recovered, 10);
        assert_eq!(report.mismatches, 0);
        assert_eq!(target.failures.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn non_retryable_codes_fail_without_retry() {
        let target = Canned {
            answer: "x".into(),
            fail_every: 1, // every attempt rejects
            hits: AtomicUsize::new(0),
        };
        let mut cfg = LoadgenConfig {
            total: 5,
            concurrency: 1,
            retry: RetryPolicy {
                max_attempts: 3,
                base_ms: 1,
                cap_ms: 2,
                seed: 4,
            },
            ..LoadgenConfig::default()
        };
        // queue_full IS retryable: 5 requests * 3 attempts.
        let report = run(&target, &cfg);
        assert_eq!(report.rejected, 5);
        assert_eq!(report.retries, 10);
        assert_eq!(target.hits.load(Ordering::SeqCst), 15);

        // deadline_exceeded is not retried.
        struct AlwaysLate;
        impl SolveTarget for AlwaysLate {
            fn solve_once(&self, _req: &SolveRequest) -> Result<SolveResponse, TargetError> {
                Err(TargetError::new("deadline_exceeded", "too slow"))
            }
        }
        cfg.total = 4;
        let report = run(&AlwaysLate, &cfg);
        assert_eq!(report.rejected, 4);
        assert_eq!(report.retries, 0);

        // deadline_infeasible is a final verdict too: the cost model
        // will produce the same estimate on every attempt.
        struct NeverFeasible;
        impl SolveTarget for NeverFeasible {
            fn solve_once(&self, _req: &SolveRequest) -> Result<SolveResponse, TargetError> {
                Err(TargetError::new(
                    "deadline_infeasible",
                    "estimate 5s > 10ms",
                ))
            }
        }
        let report = run(&NeverFeasible, &cfg);
        assert_eq!(report.rejected, 4);
        assert_eq!(report.retries, 0);
    }

    #[test]
    fn retry_after_hints_preempt_jittered_backoff() {
        // Rejects twice with a Retry-After hint, then succeeds — the
        // pause schedule must come from the hint, not the policy.
        struct HintedFlaky {
            hits: AtomicUsize,
        }
        impl SolveTarget for HintedFlaky {
            fn solve_once(&self, req: &SolveRequest) -> Result<SolveResponse, TargetError> {
                let i = self.hits.fetch_add(1, Ordering::SeqCst);
                if i < 2 {
                    return Err(TargetError {
                        code: "tenant_quota".into(),
                        message: "over quota".into(),
                        retry_after_s: Some(0), // "now" — keeps the test fast
                    });
                }
                Canned {
                    answer: "42".into(),
                    fail_every: 0,
                    hits: AtomicUsize::new(i),
                }
                .solve_once(req)
            }
        }
        let target = HintedFlaky {
            hits: AtomicUsize::new(0),
        };
        let cfg = LoadgenConfig {
            total: 1,
            concurrency: 1,
            retry: RetryPolicy {
                max_attempts: 3,
                // A hint-ignoring implementation would sleep ~4s here
                // and trip the assertion below.
                base_ms: 2_000,
                cap_ms: 2_000,
                seed: 7,
            },
            ..LoadgenConfig::default()
        };
        let started = Instant::now();
        let report = run(&target, &cfg);
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "Retry-After 0 should preempt the 2s backoff schedule"
        );
        assert_eq!(report.completed, 1);
        assert_eq!(report.retries, 2);
        assert_eq!(report.retry_after_honored, 2);
        let v = json::parse(&report.to_json()).unwrap();
        assert_eq!(
            v.get("retry_after_honored").and_then(|j| j.as_f64()),
            Some(2.0)
        );
    }

    #[test]
    fn metrics_delta_subtracts_and_drops_unmoved_series() {
        let before = vec![
            ("lddp_serve_accepted_total".to_string(), 10.0),
            ("lddp_serve_queue_depth".to_string(), 3.0),
            ("lddp_serve_solves_total{tier=\"bulk\"}".to_string(), 4.0),
        ];
        let after = vec![
            ("lddp_serve_accepted_total".to_string(), 25.0),
            ("lddp_serve_queue_depth".to_string(), 3.0),
            ("lddp_serve_solves_total{tier=\"bulk\"}".to_string(), 9.0),
            ("lddp_serve_errors_total".to_string(), 2.0),
        ];
        let delta = metrics_delta(&before, &after);
        assert_eq!(
            delta,
            vec![
                ("lddp_serve_accepted_total".to_string(), 15.0),
                ("lddp_serve_solves_total{tier=\"bulk\"}".to_string(), 5.0),
                ("lddp_serve_errors_total".to_string(), 2.0),
            ]
        );
        // The delta serializes into the report JSON (labels escaped).
        let mut report = LoadReport::from_tally(Tally::default(), 0, 1.0);
        report.server_metrics_delta = delta;
        let v = json::parse(&report.to_json()).unwrap();
        assert_eq!(
            v.get("server_metrics_delta")
                .and_then(|j| j.get("lddp_serve_accepted_total"))
                .and_then(|j| j.as_f64()),
            Some(15.0)
        );
    }

    #[test]
    fn size_mix_cycles_and_fleet_placements_are_tallied() {
        let target = Canned {
            answer: "42".into(),
            fail_every: 0,
            hits: AtomicUsize::new(0),
        };
        let cfg = LoadgenConfig {
            total: 12,
            concurrency: 3,
            mix: vec![
                (48, Some("42".into())),
                (96, Some("42".into())),
                (1100, Some("42".into())),
            ],
            ..LoadgenConfig::default()
        };
        let report = run(&target, &cfg);
        assert_eq!(report.completed, 12);
        assert_eq!(report.mismatches, 0);
        // 12 requests over a 3-slot mix: 4× n=48 (placed on cpu-only by
        // the canned target), 8× n∈{96, 1100} (hetero-high), and the 4
        // n=1100 responses claim a 3-device split.
        let find = |p: &str| {
            report
                .fleet_placements
                .iter()
                .find(|(q, _)| q == p)
                .map_or(0, |(_, n)| *n)
        };
        assert_eq!(find("cpu-only"), 4);
        assert_eq!(find("hetero-high"), 8);
        assert_eq!(report.multiplan_splits, 4);
        let v = json::parse(&report.to_json()).unwrap();
        let fleet = v.get("fleet").expect("report has a fleet section");
        assert_eq!(
            fleet.get("multiplan_splits").and_then(|j| j.as_f64()),
            Some(4.0)
        );
        assert_eq!(
            fleet
                .get("placements")
                .and_then(|p| p.get("cpu-only"))
                .and_then(|j| j.as_f64()),
            Some(4.0)
        );
    }

    #[test]
    fn report_json_parses() {
        let target = Canned {
            answer: "x".into(),
            fail_every: 3,
            hits: AtomicUsize::new(0),
        };
        let cfg = LoadgenConfig {
            total: 9,
            concurrency: 3,
            ..LoadgenConfig::default()
        };
        let report = run(&target, &cfg);
        let v = json::parse(&report.to_json()).unwrap();
        assert_eq!(v.get("sent").and_then(|j| j.as_f64()), Some(9.0));
        assert_eq!(v.get("retries").and_then(|j| j.as_f64()), Some(0.0));
        assert_eq!(v.get("recovered").and_then(|j| j.as_f64()), Some(0.0));
        assert!(v.get("latency_ms").and_then(|j| j.get("total")).is_some());
        assert_eq!(
            v.get("outcomes")
                .and_then(|j| j.get("queue_full"))
                .and_then(|j| j.as_f64()),
            Some(3.0)
        );
    }
}
