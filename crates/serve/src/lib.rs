//! # lddp-serve — a batching solve server for LDDP workloads
//!
//! This crate turns the one-shot `Framework::solve` path into a
//! long-running service with the properties a shared deployment needs:
//!
//! - **Admission control & backpressure** — a bounded [`JobQueue`];
//!   when it is full, requests are rejected immediately with
//!   [`RejectReason::QueueFull`] (HTTP 429) instead of queueing without
//!   bound. Requests may carry a deadline and are rejected with 504 if
//!   it expires while they wait.
//! - **Batching** — the dequeue side gathers queued requests sharing a
//!   [`BatchKey`] (problem, size bucket, platform, pinned params) so
//!   the expensive §V-A tuning step runs **once per batch** and its
//!   result is amortized — backed by
//!   [`lddp_core::tuner_cache::TunerCache`] across batches.
//! - **Per-request tracing** — every request emits `serve.queue_wait`,
//!   `serve.batch`, and `serve.solve` spans plus the counters in
//!   [`lddp_trace::catalog`], so a traced serve run opens in Perfetto
//!   with one lane per worker.
//! - **Graceful shutdown** — `POST /shutdown` (or
//!   [`Client::shutdown`]) closes admission, drains the queue, answers
//!   everything in flight, then joins every thread.
//!
//! The crate is std-only and backend-agnostic: the actual tuning and
//! solving sit behind [`SolveBackend`], implemented by the umbrella
//! `lddp` crate (and by mocks in tests). Front ends: a hand-rolled
//! HTTP/1.1 endpoint (`POST /solve`, `GET /healthz`, `GET /stats`,
//! `POST /shutdown`) over `std::net`, and the in-process [`Client`].
//! [`loadgen`] drives either through the same engine.

pub mod http;
pub mod job;
pub mod loadgen;
pub mod queue;
pub mod server;
pub mod stats;

pub use job::{BatchKey, RejectReason, ServeError, SolveRequest, SolveResponse};
pub use queue::{Job, JobQueue};
pub use server::{BackendSolve, Client, ServeConfig, Server, SolveBackend};
pub use stats::{LatencySummary, ServeStats, StatsSnapshot};

#[cfg(test)]
mod tests {
    use super::*;
    use lddp_core::schedule::ScheduleParams;
    use lddp_trace::{NullSink, Recorder, TraceSink};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    /// Deterministic fake backend: answers `"<problem>:<n>"`, counts
    /// tune calls, and can be slowed down or made to fail.
    struct MockBackend {
        tunes: AtomicUsize,
        solves: AtomicUsize,
        solve_delay: Duration,
        fail_problem: Option<&'static str>,
    }

    impl MockBackend {
        fn new() -> MockBackend {
            MockBackend {
                tunes: AtomicUsize::new(0),
                solves: AtomicUsize::new(0),
                solve_delay: Duration::ZERO,
                fail_problem: None,
            }
        }
    }

    impl SolveBackend for MockBackend {
        fn validate(&self, req: &SolveRequest) -> Result<(), String> {
            if req.problem == "unknown" {
                Err(format!("unknown problem \"{}\"", req.problem))
            } else {
                Ok(())
            }
        }

        fn tune(
            &self,
            _probe: &SolveRequest,
            _sink: &dyn TraceSink,
        ) -> Result<(ScheduleParams, bool), String> {
            let prior = self.tunes.fetch_add(1, Ordering::SeqCst);
            Ok((ScheduleParams::new(2, 16), prior > 0))
        }

        fn solve(
            &self,
            req: &SolveRequest,
            params: ScheduleParams,
            _sink: &dyn TraceSink,
        ) -> Result<BackendSolve, String> {
            self.solves.fetch_add(1, Ordering::SeqCst);
            if !self.solve_delay.is_zero() {
                std::thread::sleep(self.solve_delay);
            }
            if self.fail_problem == Some(req.problem.as_str()) {
                return Err("kernel exploded".to_string());
            }
            Ok(BackendSolve {
                answer: format!("{}:{}", req.problem, req.n),
                virtual_ms: 0.5,
                params,
            })
        }
    }

    #[test]
    fn in_process_solve_round_trips() {
        let backend = MockBackend::new();
        let server = Server::new(ServeConfig::default(), &backend, &NullSink);
        let resp = server
            .run(None, |client| client.solve(SolveRequest::new("lcs", 128)))
            .unwrap();
        assert_eq!(resp.answer, "lcs:128");
        assert_eq!(resp.params, ScheduleParams::new(2, 16));
        assert!(resp.batch_size >= 1);
    }

    #[test]
    fn invalid_requests_are_rejected_at_admission() {
        let backend = MockBackend::new();
        let server = Server::new(ServeConfig::default(), &backend, &NullSink);
        let err = server
            .run(None, |client| client.solve(SolveRequest::new("unknown", 64)))
            .unwrap_err();
        assert_eq!(err.code(), "invalid");
        assert_eq!(backend.solves.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn backend_failures_surface_as_backend_errors() {
        let mut backend = MockBackend::new();
        backend.fail_problem = Some("bad");
        let server = Server::new(ServeConfig::default(), &backend, &NullSink);
        let err = server
            .run(None, |client| client.solve(SolveRequest::new("bad", 64)))
            .unwrap_err();
        assert_eq!(err.code(), "backend_error");
        let snap = server.snapshot();
        assert_eq!(snap.errors, 1);
        assert_eq!(snap.completed, 0);
    }

    #[test]
    fn tune_runs_once_per_batch_and_amortizes() {
        let backend = MockBackend::new();
        let config = ServeConfig {
            workers: 1,
            max_batch: 32,
            ..ServeConfig::default()
        };
        let server = Server::new(config, &backend, &NullSink);
        server.run(None, |client| {
            // Pile up same-key requests, then wait for them together;
            // a single worker picks them up as (at most a few) batches.
            let rxs: Vec<_> = (0..16)
                .map(|_| client.submit(SolveRequest::new("lcs", 256)).unwrap())
                .collect();
            for rx in rxs {
                let resp = rx.recv().unwrap().unwrap();
                assert_eq!(resp.answer, "lcs:256");
            }
        });
        let solves = backend.solves.load(Ordering::SeqCst);
        let tunes = backend.tunes.load(Ordering::SeqCst);
        assert_eq!(solves, 16);
        assert!(
            tunes < solves,
            "tuning should be amortized: {tunes} tunes for {solves} solves"
        );
        let snap = server.snapshot();
        assert_eq!(snap.completed, 16);
        assert!(snap.mean_batch_size() > 1.0);
    }

    #[test]
    fn queue_full_rejects_with_backpressure() {
        let mut backend = MockBackend::new();
        backend.solve_delay = Duration::from_millis(20);
        let config = ServeConfig {
            workers: 1,
            queue_capacity: 2,
            max_batch: 1,
            ..ServeConfig::default()
        };
        let server = Server::new(config, &backend, &NullSink);
        server.run(None, |client| {
            let mut rejected = 0;
            let mut rxs = Vec::new();
            for _ in 0..12 {
                match client.submit(SolveRequest::new("lcs", 64)) {
                    Ok(rx) => rxs.push(rx),
                    Err(RejectReason::QueueFull { capacity }) => {
                        assert_eq!(capacity, 2);
                        rejected += 1;
                    }
                    Err(other) => panic!("unexpected rejection {other:?}"),
                }
            }
            assert!(rejected > 0, "tiny queue under burst must shed load");
            for rx in rxs {
                rx.recv().unwrap().unwrap();
            }
            assert!(client.snapshot().rejected_full > 0);
        });
    }

    #[test]
    fn expired_deadlines_reject_instead_of_solving() {
        let mut backend = MockBackend::new();
        backend.solve_delay = Duration::from_millis(30);
        let config = ServeConfig {
            workers: 1,
            max_batch: 1,
            ..ServeConfig::default()
        };
        let server = Server::new(config, &backend, &NullSink);
        server.run(None, |client| {
            // First request occupies the worker; the second's 1 ms
            // deadline expires while it queues behind it.
            let slow = client.submit(SolveRequest::new("lcs", 64)).unwrap();
            let mut hasty_req = SolveRequest::new("lcs", 64);
            hasty_req.deadline_ms = Some(1);
            let hasty = client.submit(hasty_req).unwrap();
            slow.recv().unwrap().unwrap();
            let err = hasty.recv().unwrap().unwrap_err();
            assert_eq!(err.code(), "deadline_exceeded");
        });
        let snap = server.snapshot();
        assert_eq!(snap.rejected_deadline, 1);
        assert_eq!(snap.completed, 1);
    }

    #[test]
    fn shutdown_drains_and_then_rejects() {
        let backend = MockBackend::new();
        let server = Server::new(ServeConfig::default(), &backend, &NullSink);
        server.run(None, |client| {
            let rx = client.submit(SolveRequest::new("lcs", 64)).unwrap();
            client.shutdown();
            // Admitted before shutdown → still answered.
            rx.recv().unwrap().unwrap();
            // Admitted after → shed.
            match client.submit(SolveRequest::new("lcs", 64)) {
                Err(RejectReason::ShuttingDown) => {}
                other => panic!("expected shutting_down, got {other:?}"),
            }
            client.wait_shutdown(); // returns immediately once draining
        });
    }

    #[test]
    fn traced_run_emits_queue_batch_solve_spans_and_counters() {
        let backend = MockBackend::new();
        let recorder = Recorder::new();
        let server = Server::new(ServeConfig::default(), &backend, &recorder);
        server.run(None, |client| {
            for _ in 0..3 {
                client.solve(SolveRequest::new("dtw", 128)).unwrap();
            }
        });
        let data = recorder.into_data();
        let span_names: Vec<&str> = data.spans.iter().map(|s| s.name.as_str()).collect();
        for expected in [
            lddp_trace::catalog::SPAN_QUEUE_WAIT,
            lddp_trace::catalog::SPAN_BATCH,
            lddp_trace::catalog::SPAN_SOLVE,
        ] {
            assert!(
                span_names.contains(&expected),
                "missing span {expected:?} in {span_names:?}"
            );
        }
        for expected in [
            lddp_trace::catalog::CTR_ACCEPTED,
            lddp_trace::catalog::CTR_COMPLETED,
            lddp_trace::catalog::CTR_BATCHES,
        ] {
            assert!(
                data.counters.contains_key(expected),
                "missing counter {expected:?} in {:?}",
                data.counters.keys().collect::<Vec<_>>()
            );
        }
        assert_eq!(data.counters[lddp_trace::catalog::CTR_COMPLETED], 3);
    }

    #[test]
    fn http_front_end_serves_all_routes() {
        let backend = MockBackend::new();
        let server = Server::new(ServeConfig::default(), &backend, &NullSink);
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let timeout = Duration::from_secs(10);
        server.run(Some(listener), |_client| {
            let (status, body) = http::request(
                &addr,
                "POST",
                "/solve",
                Some(r#"{"problem":"lcs","n":96}"#),
                timeout,
            )
            .unwrap();
            assert_eq!(status, 200, "{body}");
            let resp = SolveResponse::from_json(&body).unwrap();
            assert_eq!(resp.answer, "lcs:96");

            let (status, body) =
                http::request(&addr, "POST", "/solve", Some(r#"{"n":5}"#), timeout).unwrap();
            assert_eq!(status, 400, "{body}");

            let (status, body) = http::request(&addr, "GET", "/healthz", None, timeout).unwrap();
            assert_eq!(status, 200);
            assert!(body.contains("\"status\":\"ok\""), "{body}");

            let (status, body) = http::request(&addr, "GET", "/stats", None, timeout).unwrap();
            assert_eq!(status, 200);
            let v = lddp_trace::json::parse(&body).unwrap();
            assert_eq!(v.get("completed").and_then(|j| j.as_f64()), Some(1.0));

            let (status, _) = http::request(&addr, "GET", "/nope", None, timeout).unwrap();
            assert_eq!(status, 404);
            let (status, _) = http::request(&addr, "DELETE", "/stats", None, timeout).unwrap();
            assert_eq!(status, 405);

            let (status, body) = http::request(&addr, "POST", "/shutdown", None, timeout).unwrap();
            assert_eq!(status, 200);
            assert!(body.contains("draining"), "{body}");
        });
        // run() returning proves the drain joined every thread.
    }
}
