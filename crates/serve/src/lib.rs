//! # lddp-serve — a batching solve server for LDDP workloads
//!
//! This crate turns the one-shot `Framework::solve` path into a
//! long-running service with the properties a shared deployment needs:
//!
//! - **Admission control & backpressure** — a bounded [`JobQueue`];
//!   when it is full, requests are rejected immediately with
//!   [`RejectReason::QueueFull`] (HTTP 429) instead of queueing without
//!   bound. Requests may carry a deadline and are rejected with 504 if
//!   it expires while they wait.
//! - **Batching** — the dequeue side gathers queued requests sharing a
//!   [`BatchKey`] (problem, size bucket, platform, pinned params) so
//!   the expensive §V-A tuning step runs **once per batch** and its
//!   result is amortized — backed by
//!   [`lddp_core::tuner_cache::TunerCache`] across batches.
//! - **Per-request tracing** — every request emits `serve.queue_wait`,
//!   `serve.batch`, `serve.tune`, and `serve.solve` spans plus the
//!   counters in [`lddp_trace::catalog`], so a traced serve run opens
//!   in Perfetto with one lane per worker. Each request also gets a
//!   trace id at admission, returned in the response body and the
//!   `X-LDDP-Trace-Id` header.
//! - **Live telemetry** — counters, gauges, and latency sketches
//!   publish into a [`lddp_trace::live::LiveRegistry`] behind
//!   `GET /metrics` (Prometheus text exposition), and an always-on
//!   flight recorder keeps the last few thousand spans for
//!   `GET /debug/trace` (Chrome trace JSON) — no sink, flag, or
//!   restart required. See `docs/OBSERVABILITY.md`.
//! - **Quality of service** — two service classes
//!   (`interactive`/`batch`) with separate queue budgets, EDF ordering
//!   within each class, per-tenant admission quotas (`429
//!   tenant_quota`), §IV cost-model feasibility rejection of
//!   un-meetable deadlines (`504 deadline_infeasible`), and a
//!   [`brownout`] ladder that sheds batch work in graduated steps
//!   under sustained queue pressure. See `docs/SERVING.md`.
//! - **Streaming results** — `POST /solve?stream=1` answers over
//!   chunked HTTP/1.1 with one JSON [`BandFrame`] per completed
//!   wave-band of the rolling execution, so results flow while the
//!   pool is still solving; a slow reader throttles band emission
//!   through a bounded channel (the pool stalls at a wave barrier)
//!   instead of buffering unboundedly. See `docs/SERVING.md`.
//! - **Graceful shutdown** — `POST /shutdown` (or
//!   [`Client::shutdown`]) closes admission, drains the queue, answers
//!   everything in flight, then joins every thread.
//! - **Fault isolation & degradation** — backend panics are caught per
//!   solve (the request gets a clean 500, the worker survives), a
//!   per-solve watchdog turns runaway solves into 504s, and a circuit
//!   breaker refuses work with 503 + `Retry-After` after consecutive
//!   backend failures, flipping `/healthz` to `degraded` until a
//!   half-open probe succeeds. See `docs/ROBUSTNESS.md`.
//!
//! The crate is std-only and backend-agnostic: the actual tuning and
//! solving sit behind [`SolveBackend`], implemented by the umbrella
//! `lddp` crate (and by mocks in tests). Front ends: a hand-rolled
//! HTTP/1.1 endpoint (`POST /solve`, `GET /healthz`, `GET /stats`,
//! `GET /metrics`, `GET /debug/trace`, `POST /shutdown`) over
//! `std::net`, and the in-process [`Client`]. [`loadgen`] drives
//! either through the same engine.

pub mod brownout;
pub mod http;
pub mod job;
pub mod loadgen;
pub mod queue;
pub mod server;
pub mod stats;
pub mod stream;

pub use brownout::{Brownout, BrownoutConfig};
pub use job::{BatchKey, Priority, RejectReason, ServeError, SolveRequest, SolveResponse};
pub use queue::{Job, JobQueue, Popped};
pub use server::{
    BackendSolve, BatchPlan, Client, PoolHealth, ServeConfig, Server, SolveBackend, StreamHandle,
};
pub use stats::{LatencySummary, ServeStats, StatsSnapshot};
pub use stream::BandFrame;

#[cfg(test)]
mod tests {
    use super::*;
    use lddp_core::kernel::{ExecTier, MemoryMode};
    use lddp_core::schedule::ScheduleParams;
    use lddp_core::tuner_cache::TunedConfig;
    use lddp_trace::{NullSink, Recorder, TraceSink};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    /// Deterministic fake backend: answers `"<problem>:<n>"`, counts
    /// tune calls, and can be slowed down, made to fail, made to
    /// panic, or made to report a degraded solve. For QoS tests it can
    /// also report a fixed §IV cost estimate and rolling support, and
    /// it counts tune probes that arrived pinned to rolling memory.
    struct MockBackend {
        tunes: AtomicUsize,
        solves: AtomicUsize,
        solve_delay: Duration,
        fail_problem: Option<&'static str>,
        panic_problem: Option<&'static str>,
        degrade_problem: Option<&'static str>,
        estimate_ms: Option<f64>,
        rolling_ok: bool,
        rolling_probes: AtomicUsize,
    }

    impl MockBackend {
        fn new() -> MockBackend {
            MockBackend {
                tunes: AtomicUsize::new(0),
                solves: AtomicUsize::new(0),
                solve_delay: Duration::ZERO,
                fail_problem: None,
                panic_problem: None,
                degrade_problem: None,
                estimate_ms: None,
                rolling_ok: false,
                rolling_probes: AtomicUsize::new(0),
            }
        }
    }

    impl SolveBackend for MockBackend {
        fn validate(&self, req: &SolveRequest) -> Result<(), String> {
            if req.problem == "unknown" {
                Err(format!("unknown problem \"{}\"", req.problem))
            } else {
                Ok(())
            }
        }

        fn tune(
            &self,
            probe: &SolveRequest,
            _sink: &dyn TraceSink,
        ) -> Result<(TunedConfig, bool), String> {
            if probe.memory_mode == Some(MemoryMode::Rolling) {
                self.rolling_probes.fetch_add(1, Ordering::SeqCst);
            }
            let prior = self.tunes.fetch_add(1, Ordering::SeqCst);
            let config = TunedConfig::new(ScheduleParams::new(2, 16), ExecTier::Simd);
            Ok((config, prior > 0))
        }

        fn estimate_ms(&self, _req: &SolveRequest) -> Option<f64> {
            self.estimate_ms
        }

        fn supports_rolling(&self, _req: &SolveRequest) -> bool {
            self.rolling_ok
        }

        fn solve(
            &self,
            req: &SolveRequest,
            config: TunedConfig,
            _sink: &dyn TraceSink,
        ) -> Result<BackendSolve, String> {
            self.solves.fetch_add(1, Ordering::SeqCst);
            if !self.solve_delay.is_zero() {
                std::thread::sleep(self.solve_delay);
            }
            if self.fail_problem == Some(req.problem.as_str()) {
                return Err("kernel exploded".to_string());
            }
            if self.panic_problem == Some(req.problem.as_str()) {
                panic!("kernel bug in {}", req.problem);
            }
            let degraded = if self.degrade_problem == Some(req.problem.as_str()) {
                vec!["bulk_to_scalar".to_string()]
            } else {
                vec![]
            };
            Ok(BackendSolve {
                answer: format!("{}:{}", req.problem, req.n),
                virtual_ms: 0.5,
                params: config.params,
                tier: config.tier,
                memory_mode: config.memory_mode,
                table_bytes: 0,
                degraded,
                placed_on: None,
                devices: 1,
            })
        }
    }

    #[test]
    fn in_process_solve_round_trips() {
        let backend = MockBackend::new();
        let server = Server::new(ServeConfig::default(), &backend, &NullSink);
        let resp = server
            .run(None, |client| client.solve(SolveRequest::new("lcs", 128)))
            .unwrap();
        assert_eq!(resp.answer, "lcs:128");
        assert_eq!(resp.params, ScheduleParams::new(2, 16));
        assert_eq!(resp.tier, ExecTier::Simd);
        assert!(resp.batch_size >= 1);
    }

    #[test]
    fn invalid_requests_are_rejected_at_admission() {
        let backend = MockBackend::new();
        let server = Server::new(ServeConfig::default(), &backend, &NullSink);
        let err = server
            .run(None, |client| {
                client.solve(SolveRequest::new("unknown", 64))
            })
            .unwrap_err();
        assert_eq!(err.code(), "invalid");
        assert_eq!(backend.solves.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn backend_failures_surface_as_backend_errors() {
        let mut backend = MockBackend::new();
        backend.fail_problem = Some("bad");
        let server = Server::new(ServeConfig::default(), &backend, &NullSink);
        let err = server
            .run(None, |client| client.solve(SolveRequest::new("bad", 64)))
            .unwrap_err();
        assert_eq!(err.code(), "backend_error");
        let snap = server.snapshot();
        assert_eq!(snap.errors, 1);
        assert_eq!(snap.completed, 0);
    }

    #[test]
    fn tune_runs_once_per_batch_and_amortizes() {
        let backend = MockBackend::new();
        let config = ServeConfig {
            workers: 1,
            max_batch: 32,
            ..ServeConfig::default()
        };
        let server = Server::new(config, &backend, &NullSink);
        server.run(None, |client| {
            // Pile up same-key requests, then wait for them together;
            // a single worker picks them up as (at most a few) batches.
            let rxs: Vec<_> = (0..16)
                .map(|_| client.submit(SolveRequest::new("lcs", 256)).unwrap())
                .collect();
            for rx in rxs {
                let resp = rx.recv().unwrap().unwrap();
                assert_eq!(resp.answer, "lcs:256");
            }
        });
        let solves = backend.solves.load(Ordering::SeqCst);
        let tunes = backend.tunes.load(Ordering::SeqCst);
        assert_eq!(solves, 16);
        assert!(
            tunes < solves,
            "tuning should be amortized: {tunes} tunes for {solves} solves"
        );
        let snap = server.snapshot();
        assert_eq!(snap.completed, 16);
        assert!(snap.mean_batch_size() > 1.0);
    }

    #[test]
    fn queue_full_rejects_with_backpressure() {
        let mut backend = MockBackend::new();
        backend.solve_delay = Duration::from_millis(20);
        let config = ServeConfig {
            workers: 1,
            queue_capacity: 2,
            max_batch: 1,
            ..ServeConfig::default()
        };
        let server = Server::new(config, &backend, &NullSink);
        server.run(None, |client| {
            let mut rejected = 0;
            let mut rxs = Vec::new();
            for _ in 0..12 {
                match client.submit(SolveRequest::new("lcs", 64)) {
                    Ok(rx) => rxs.push(rx),
                    Err(RejectReason::QueueFull { capacity }) => {
                        assert_eq!(capacity, 2);
                        rejected += 1;
                    }
                    Err(other) => panic!("unexpected rejection {other:?}"),
                }
            }
            assert!(rejected > 0, "tiny queue under burst must shed load");
            for rx in rxs {
                rx.recv().unwrap().unwrap();
            }
            assert!(client.snapshot().rejected_full > 0);
        });
    }

    #[test]
    fn expired_deadlines_reject_instead_of_solving() {
        let mut backend = MockBackend::new();
        backend.solve_delay = Duration::from_millis(30);
        let config = ServeConfig {
            workers: 1,
            max_batch: 1,
            ..ServeConfig::default()
        };
        let server = Server::new(config, &backend, &NullSink);
        server.run(None, |client| {
            // First request occupies the worker (the sleep lets it be
            // picked up — EDF would otherwise pop the deadline-carrying
            // job first); the second's 1 ms deadline then expires while
            // it queues behind the in-flight solve.
            let slow = client.submit(SolveRequest::new("lcs", 64)).unwrap();
            std::thread::sleep(Duration::from_millis(10));
            let mut hasty_req = SolveRequest::new("lcs", 64);
            hasty_req.deadline_ms = Some(1);
            let hasty = client.submit(hasty_req).unwrap();
            slow.recv().unwrap().unwrap();
            let err = hasty.recv().unwrap().unwrap_err();
            assert_eq!(err.code(), "deadline_exceeded");
        });
        let snap = server.snapshot();
        assert_eq!(snap.rejected_deadline, 1);
        assert_eq!(snap.completed, 1);
    }

    #[test]
    fn shutdown_drains_and_then_rejects() {
        let backend = MockBackend::new();
        let server = Server::new(ServeConfig::default(), &backend, &NullSink);
        server.run(None, |client| {
            let rx = client.submit(SolveRequest::new("lcs", 64)).unwrap();
            client.shutdown();
            // Admitted before shutdown → still answered.
            rx.recv().unwrap().unwrap();
            // Admitted after → shed.
            match client.submit(SolveRequest::new("lcs", 64)) {
                Err(RejectReason::ShuttingDown) => {}
                other => panic!("expected shutting_down, got {other:?}"),
            }
            client.wait_shutdown(); // returns immediately once draining
        });
    }

    #[test]
    fn traced_run_emits_queue_batch_solve_spans_and_counters() {
        let backend = MockBackend::new();
        let recorder = Recorder::new();
        let server = Server::new(ServeConfig::default(), &backend, &recorder);
        server.run(None, |client| {
            for _ in 0..3 {
                client.solve(SolveRequest::new("dtw", 128)).unwrap();
            }
        });
        let data = recorder.into_data();
        let span_names: Vec<&str> = data.spans.iter().map(|s| s.name.as_str()).collect();
        for expected in [
            lddp_trace::catalog::SPAN_QUEUE_WAIT,
            lddp_trace::catalog::SPAN_BATCH,
            lddp_trace::catalog::SPAN_SOLVE,
        ] {
            assert!(
                span_names.contains(&expected),
                "missing span {expected:?} in {span_names:?}"
            );
        }
        for expected in [
            lddp_trace::catalog::CTR_ACCEPTED,
            lddp_trace::catalog::CTR_COMPLETED,
            lddp_trace::catalog::CTR_BATCHES,
        ] {
            assert!(
                data.counters.contains_key(expected),
                "missing counter {expected:?} in {:?}",
                data.counters.keys().collect::<Vec<_>>()
            );
        }
        assert_eq!(data.counters[lddp_trace::catalog::CTR_COMPLETED], 3);
        assert_eq!(data.counters[lddp_trace::catalog::CTR_TIER_SIMD], 3);
    }

    #[test]
    fn backend_panic_is_isolated_and_worker_survives() {
        let mut backend = MockBackend::new();
        backend.panic_problem = Some("boom");
        let config = ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        };
        let server = Server::new(config, &backend, &NullSink);
        server.run(None, |client| {
            let err = client.solve(SolveRequest::new("boom", 64)).unwrap_err();
            assert_eq!(err.code(), "backend_panic");
            assert_eq!(err.http_status(), 500);
            assert!(err.message().contains("kernel bug"));
            // The single worker caught the panic and keeps serving.
            let ok = client.solve(SolveRequest::new("lcs", 64)).unwrap();
            assert_eq!(ok.answer, "lcs:64");
        });
        let snap = server.snapshot();
        assert_eq!(snap.panics, 1);
        assert_eq!(snap.completed, 1);
    }

    #[test]
    fn breaker_trips_after_consecutive_failures_and_rejects_503() {
        let mut backend = MockBackend::new();
        backend.fail_problem = Some("bad");
        let config = ServeConfig {
            workers: 1,
            max_batch: 1,
            breaker_failure_threshold: 2,
            breaker_open_ms: 60_000,
            ..ServeConfig::default()
        };
        let server = Server::new(config, &backend, &NullSink);
        server.run(None, |client| {
            for _ in 0..2 {
                let err = client.solve(SolveRequest::new("bad", 64)).unwrap_err();
                assert_eq!(err.code(), "backend_error");
            }
            // The breaker is now open: admission refuses with 503 and a
            // retry hint, and health reports degraded.
            let err = client.solve(SolveRequest::new("lcs", 64)).unwrap_err();
            assert_eq!(err.code(), "breaker_open");
            assert_eq!(err.http_status(), 503);
            assert!(err.retry_after_s().is_some());
            let health = client.healthz_json();
            assert!(health.contains("\"status\":\"degraded\""), "{health}");
            assert!(health.contains("\"breaker\":\"open\""), "{health}");
        });
        let snap = server.snapshot();
        assert_eq!(snap.breaker_opens, 1);
        assert!(snap.rejected_breaker >= 1);
    }

    #[test]
    fn breaker_recovers_through_half_open_probe() {
        let mut backend = MockBackend::new();
        backend.fail_problem = Some("bad");
        let config = ServeConfig {
            workers: 1,
            max_batch: 1,
            breaker_failure_threshold: 1,
            breaker_open_ms: 30,
            ..ServeConfig::default()
        };
        let server = Server::new(config, &backend, &NullSink);
        server.run(None, |client| {
            client.solve(SolveRequest::new("bad", 64)).unwrap_err();
            // Open: immediate refusal.
            let err = client.solve(SolveRequest::new("lcs", 64)).unwrap_err();
            assert_eq!(err.code(), "breaker_open");
            // After the cool-off the half-open probe goes through; its
            // success closes the breaker again.
            std::thread::sleep(Duration::from_millis(40));
            let ok = client.solve(SolveRequest::new("lcs", 64)).unwrap();
            assert_eq!(ok.answer, "lcs:64");
            let health = client.healthz_json();
            assert!(health.contains("\"breaker\":\"closed\""), "{health}");
        });
    }

    #[test]
    fn watchdog_withholds_slow_answers_as_504() {
        let mut backend = MockBackend::new();
        backend.solve_delay = Duration::from_millis(25);
        let config = ServeConfig {
            workers: 1,
            watchdog_ms: Some(5),
            ..ServeConfig::default()
        };
        let server = Server::new(config, &backend, &NullSink);
        server.run(None, |client| {
            let err = client.solve(SolveRequest::new("lcs", 64)).unwrap_err();
            assert_eq!(err.code(), "watchdog_timeout");
            assert_eq!(err.http_status(), 504);
        });
        let snap = server.snapshot();
        assert_eq!(snap.watchdog_timeouts, 1);
        assert_eq!(snap.completed, 0);
    }

    #[test]
    fn degraded_solves_are_reported_and_counted() {
        let mut backend = MockBackend::new();
        backend.degrade_problem = Some("wobbly");
        let server = Server::new(ServeConfig::default(), &backend, &NullSink);
        server.run(None, |client| {
            let resp = client.solve(SolveRequest::new("wobbly", 64)).unwrap();
            assert_eq!(resp.degraded, vec!["bulk_to_scalar".to_string()]);
            let clean = client.solve(SolveRequest::new("lcs", 64)).unwrap();
            assert!(clean.degraded.is_empty());
        });
        let snap = server.snapshot();
        assert_eq!(snap.degraded_solves, 1);
        assert_eq!(snap.completed, 2);
    }

    #[test]
    fn responses_carry_trace_ids_and_timings() {
        let backend = MockBackend::new();
        let mut server = Server::new(ServeConfig::default(), &backend, &NullSink);
        server.set_trace_seed(7);
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let timeout = Duration::from_secs(10);
        server.run(Some(listener), |client| {
            // In-process path: the response itself carries the id.
            let resp = client.solve(SolveRequest::new("lcs", 64)).unwrap();
            assert_eq!(resp.trace_id.len(), 16);
            assert!(resp.trace_id.chars().all(|c| c.is_ascii_hexdigit()));
            assert!(resp.tune_ms >= 0.0 && resp.batch_ms >= 0.0);

            // HTTP path: body and X-LDDP-Trace-Id header agree.
            let (status, head, body) = http::request_with_head(
                &addr,
                "POST",
                "/solve",
                Some(r#"{"problem":"lcs","n":64}"#),
                timeout,
            )
            .unwrap();
            assert_eq!(status, 200, "{body}");
            let wire = SolveResponse::from_json(&body).unwrap();
            assert!(
                head.contains(&format!("X-LDDP-Trace-Id: {}", wire.trace_id)),
                "{head}"
            );
            assert_ne!(wire.trace_id, resp.trace_id, "ids are per-request");
            let v = lddp_trace::json::parse(&body).unwrap();
            let timings = v.get("timings").expect("timings object");
            for key in ["queue_wait_ms", "batch_ms", "tune_ms", "solve_ms"] {
                assert!(timings.get(key).and_then(|j| j.as_f64()).is_some(), "{key}");
            }
            assert_eq!(timings.get("tier").and_then(|j| j.as_str()), Some("simd"));
        });
    }

    #[test]
    fn http_front_end_serves_all_routes() {
        let backend = MockBackend::new();
        let server = Server::new(ServeConfig::default(), &backend, &NullSink);
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let timeout = Duration::from_secs(10);
        server.run(Some(listener), |_client| {
            let (status, body) = http::request(
                &addr,
                "POST",
                "/solve",
                Some(r#"{"problem":"lcs","n":96}"#),
                timeout,
            )
            .unwrap();
            assert_eq!(status, 200, "{body}");
            let resp = SolveResponse::from_json(&body).unwrap();
            assert_eq!(resp.answer, "lcs:96");

            let (status, body) =
                http::request(&addr, "POST", "/solve", Some(r#"{"n":5}"#), timeout).unwrap();
            assert_eq!(status, 400, "{body}");

            let (status, body) = http::request(&addr, "GET", "/healthz", None, timeout).unwrap();
            assert_eq!(status, 200);
            assert!(body.contains("\"status\":\"ok\""), "{body}");

            let (status, body) = http::request(&addr, "GET", "/stats", None, timeout).unwrap();
            assert_eq!(status, 200);
            let v = lddp_trace::json::parse(&body).unwrap();
            assert_eq!(v.get("completed").and_then(|j| j.as_f64()), Some(1.0));

            let (status, head, body) =
                http::request_with_head(&addr, "GET", "/metrics", None, timeout).unwrap();
            assert_eq!(status, 200);
            assert!(
                head.contains("Content-Type: text/plain; version=0.0.4"),
                "{head}"
            );
            assert!(body.contains("lddp_serve_completed_total 1"), "{body}");
            assert!(body.contains("lddp_serve_queue_depth 0"), "{body}");

            let (status, body) =
                http::request(&addr, "GET", "/debug/trace?last_ms=60000", None, timeout).unwrap();
            assert_eq!(status, 200);
            assert!(body.contains("\"serve.solve\""), "{body}");

            let (status, _) = http::request(&addr, "GET", "/nope", None, timeout).unwrap();
            assert_eq!(status, 404);
            let (status, _) = http::request(&addr, "DELETE", "/stats", None, timeout).unwrap();
            assert_eq!(status, 405);
            let (status, _) = http::request(&addr, "POST", "/metrics", None, timeout).unwrap();
            assert_eq!(status, 405);

            let (status, body) = http::request(&addr, "POST", "/shutdown", None, timeout).unwrap();
            assert_eq!(status, 200);
            assert!(body.contains("draining"), "{body}");
        });
        // run() returning proves the drain joined every thread.
    }

    #[test]
    fn infeasible_deadlines_fail_fast_without_solving() {
        let mut backend = MockBackend::new();
        backend.estimate_ms = Some(5_000.0);
        let server = Server::new(ServeConfig::default(), &backend, &NullSink);
        server.run(None, |client| {
            // The §IV estimate (5 s) outruns the 50 ms deadline:
            // rejected at admission, no solve slot spent.
            let mut req = SolveRequest::new("lcs", 64);
            req.deadline_ms = Some(50);
            let err = client.solve(req).unwrap_err();
            assert_eq!(err.code(), "deadline_infeasible");
            assert_eq!(err.http_status(), 504);
            // Deadline-free requests skip the feasibility check.
            let ok = client.solve(SolveRequest::new("lcs", 64)).unwrap();
            assert_eq!(ok.answer, "lcs:64");
        });
        assert_eq!(backend.solves.load(Ordering::SeqCst), 1);
        let snap = server.snapshot();
        assert_eq!(snap.rejected_infeasible, 1);
        assert_eq!(snap.completed, 1);
    }

    #[test]
    fn tenant_quota_rejects_over_rate_submitters() {
        let backend = MockBackend::new();
        let config = ServeConfig {
            tenant_quota_rps: Some(0.1),
            tenant_quota_burst: 2.0,
            ..ServeConfig::default()
        };
        let server = Server::new(config, &backend, &NullSink);
        server.run(None, |client| {
            let tenant_req = || {
                let mut r = SolveRequest::new("lcs", 64);
                r.tenant = "acme".to_string();
                r
            };
            // Burst of 2 goes through; the third is over quota.
            client.solve(tenant_req()).unwrap();
            client.solve(tenant_req()).unwrap();
            let err = client.solve(tenant_req()).unwrap_err();
            assert_eq!(err.code(), "tenant_quota");
            assert_eq!(err.http_status(), 429);
            assert!(err.retry_after_s().unwrap_or(0) >= 1);
            // Unattributed requests are not quota'd.
            for _ in 0..5 {
                client.solve(SolveRequest::new("lcs", 64)).unwrap();
            }
        });
        let snap = server.snapshot();
        assert_eq!(snap.rejected_tenant, 1);
        assert_eq!(snap.completed, 7);
        let metrics = server.metrics_text();
        assert!(
            metrics.contains("lddp_serve_tenant_total{tenant=\"acme\",outcome=\"accepted\"} 2"),
            "{metrics}"
        );
        assert!(
            metrics.contains("lddp_serve_tenant_total{tenant=\"acme\",outcome=\"rejected\"} 1"),
            "{metrics}"
        );
    }

    #[test]
    fn brownout_ladder_sheds_batch_and_recovers() {
        let mut backend = MockBackend::new();
        backend.solve_delay = Duration::from_millis(20);
        let config = ServeConfig {
            workers: 1,
            max_batch: 1,
            queue_capacity: 8,
            batch_queue_capacity: Some(8),
            brownout: BrownoutConfig {
                high_watermark: 0.5,
                low_watermark: 0.25,
                engage_after: 3,
                disengage_after: 3,
                max_level: 1,
            },
            ..ServeConfig::default()
        };
        let server = Server::new(config, &backend, &NullSink);
        server.run(None, |client| {
            // Flood the interactive class: the pushes alone hold fill
            // above the high watermark long enough to engage level 1.
            let rxs: Vec<_> = (0..8)
                .map(|_| client.submit(SolveRequest::new("lcs", 64)).unwrap())
                .collect();
            // Batch admissions are now shed; interactive never is.
            let mut batch_req = SolveRequest::new("lcs", 64);
            batch_req.priority = Priority::Batch;
            match client.submit(batch_req) {
                Err(RejectReason::BrownoutShed {
                    level,
                    retry_after_s,
                }) => {
                    assert_eq!(level, 1);
                    assert!(retry_after_s >= 1);
                }
                other => panic!("expected brownout shed, got {other:?}"),
            }
            // Drain; dequeue-side observations walk the ladder back
            // down with hysteresis.
            for rx in rxs {
                rx.recv().unwrap().unwrap();
            }
            let mut batch_req = SolveRequest::new("lcs", 64);
            batch_req.priority = Priority::Batch;
            let ok = client.solve(batch_req).unwrap();
            assert_eq!(ok.answer, "lcs:64");
        });
        let snap = server.snapshot();
        assert_eq!(snap.brownout_level, 0, "ladder fully disengaged");
        assert!(snap.brownout_engaged >= 1);
        assert!(snap.brownout_disengaged >= 1);
        assert_eq!(snap.rejected_brownout, 1);
        assert_eq!(snap.class_accepted[0], 8);
        assert_eq!(snap.class_accepted[1], 1);
        assert_eq!(snap.class_shed[1], 1);
        assert_eq!(snap.class_shed[0], 0, "interactive is never brownout-shed");
    }

    #[test]
    fn brownout_level_three_forces_rolling_on_batch_solves() {
        struct StallOnce(AtomicUsize);
        impl lddp_chaos::FaultInjector for StallOnce {
            fn active(&self) -> bool {
                true
            }
            fn queue_stall(&self) -> Option<Duration> {
                if self.0.fetch_add(1, Ordering::SeqCst) == 0 {
                    Some(Duration::from_millis(80))
                } else {
                    None
                }
            }
        }
        let mut backend = MockBackend::new();
        backend.rolling_ok = true;
        let config = ServeConfig {
            workers: 1,
            max_batch: 1,
            queue_capacity: 8,
            batch_queue_capacity: Some(8),
            brownout: BrownoutConfig {
                high_watermark: 0.05,
                low_watermark: 0.01,
                engage_after: 1,
                disengage_after: 100,
                max_level: 3,
            },
            ..ServeConfig::default()
        };
        let injector = StallOnce(AtomicUsize::new(0));
        let server = Server::with_injector(config, &backend, &NullSink, &injector);
        server.run(None, |client| {
            // The batch job is admitted at level 0 and picked up
            // immediately — where the injected stall parks the worker.
            let mut batch_req = SolveRequest::new("lcs", 64);
            batch_req.priority = Priority::Batch;
            let batch_rx = client.submit(batch_req).unwrap();
            // While it sits, interactive pushes climb the ladder to
            // level 3 (every observation engages).
            let rxs: Vec<_> = (0..3)
                .map(|_| client.submit(SolveRequest::new("lcs", 64)).unwrap())
                .collect();
            batch_rx.recv().unwrap().unwrap();
            for rx in rxs {
                rx.recv().unwrap().unwrap();
            }
        });
        // Exactly the batch batch was pinned to rolling; the
        // interactive batches tuned unpinned even at level 3.
        assert_eq!(backend.rolling_probes.load(Ordering::SeqCst), 1);
        let metrics = server.metrics_text();
        assert!(
            metrics.contains("lddp_serve_brownout_forced_rolling_total 1"),
            "{metrics}"
        );
    }

    #[test]
    fn admission_storm_floods_batch_class_without_touching_submitter() {
        struct StormOnce(AtomicUsize);
        impl lddp_chaos::FaultInjector for StormOnce {
            fn active(&self) -> bool {
                true
            }
            fn admission_storm(&self) -> Option<usize> {
                if self.0.fetch_add(1, Ordering::SeqCst) == 0 {
                    Some(3)
                } else {
                    None
                }
            }
        }
        let backend = MockBackend::new();
        let injector = StormOnce(AtomicUsize::new(0));
        let server = Server::with_injector(ServeConfig::default(), &backend, &NullSink, &injector);
        server.run(None, |client| {
            // The carrying request still succeeds; the storm rides in
            // as synthetic batch-class arrivals on a reserved tenant.
            let resp = client.solve(SolveRequest::new("lcs", 64)).unwrap();
            assert_eq!(resp.answer, "lcs:64");
        });
        let snap = server.snapshot();
        assert_eq!(snap.class_accepted[1], 3, "storm clones are batch class");
        assert_eq!(snap.class_accepted[0], 1);
        assert_eq!(snap.completed, 4, "drain answers the storm clones too");
        let metrics = server.metrics_text();
        assert!(
            metrics.contains("lddp_chaos_injected_total{site=\"admission_storm\"} 1"),
            "{metrics}"
        );
        assert!(
            metrics
                .contains("lddp_serve_tenant_total{tenant=\"chaos-storm\",outcome=\"accepted\"} 3"),
            "{metrics}"
        );
    }
}
