//! The bounded admission queue feeding the worker pool.
//!
//! Admission control happens at [`JobQueue::push`]: each service class
//! ([`Priority`]) has its own bounded budget, so a batch flood fills
//! the batch budget and starts bouncing with `429 queue_full` while
//! interactive admissions keep landing — the queue itself is the first
//! line of class isolation. Workers block in [`JobQueue::pop_batch`],
//! which serves the interactive class strictly before the batch class
//! and, within a class, picks the earliest-deadline job as the batch
//! leader (EDF; deadline-free jobs run FIFO after every deadlined one).
//! The leader then *gathers* other queued jobs with the same
//! [`BatchKey`] — rotating across tenants so one tenant's sweep cannot
//! monopolize a shared batch — up to the batch cap, so one tuner
//! artifact is amortized across the group.

use crate::job::{Priority, RejectReason, ServeError, SolveRequest, SolveResponse};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A queued request plus everything needed to answer it later.
#[derive(Debug)]
pub struct Job {
    /// Server-assigned id.
    pub id: u64,
    /// Per-request trace id, assigned at admission; rendered as
    /// `{:016x}` on the wire and threaded through every span the
    /// request produces.
    pub trace_id: u64,
    /// The request.
    pub req: SolveRequest,
    /// When admission accepted it.
    pub enqueued: Instant,
    /// Absolute deadline derived from `req.deadline_ms`.
    pub deadline: Option<Instant>,
    /// One-shot reply channel back to the submitter.
    pub tx: mpsc::Sender<Result<SolveResponse, ServeError>>,
    /// Band-frame channel for streamed solves (`POST /solve?stream=1`):
    /// bounded, so a slow consumer exerts backpressure on the solve
    /// itself. `None` for ordinary requests.
    pub stream: Option<mpsc::SyncSender<crate::stream::BandFrame>>,
}

/// One dequeue: the live batch to solve plus the jobs shed because
/// their deadline passed while they sat in the queue.
#[derive(Debug)]
pub struct Popped {
    /// Batch-key-grouped jobs to solve; may be empty when the wake-up
    /// only shed expired work (or a batch-restricted worker timed out
    /// waiting for interactive work).
    pub batch: Vec<Job>,
    /// Jobs whose deadline expired in the queue, in queue order.
    pub expired: Vec<Job>,
}

#[derive(Debug, Default)]
struct QueueState {
    /// One FIFO arrival list per service class, indexed by
    /// [`Priority::index`]. EDF leader selection scans at pop time, so
    /// arrival order is preserved for deadline-free work.
    classes: [VecDeque<Job>; 2],
    open: bool,
}

impl QueueState {
    fn is_empty(&self) -> bool {
        self.classes.iter().all(|c| c.is_empty())
    }
}

/// Bounded MPMC queue with per-class admission budgets, EDF-within-
/// class dequeue, and tenant-fair batch gathering.
#[derive(Debug)]
pub struct JobQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
    /// Per-class admission budgets, indexed by [`Priority::index`].
    budgets: [usize; 2],
}

/// How long a batch-restricted worker naps before re-checking for
/// interactive work (and letting the caller re-evaluate the brownout
/// level).
const RESTRICTED_NAP: Duration = Duration::from_millis(25);

impl JobQueue {
    /// An open queue giving *each class* a budget of `capacity` jobs —
    /// the single-budget constructor kept for callers that predate
    /// service classes.
    pub fn new(capacity: usize) -> JobQueue {
        JobQueue::with_budgets(capacity, capacity)
    }

    /// An open queue admitting at most `interactive` interactive-class
    /// and `batch` batch-class jobs.
    pub fn with_budgets(interactive: usize, batch: usize) -> JobQueue {
        JobQueue {
            state: Mutex::new(QueueState {
                classes: [VecDeque::new(), VecDeque::new()],
                open: true,
            }),
            cv: Condvar::new(),
            budgets: [interactive, batch],
        }
    }

    /// Admits `job`, returning the total queue depth after admission —
    /// or the job back with the rejection when the job's class budget
    /// is full or the queue is draining.
    // Returning the job by value on rejection is the point of the API
    // (the caller still owns it and must answer its responder), so the
    // large Err variant is deliberate.
    #[allow(clippy::result_large_err)]
    pub fn push(&self, job: Job) -> Result<usize, (Job, RejectReason)> {
        let mut state = self.state.lock().unwrap();
        if !state.open {
            return Err((job, RejectReason::ShuttingDown));
        }
        let class = job.req.priority.index();
        if state.classes[class].len() >= self.budgets[class] {
            return Err((
                job,
                RejectReason::QueueFull {
                    capacity: self.budgets[class],
                },
            ));
        }
        state.classes[class].push_back(job);
        let depth = state.classes[0].len() + state.classes[1].len();
        drop(state);
        self.cv.notify_one();
        Ok(depth)
    }

    /// Blocks until work is available, then returns a batch led by the
    /// earliest-deadline live job of the highest non-empty class
    /// (interactive strictly before batch) plus up to `max_batch - 1`
    /// same-[`BatchKey`] followers gathered tenant-fair — and,
    /// separately, every queued job whose deadline expired while it
    /// waited. Expired jobs are shed *here*, at pop time, so they never
    /// occupy a solve slot; the caller answers them with
    /// `DeadlineExceeded` (a 504 on the wire) without solving. The
    /// returned batch may be empty when a wake-up only shed expired
    /// work. Returns `None` once the queue is closed *and* empty (drain
    /// complete) — the worker-pool exit signal.
    pub fn pop_batch(&self, max_batch: usize) -> Option<Popped> {
        self.pop_batch_filtered(max_batch, true)
    }

    /// [`JobQueue::pop_batch`] with a class restriction: when
    /// `allow_batch` is false (a brownout concurrency cap) the worker
    /// only takes interactive work. If only batch work is queued it
    /// naps briefly and returns an empty [`Popped`] so the caller can
    /// re-evaluate the restriction; on drain it exits once the
    /// interactive class is empty, leaving batch work to unrestricted
    /// workers.
    pub fn pop_batch_filtered(&self, max_batch: usize, allow_batch: bool) -> Option<Popped> {
        let mut state = self.state.lock().unwrap();
        loop {
            if state.is_empty() {
                if !state.open {
                    return None;
                }
                state = self.cv.wait(state).unwrap();
                continue;
            }
            // Shed expired work from every class — even classes this
            // worker is restricted from solving; shedding is not
            // solving.
            let now = Instant::now();
            let mut expired = Vec::new();
            for class in state.classes.iter_mut() {
                let mut i = 0;
                while i < class.len() {
                    match class[i].deadline {
                        Some(d) if d <= now => {
                            expired.push(class.remove(i).expect("index in range"));
                        }
                        _ => i += 1,
                    }
                }
            }
            if state.is_empty() {
                // This wake only shed dead work; report it without
                // blocking so the caller can answer the expired
                // submitters promptly.
                return Some(Popped {
                    batch: Vec::new(),
                    expired,
                });
            }
            let leader_class = if !state.classes[Priority::Interactive.index()].is_empty() {
                Priority::Interactive.index()
            } else if allow_batch {
                Priority::Batch.index()
            } else {
                // Only batch work remains and this worker may not take
                // it. Hand back any shed work immediately; otherwise
                // nap so a disengaging brownout (or arriving
                // interactive work) is noticed promptly.
                if !expired.is_empty() {
                    return Some(Popped {
                        batch: Vec::new(),
                        expired,
                    });
                }
                if !state.open {
                    return None;
                }
                let (s, _) = self.cv.wait_timeout(state, RESTRICTED_NAP).unwrap();
                state = s;
                if state.classes[Priority::Interactive.index()].is_empty() && state.open {
                    return Some(Popped {
                        batch: Vec::new(),
                        expired: Vec::new(),
                    });
                }
                continue;
            };
            let class = &mut state.classes[leader_class];
            // EDF leader: earliest deadline wins; deadline-free jobs
            // sort after every deadlined one; ties keep arrival order.
            let mut best = 0;
            for i in 1..class.len() {
                let earlier = match (class[i].deadline, class[best].deadline) {
                    (Some(a), Some(b)) => a < b,
                    (Some(_), None) => true,
                    _ => false,
                };
                if earlier {
                    best = i;
                }
            }
            let leader = class.remove(best).expect("index in range");
            let key = leader.req.batch_key();
            let max = max_batch.max(1);
            // Gather same-key followers tenant-fair: each round takes
            // one job from the tenant with the fewest seats so far
            // (the leader's tenant starts at one), so under a skewed
            // arrival mix every tenant with queued work gets an equal
            // share of the batch before anyone gets a second seat.
            let mut groups: Vec<(String, VecDeque<usize>, usize)> =
                vec![(leader.req.tenant.clone(), VecDeque::new(), 1)];
            for (i, job) in class.iter().enumerate() {
                if job.req.batch_key() == key {
                    match groups.iter_mut().find(|(t, _, _)| *t == job.req.tenant) {
                        Some((_, q, _)) => q.push_back(i),
                        None => groups.push((job.req.tenant.clone(), VecDeque::from([i]), 0)),
                    }
                }
            }
            let mut picked: Vec<usize> = Vec::new();
            while 1 + picked.len() < max {
                let next = groups
                    .iter_mut()
                    .filter(|(_, q, _)| !q.is_empty())
                    .min_by_key(|(_, _, seats)| *seats);
                match next {
                    Some((_, q, seats)) => {
                        picked.push(q.pop_front().expect("non-empty"));
                        *seats += 1;
                    }
                    None => break,
                }
            }
            // Remove picked followers (descending index keeps the rest
            // valid), then order the batch by pick order.
            let mut desc = picked.clone();
            desc.sort_unstable_by(|a, b| b.cmp(a));
            let mut removed: Vec<(usize, Job)> = Vec::new();
            for i in desc {
                removed.push((i, class.remove(i).expect("index in range")));
            }
            let mut batch = vec![leader];
            for pi in &picked {
                let pos = removed
                    .iter()
                    .position(|(i, _)| i == pi)
                    .expect("picked index present");
                batch.push(removed.remove(pos).1);
            }
            return Some(Popped { batch, expired });
        }
    }

    /// Stops admission (pushes now reject with `ShuttingDown`) and
    /// wakes every blocked worker so the drain can complete.
    pub fn close(&self) {
        self.state.lock().unwrap().open = false;
        self.cv.notify_all();
    }

    /// Jobs currently queued across every class.
    pub fn depth(&self) -> usize {
        let state = self.state.lock().unwrap();
        state.classes[0].len() + state.classes[1].len()
    }

    /// Jobs currently queued in one service class.
    pub fn class_depth(&self, class: Priority) -> usize {
        self.state.lock().unwrap().classes[class.index()].len()
    }

    /// The admission budget of one service class.
    pub fn class_budget(&self, class: Priority) -> usize {
        self.budgets[class.index()]
    }

    /// The fuller class's queue fill fraction in `[0, 1]` — the
    /// pressure signal the brownout ladder observes.
    pub fn fill(&self) -> f64 {
        let state = self.state.lock().unwrap();
        let mut fill: f64 = 0.0;
        for (class, budget) in state.classes.iter().zip(self.budgets) {
            if budget > 0 {
                fill = fill.max(class.len() as f64 / budget as f64);
            }
        }
        fill
    }

    /// Whether admission is still open.
    pub fn is_open(&self) -> bool {
        self.state.lock().unwrap().open
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lddp_core::schedule::ScheduleParams;

    fn job(
        id: u64,
        problem: &str,
        n: usize,
    ) -> (Job, mpsc::Receiver<Result<SolveResponse, ServeError>>) {
        let (tx, rx) = mpsc::channel();
        (
            Job {
                id,
                trace_id: id.wrapping_mul(0x9e37),
                req: SolveRequest::new(problem, n),
                enqueued: Instant::now(),
                deadline: None,
                tx,
                stream: None,
            },
            rx,
        )
    }

    #[test]
    fn push_rejects_when_full_and_when_closed() {
        let q = JobQueue::new(2);
        let (a, _ra) = job(1, "lcs", 64);
        let (b, _rb) = job(2, "lcs", 64);
        let (c, _rc) = job(3, "lcs", 64);
        assert_eq!(q.push(a).unwrap(), 1);
        assert_eq!(q.push(b).unwrap(), 2);
        let (back, reason) = q.push(c).unwrap_err();
        assert_eq!(back.id, 3);
        assert_eq!(reason, RejectReason::QueueFull { capacity: 2 });
        assert_eq!(q.depth(), 2);

        q.close();
        assert!(!q.is_open());
        let (d, _rd) = job(4, "lcs", 64);
        let (_, reason) = q.push(d).unwrap_err();
        assert_eq!(reason, RejectReason::ShuttingDown);
    }

    #[test]
    fn class_budgets_are_independent() {
        let q = JobQueue::with_budgets(2, 1);
        let (a, _ra) = job(1, "lcs", 64);
        let (mut b, _rb) = job(2, "lcs", 64);
        b.req.priority = Priority::Batch;
        let (mut c, _rc) = job(3, "lcs", 64);
        c.req.priority = Priority::Batch;
        q.push(a).unwrap();
        q.push(b).unwrap();
        // The batch budget (1) is full; interactive still has room.
        let (_, reason) = q.push(c).unwrap_err();
        assert_eq!(reason, RejectReason::QueueFull { capacity: 1 });
        let (d, _rd) = job(4, "lcs", 64);
        q.push(d).unwrap();
        assert_eq!(q.depth(), 3);
        assert_eq!(q.class_depth(Priority::Interactive), 2);
        assert_eq!(q.class_depth(Priority::Batch), 1);
        assert_eq!(q.class_budget(Priority::Batch), 1);
        // Fill is the fuller class: batch at 1/1.
        assert_eq!(q.fill(), 1.0);
    }

    #[test]
    fn pop_batch_gathers_same_key_and_preserves_leader_order() {
        let q = JobQueue::new(16);
        let mut rxs = Vec::new();
        for (id, problem, n) in [
            (1, "lcs", 100), // bucket 128
            (2, "dtw", 100), // different problem
            (3, "lcs", 128), // same bucket as 1
            (4, "lcs", 300), // bucket 512 — different
            (5, "lcs", 70),  // bucket 128 — same as 1
        ] {
            let (j, rx) = job(id, problem, n);
            rxs.push(rx);
            q.push(j).unwrap();
        }
        let batch = q.pop_batch(8).unwrap().batch;
        let ids: Vec<u64> = batch.iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![1, 3, 5]);
        let batch = q.pop_batch(8).unwrap().batch;
        assert_eq!(batch[0].id, 2);
        assert_eq!(batch.len(), 1);
        let batch = q.pop_batch(8).unwrap().batch;
        assert_eq!(batch[0].id, 4);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn pop_batch_respects_max_batch() {
        let q = JobQueue::new(16);
        for id in 0..6 {
            let (j, rx) = job(id, "lcs", 64);
            std::mem::forget(rx);
            q.push(j).unwrap();
        }
        assert_eq!(q.pop_batch(4).unwrap().batch.len(), 4);
        assert_eq!(q.pop_batch(4).unwrap().batch.len(), 2);
        // max_batch 0 is treated as 1.
        let (j, rx) = job(9, "lcs", 64);
        std::mem::forget(rx);
        q.push(j).unwrap();
        assert_eq!(q.pop_batch(0).unwrap().batch.len(), 1);
    }

    #[test]
    fn explicit_params_do_not_batch_with_tuned() {
        let q = JobQueue::new(16);
        let (a, _ra) = job(1, "lcs", 64);
        let (mut b, _rb) = job(2, "lcs", 64);
        b.req.params = Some(ScheduleParams::new(2, 8));
        q.push(a).unwrap();
        q.push(b).unwrap();
        assert_eq!(q.pop_batch(8).unwrap().batch.len(), 1);
        assert_eq!(q.pop_batch(8).unwrap().batch.len(), 1);
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = JobQueue::new(4);
        let (a, _ra) = job(1, "lcs", 64);
        q.push(a).unwrap();
        q.close();
        // Still drains the queued job…
        assert_eq!(q.pop_batch(4).unwrap().batch.len(), 1);
        // …then reports exhaustion.
        assert!(q.pop_batch(4).is_none());
    }

    #[test]
    fn shutdown_during_drain_serves_queued_and_rejects_new() {
        let q = JobQueue::new(8);
        let mut rxs = Vec::new();
        for id in 0..5 {
            let (j, rx) = job(id, "lcs", 64);
            rxs.push(rx);
            q.push(j).unwrap();
        }
        q.close();
        // New work is refused mid-drain…
        let (late, _rl) = job(99, "lcs", 64);
        let (_, reason) = q.push(late).unwrap_err();
        assert_eq!(reason, RejectReason::ShuttingDown);
        // …while everything already admitted still drains, in order,
        // with nothing lost and nothing duplicated.
        let mut drained = Vec::new();
        while let Some(p) = q.pop_batch(2) {
            assert!(p.expired.is_empty());
            drained.extend(p.batch.into_iter().map(|j| j.id));
        }
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn expired_jobs_are_shed_at_pop_without_occupying_the_batch() {
        let q = JobQueue::new(8);
        let (mut dead, _rd) = job(1, "lcs", 64);
        dead.deadline = Some(Instant::now());
        let (live, _rl) = job(2, "lcs", 64);
        q.push(dead).unwrap();
        q.push(live).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let p = q.pop_batch(8).unwrap();
        assert_eq!(p.expired.len(), 1);
        assert_eq!(p.expired[0].id, 1);
        assert_eq!(p.batch.len(), 1);
        assert_eq!(p.batch[0].id, 2);
    }

    #[test]
    fn all_expired_pop_returns_empty_batch_not_a_block() {
        let q = JobQueue::new(8);
        let (mut dead, _rd) = job(7, "lcs", 64);
        dead.deadline = Some(Instant::now());
        q.push(dead).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let p = q.pop_batch(8).unwrap();
        assert!(p.batch.is_empty());
        assert_eq!(p.expired.len(), 1);
        assert_eq!(q.depth(), 0);
    }

    // Deterministic sweep standing in for a property test: across a
    // mixed population of expired and live jobs, every job comes out
    // exactly once, expired ones only via the shed path and live ones
    // only via batches.
    #[test]
    fn deadline_sweep_conserves_jobs_and_separates_populations() {
        let q = JobQueue::new(64);
        let mut rxs = Vec::new();
        for id in 0..32u64 {
            // Vary problems so batching has real grouping work to do.
            let problem = ["lcs", "dtw", "sw"][(id % 3) as usize];
            let (mut j, rx) = job(id, problem, 64 + (id as usize % 4) * 64);
            if id % 2 == 0 {
                j.deadline = Some(Instant::now());
            }
            rxs.push(rx);
            q.push(j).unwrap();
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
        q.close();
        let (mut shed, mut solved) = (Vec::new(), Vec::new());
        while let Some(p) = q.pop_batch(3) {
            shed.extend(p.expired.into_iter().map(|j| j.id));
            solved.extend(p.batch.into_iter().map(|j| j.id));
        }
        shed.sort_unstable();
        solved.sort_unstable();
        let evens: Vec<u64> = (0..32).filter(|i| i % 2 == 0).collect();
        let odds: Vec<u64> = (0..32).filter(|i| i % 2 == 1).collect();
        assert_eq!(shed, evens, "every expired job shed exactly once");
        assert_eq!(solved, odds, "every live job batched exactly once");
    }

    #[test]
    fn blocked_worker_wakes_on_close() {
        let q = std::sync::Arc::new(JobQueue::new(4));
        let q2 = q.clone();
        let t = std::thread::spawn(move || q2.pop_batch(4));
        std::thread::sleep(std::time::Duration::from_millis(50));
        q.close();
        assert!(t.join().unwrap().is_none());
    }

    #[test]
    fn edf_orders_within_class_with_fifo_for_deadline_free() {
        let q = JobQueue::new(16);
        let mut rxs = Vec::new();
        let now = Instant::now();
        // Different problems so nothing gathers into one batch.
        for (id, problem, deadline_ms) in [
            (1u64, "lcs", None),
            (2, "dtw", Some(300u64)),
            (3, "sw", Some(100)),
            (4, "nw", None),
            (5, "levenshtein", Some(200)),
        ] {
            let (mut j, rx) = job(id, problem, 64);
            j.deadline = deadline_ms.map(|ms| now + Duration::from_millis(ms));
            rxs.push(rx);
            q.push(j).unwrap();
        }
        let mut order = Vec::new();
        for _ in 0..5 {
            order.push(q.pop_batch(1).unwrap().batch[0].id);
        }
        // Earliest deadline first (3, 5, 2); deadline-free jobs after,
        // in arrival order (1, 4).
        assert_eq!(order, vec![3, 5, 2, 1, 4]);
    }

    #[test]
    fn interactive_always_leads_batch_no_inversion() {
        let q = JobQueue::new(16);
        let mut rxs = Vec::new();
        let now = Instant::now();
        // A batch job with an urgent deadline arrives first…
        let (mut bg, rb) = job(1, "lcs", 64);
        bg.req.priority = Priority::Batch;
        bg.deadline = Some(now + Duration::from_millis(50));
        rxs.push(rb);
        q.push(bg).unwrap();
        // …but a deadline-free interactive job still pops first: EDF
        // never crosses the class boundary.
        let (fg, rf) = job(2, "dtw", 64);
        rxs.push(rf);
        q.push(fg).unwrap();
        assert_eq!(q.pop_batch(4).unwrap().batch[0].id, 2);
        assert_eq!(q.pop_batch(4).unwrap().batch[0].id, 1);
    }

    #[test]
    fn batch_gathering_is_tenant_fair_under_skew() {
        let q = JobQueue::new(64);
        let mut rxs = Vec::new();
        // Two tenants, 9:1 arrival skew, all one batch key. The heavy
        // tenant's nine arrive first.
        for id in 1..=9u64 {
            let (mut j, rx) = job(id, "lcs", 64);
            j.req.tenant = "heavy".into();
            rxs.push(rx);
            q.push(j).unwrap();
        }
        let (mut light, rx) = job(100, "lcs", 64);
        light.req.tenant = "light".into();
        rxs.push(rx);
        q.push(light).unwrap();
        let batch = q.pop_batch(4).unwrap().batch;
        let tenants: Vec<&str> = batch.iter().map(|j| j.req.tenant.as_str()).collect();
        // Leader is heavy's first arrival; the light tenant gets a seat
        // before heavy gets a third — not crowded out by arrival order.
        assert_eq!(batch.len(), 4);
        assert!(
            tenants.contains(&"light"),
            "light tenant crowded out: {tenants:?}"
        );
        let heavy_seats = tenants.iter().filter(|t| **t == "heavy").count();
        assert_eq!(heavy_seats, 3, "{tenants:?}");
        // With both tenants queued and an 8-wide batch, seats split
        // 4/4 even though arrivals were 9:1.
        let q2 = JobQueue::new(64);
        let mut rxs2 = Vec::new();
        for id in 1..=9u64 {
            let (mut j, rx) = job(id, "lcs", 64);
            j.req.tenant = "heavy".into();
            rxs2.push(rx);
            q2.push(j).unwrap();
        }
        for id in 100..104u64 {
            let (mut j, rx) = job(id, "lcs", 64);
            j.req.tenant = "light".into();
            rxs2.push(rx);
            q2.push(j).unwrap();
        }
        let batch = q2.pop_batch(8).unwrap().batch;
        let heavy = batch.iter().filter(|j| j.req.tenant == "heavy").count();
        let light = batch.iter().filter(|j| j.req.tenant == "light").count();
        assert_eq!((heavy, light), (4, 4));
    }

    #[test]
    fn restricted_worker_skips_batch_work_and_times_out_empty() {
        let q = JobQueue::new(16);
        let (mut bg, _rb) = job(1, "lcs", 64);
        bg.req.priority = Priority::Batch;
        q.push(bg).unwrap();
        // A restricted pop cannot take the only (batch) job: it naps
        // and hands back an empty batch so the caller re-evaluates.
        let p = q.pop_batch_filtered(4, false).unwrap();
        assert!(p.batch.is_empty());
        assert!(p.expired.is_empty());
        assert_eq!(q.class_depth(Priority::Batch), 1);
        // Interactive work is taken immediately even while restricted.
        let (fg, _rf) = job(2, "dtw", 64);
        q.push(fg).unwrap();
        let p = q.pop_batch_filtered(4, false).unwrap();
        assert_eq!(p.batch.len(), 1);
        assert_eq!(p.batch[0].id, 2);
        // An unrestricted pop drains the batch job.
        assert_eq!(q.pop_batch(4).unwrap().batch[0].id, 1);
        // On drain, a restricted worker exits once interactive is empty.
        q.close();
        let (mut late, _rl) = job(3, "lcs", 64);
        late.req.priority = Priority::Batch;
        assert!(q.push(late).is_err());
        assert!(q.pop_batch_filtered(4, false).is_none());
    }

    #[test]
    fn restricted_worker_still_sheds_expired_batch_jobs() {
        let q = JobQueue::new(16);
        let (mut dead, _rd) = job(1, "lcs", 64);
        dead.req.priority = Priority::Batch;
        dead.deadline = Some(Instant::now());
        q.push(dead).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let p = q.pop_batch_filtered(4, false).unwrap();
        assert!(p.batch.is_empty());
        assert_eq!(p.expired.len(), 1);
        assert_eq!(q.depth(), 0);
    }
}
