//! The bounded admission queue feeding the worker pool.
//!
//! Admission control happens at [`JobQueue::push`]: a full queue or a
//! closed (draining) queue rejects immediately — callers get the job
//! back together with the [`RejectReason`] so they can answer the
//! submitter. Workers block in [`JobQueue::pop_batch`], which pops the
//! oldest job and then *gathers* every other queued job with the same
//! [`BatchKey`] (up to the batch cap) so one tuner artifact is
//! amortized across the group. FIFO order is preserved for the batch
//! leader; gathered followers may overtake unrelated jobs — that is the
//! throughput/fairness trade every batcher makes.

use crate::job::{RejectReason, ServeError, SolveRequest, SolveResponse};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// A queued request plus everything needed to answer it later.
#[derive(Debug)]
pub struct Job {
    /// Server-assigned id.
    pub id: u64,
    /// Per-request trace id, assigned at admission; rendered as
    /// `{:016x}` on the wire and threaded through every span the
    /// request produces.
    pub trace_id: u64,
    /// The request.
    pub req: SolveRequest,
    /// When admission accepted it.
    pub enqueued: Instant,
    /// Absolute deadline derived from `req.deadline_ms`.
    pub deadline: Option<Instant>,
    /// One-shot reply channel back to the submitter.
    pub tx: mpsc::Sender<Result<SolveResponse, ServeError>>,
}

/// One dequeue: the live batch to solve plus the jobs shed because
/// their deadline passed while they sat in the queue.
#[derive(Debug)]
pub struct Popped {
    /// Batch-key-grouped jobs to solve; may be empty when the wake-up
    /// only shed expired work.
    pub batch: Vec<Job>,
    /// Jobs whose deadline expired in the queue, in queue order.
    pub expired: Vec<Job>,
}

#[derive(Debug, Default)]
struct QueueState {
    items: VecDeque<Job>,
    open: bool,
}

/// Bounded MPMC queue with admission control and batch-aware dequeue.
#[derive(Debug)]
pub struct JobQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
    capacity: usize,
}

impl JobQueue {
    /// An open queue holding at most `capacity` jobs.
    pub fn new(capacity: usize) -> JobQueue {
        JobQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                open: true,
            }),
            cv: Condvar::new(),
            capacity,
        }
    }

    /// Admits `job`, returning the queue depth after admission — or the
    /// job back with the rejection when the queue is full or draining.
    // Returning the job by value on rejection is the point of the API
    // (the caller still owns it and must answer its responder), so the
    // large Err variant is deliberate.
    #[allow(clippy::result_large_err)]
    pub fn push(&self, job: Job) -> Result<usize, (Job, RejectReason)> {
        let mut state = self.state.lock().unwrap();
        if !state.open {
            return Err((job, RejectReason::ShuttingDown));
        }
        if state.items.len() >= self.capacity {
            return Err((
                job,
                RejectReason::QueueFull {
                    capacity: self.capacity,
                },
            ));
        }
        state.items.push_back(job);
        let depth = state.items.len();
        drop(state);
        self.cv.notify_one();
        Ok(depth)
    }

    /// Blocks until work is available, then returns the oldest *live*
    /// job plus up to `max_batch - 1` other queued jobs sharing its
    /// batch key — and, separately, every queued job whose deadline
    /// expired while it waited. Expired jobs are shed *here*, at pop
    /// time, so they never occupy a solve slot; the caller answers them
    /// with `DeadlineExceeded` (a 504 on the wire) without solving.
    /// The returned batch may be empty when a wake-up only shed expired
    /// work. Returns `None` once the queue is closed *and* empty (drain
    /// complete) — the worker-pool exit signal.
    pub fn pop_batch(&self, max_batch: usize) -> Option<Popped> {
        let mut state = self.state.lock().unwrap();
        loop {
            if !state.items.is_empty() {
                break;
            }
            if !state.open {
                return None;
            }
            state = self.cv.wait(state).unwrap();
        }
        let now = Instant::now();
        let mut expired = Vec::new();
        let mut i = 0;
        while i < state.items.len() {
            match state.items[i].deadline {
                Some(d) if d <= now => {
                    expired.push(state.items.remove(i).expect("index in range"));
                }
                _ => i += 1,
            }
        }
        if state.items.is_empty() {
            // This wake only shed dead work; report it without blocking
            // so the caller can answer the expired submitters promptly.
            return Some(Popped {
                batch: Vec::new(),
                expired,
            });
        }
        let leader = state.items.pop_front().expect("non-empty");
        let key = leader.req.batch_key();
        let mut batch = vec![leader];
        let mut idx = 0;
        while batch.len() < max_batch.max(1) && idx < state.items.len() {
            if state.items[idx].req.batch_key() == key {
                batch.push(state.items.remove(idx).expect("index in range"));
            } else {
                idx += 1;
            }
        }
        Some(Popped { batch, expired })
    }

    /// Stops admission (pushes now reject with `ShuttingDown`) and
    /// wakes every blocked worker so the drain can complete.
    pub fn close(&self) {
        self.state.lock().unwrap().open = false;
        self.cv.notify_all();
    }

    /// Jobs currently queued.
    pub fn depth(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// Whether admission is still open.
    pub fn is_open(&self) -> bool {
        self.state.lock().unwrap().open
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lddp_core::schedule::ScheduleParams;

    fn job(
        id: u64,
        problem: &str,
        n: usize,
    ) -> (Job, mpsc::Receiver<Result<SolveResponse, ServeError>>) {
        let (tx, rx) = mpsc::channel();
        (
            Job {
                id,
                trace_id: id.wrapping_mul(0x9e37),
                req: SolveRequest::new(problem, n),
                enqueued: Instant::now(),
                deadline: None,
                tx,
            },
            rx,
        )
    }

    #[test]
    fn push_rejects_when_full_and_when_closed() {
        let q = JobQueue::new(2);
        let (a, _ra) = job(1, "lcs", 64);
        let (b, _rb) = job(2, "lcs", 64);
        let (c, _rc) = job(3, "lcs", 64);
        assert_eq!(q.push(a).unwrap(), 1);
        assert_eq!(q.push(b).unwrap(), 2);
        let (back, reason) = q.push(c).unwrap_err();
        assert_eq!(back.id, 3);
        assert_eq!(reason, RejectReason::QueueFull { capacity: 2 });
        assert_eq!(q.depth(), 2);

        q.close();
        assert!(!q.is_open());
        let (d, _rd) = job(4, "lcs", 64);
        let (_, reason) = q.push(d).unwrap_err();
        assert_eq!(reason, RejectReason::ShuttingDown);
    }

    #[test]
    fn pop_batch_gathers_same_key_and_preserves_leader_order() {
        let q = JobQueue::new(16);
        let mut rxs = Vec::new();
        for (id, problem, n) in [
            (1, "lcs", 100), // bucket 128
            (2, "dtw", 100), // different problem
            (3, "lcs", 128), // same bucket as 1
            (4, "lcs", 300), // bucket 512 — different
            (5, "lcs", 70),  // bucket 128 — same as 1
        ] {
            let (j, rx) = job(id, problem, n);
            rxs.push(rx);
            q.push(j).unwrap();
        }
        let batch = q.pop_batch(8).unwrap().batch;
        let ids: Vec<u64> = batch.iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![1, 3, 5]);
        let batch = q.pop_batch(8).unwrap().batch;
        assert_eq!(batch[0].id, 2);
        assert_eq!(batch.len(), 1);
        let batch = q.pop_batch(8).unwrap().batch;
        assert_eq!(batch[0].id, 4);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn pop_batch_respects_max_batch() {
        let q = JobQueue::new(16);
        for id in 0..6 {
            let (j, rx) = job(id, "lcs", 64);
            std::mem::forget(rx);
            q.push(j).unwrap();
        }
        assert_eq!(q.pop_batch(4).unwrap().batch.len(), 4);
        assert_eq!(q.pop_batch(4).unwrap().batch.len(), 2);
        // max_batch 0 is treated as 1.
        let (j, rx) = job(9, "lcs", 64);
        std::mem::forget(rx);
        q.push(j).unwrap();
        assert_eq!(q.pop_batch(0).unwrap().batch.len(), 1);
    }

    #[test]
    fn explicit_params_do_not_batch_with_tuned() {
        let q = JobQueue::new(16);
        let (a, _ra) = job(1, "lcs", 64);
        let (mut b, _rb) = job(2, "lcs", 64);
        b.req.params = Some(ScheduleParams::new(2, 8));
        q.push(a).unwrap();
        q.push(b).unwrap();
        assert_eq!(q.pop_batch(8).unwrap().batch.len(), 1);
        assert_eq!(q.pop_batch(8).unwrap().batch.len(), 1);
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = JobQueue::new(4);
        let (a, _ra) = job(1, "lcs", 64);
        q.push(a).unwrap();
        q.close();
        // Still drains the queued job…
        assert_eq!(q.pop_batch(4).unwrap().batch.len(), 1);
        // …then reports exhaustion.
        assert!(q.pop_batch(4).is_none());
    }

    #[test]
    fn shutdown_during_drain_serves_queued_and_rejects_new() {
        let q = JobQueue::new(8);
        let mut rxs = Vec::new();
        for id in 0..5 {
            let (j, rx) = job(id, "lcs", 64);
            rxs.push(rx);
            q.push(j).unwrap();
        }
        q.close();
        // New work is refused mid-drain…
        let (late, _rl) = job(99, "lcs", 64);
        let (_, reason) = q.push(late).unwrap_err();
        assert_eq!(reason, RejectReason::ShuttingDown);
        // …while everything already admitted still drains, in order,
        // with nothing lost and nothing duplicated.
        let mut drained = Vec::new();
        while let Some(p) = q.pop_batch(2) {
            assert!(p.expired.is_empty());
            drained.extend(p.batch.into_iter().map(|j| j.id));
        }
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn expired_jobs_are_shed_at_pop_without_occupying_the_batch() {
        let q = JobQueue::new(8);
        let (mut dead, _rd) = job(1, "lcs", 64);
        dead.deadline = Some(Instant::now());
        let (live, _rl) = job(2, "lcs", 64);
        q.push(dead).unwrap();
        q.push(live).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let p = q.pop_batch(8).unwrap();
        assert_eq!(p.expired.len(), 1);
        assert_eq!(p.expired[0].id, 1);
        assert_eq!(p.batch.len(), 1);
        assert_eq!(p.batch[0].id, 2);
    }

    #[test]
    fn all_expired_pop_returns_empty_batch_not_a_block() {
        let q = JobQueue::new(8);
        let (mut dead, _rd) = job(7, "lcs", 64);
        dead.deadline = Some(Instant::now());
        q.push(dead).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let p = q.pop_batch(8).unwrap();
        assert!(p.batch.is_empty());
        assert_eq!(p.expired.len(), 1);
        assert_eq!(q.depth(), 0);
    }

    // Deterministic sweep standing in for a property test: across a
    // mixed population of expired and live jobs, every job comes out
    // exactly once, expired ones only via the shed path and live ones
    // only via batches.
    #[test]
    fn deadline_sweep_conserves_jobs_and_separates_populations() {
        let q = JobQueue::new(64);
        let mut rxs = Vec::new();
        for id in 0..32u64 {
            // Vary problems so batching has real grouping work to do.
            let problem = ["lcs", "dtw", "sw"][(id % 3) as usize];
            let (mut j, rx) = job(id, problem, 64 + (id as usize % 4) * 64);
            if id % 2 == 0 {
                j.deadline = Some(Instant::now());
            }
            rxs.push(rx);
            q.push(j).unwrap();
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
        q.close();
        let (mut shed, mut solved) = (Vec::new(), Vec::new());
        while let Some(p) = q.pop_batch(3) {
            shed.extend(p.expired.into_iter().map(|j| j.id));
            solved.extend(p.batch.into_iter().map(|j| j.id));
        }
        shed.sort_unstable();
        solved.sort_unstable();
        let evens: Vec<u64> = (0..32).filter(|i| i % 2 == 0).collect();
        let odds: Vec<u64> = (0..32).filter(|i| i % 2 == 1).collect();
        assert_eq!(shed, evens, "every expired job shed exactly once");
        assert_eq!(solved, odds, "every live job batched exactly once");
    }

    #[test]
    fn blocked_worker_wakes_on_close() {
        let q = std::sync::Arc::new(JobQueue::new(4));
        let q2 = q.clone();
        let t = std::thread::spawn(move || q2.pop_batch(4));
        std::thread::sleep(std::time::Duration::from_millis(50));
        q.close();
        assert!(t.join().unwrap().is_none());
    }
}
