//! Request/response/rejection types of the solve service and their
//! JSON wire forms (hand-rolled, parsed with [`lddp_trace::json`]).

use lddp_core::kernel::{ExecTier, MemoryMode};
use lddp_core::schedule::ScheduleParams;
use lddp_trace::json::{self, escape, num, Json};

/// Request service class. Interactive traffic is latency-sensitive and
/// never shed while batch work remains sheddable; batch traffic is
/// throughput work that absorbs every overload response first (separate
/// queue budget, brownout shedding, concurrency caps, forced rolling
/// memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    /// Latency-sensitive foreground traffic (the default).
    #[default]
    Interactive,
    /// Throughput-oriented background traffic; first to be shed.
    Batch,
}

impl Priority {
    /// Stable wire/metric-label name.
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
        }
    }

    /// Parses a wire name.
    pub fn parse(text: &str) -> Option<Priority> {
        match text {
            "interactive" => Some(Priority::Interactive),
            "batch" => Some(Priority::Batch),
            _ => None,
        }
    }

    /// Dense index for per-class arrays (interactive first).
    pub fn index(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Batch => 1,
        }
    }
}

/// One solve request, as admitted into the queue.
///
/// `problem`/`n`/`platform` identify the instance the same way
/// `lddp-cli solve` does; the batcher groups requests by
/// [`SolveRequest::batch_key`] so one tuner artifact serves the group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolveRequest {
    /// Problem name (must be known to the backend).
    pub problem: String,
    /// Instance size (table side).
    pub n: usize,
    /// Platform preset name (`high` / `low`).
    pub platform: String,
    /// Explicit schedule parameters; `None` means "use the (cached)
    /// tuner".
    pub params: Option<ScheduleParams>,
    /// Per-request deadline: if the request is still queued this many
    /// milliseconds after admission, it is rejected instead of solved.
    pub deadline_ms: Option<u64>,
    /// Memory-mode pin: `Some(Rolling)` requests the score-only
    /// wave-band path, `Some(Full)` pins the materialized table,
    /// `None` accepts the tuner's budget-based choice.
    pub memory_mode: Option<MemoryMode>,
    /// Service class; defaults to [`Priority::Interactive`].
    pub priority: Priority,
    /// Submitting tenant, for quota accounting and weighted-fair batch
    /// formation. Empty means "unattributed" (still one fair-share
    /// bucket of its own).
    pub tenant: String,
}

impl SolveRequest {
    /// A request for `problem` at size `n` on the `high` platform with
    /// tuned parameters and no deadline.
    pub fn new(problem: impl Into<String>, n: usize) -> SolveRequest {
        SolveRequest {
            problem: problem.into(),
            n,
            platform: "high".to_string(),
            params: None,
            deadline_ms: None,
            memory_mode: None,
            priority: Priority::Interactive,
            tenant: String::new(),
        }
    }

    /// The batching key: requests with equal keys may share one batch
    /// (and one tuner-cache artifact). Sizes are bucketed to the next
    /// power of two; explicit parameters are part of the key so they
    /// never mix with tuned requests.
    pub fn batch_key(&self) -> BatchKey {
        BatchKey {
            problem: self.problem.clone(),
            n_bucket: self.n.next_power_of_two(),
            platform: self.platform.clone(),
            params: self.params.map(|p| (p.t_switch, p.t_share)),
            memory: self.memory_mode,
            priority: self.priority,
        }
    }

    /// The JSON body of a `POST /solve`.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"problem\":\"{}\",\"n\":{},\"platform\":\"{}\"",
            escape(&self.problem),
            self.n,
            escape(&self.platform)
        );
        if let Some(p) = self.params {
            s.push_str(&format!(
                ",\"t_switch\":{},\"t_share\":{}",
                p.t_switch, p.t_share
            ));
        }
        if let Some(d) = self.deadline_ms {
            s.push_str(&format!(",\"deadline_ms\":{d}"));
        }
        if let Some(m) = self.memory_mode {
            s.push_str(&format!(",\"memory_mode\":\"{}\"", m.as_str()));
        }
        if self.priority != Priority::Interactive {
            s.push_str(&format!(",\"priority\":\"{}\"", self.priority.as_str()));
        }
        if !self.tenant.is_empty() {
            s.push_str(&format!(",\"tenant\":\"{}\"", escape(&self.tenant)));
        }
        s.push('}');
        s
    }

    /// Parses a `POST /solve` body. `problem` is required; `n` defaults
    /// to 256, `platform` to `high`.
    pub fn from_json(text: &str) -> Result<SolveRequest, String> {
        let v = json::parse(text)?;
        let problem = v
            .get("problem")
            .and_then(Json::as_str)
            .ok_or("missing \"problem\"")?
            .to_string();
        let n = match v.get("n") {
            Some(j) => {
                let f = j.as_f64().ok_or("\"n\" must be a number")?;
                if f < 1.0 || f.fract() != 0.0 {
                    return Err("\"n\" must be a positive integer".into());
                }
                f as usize
            }
            None => 256,
        };
        let platform = v
            .get("platform")
            .map(|j| j.as_str().ok_or("\"platform\" must be a string"))
            .transpose()?
            .unwrap_or("high")
            .to_string();
        let int_field = |key: &str| -> Result<Option<usize>, String> {
            match v.get(key) {
                None => Ok(None),
                Some(j) => {
                    let f = j.as_f64().ok_or(format!("\"{key}\" must be a number"))?;
                    if f < 0.0 || f.fract() != 0.0 {
                        return Err(format!("\"{key}\" must be a non-negative integer"));
                    }
                    Ok(Some(f as usize))
                }
            }
        };
        let params = match (int_field("t_switch")?, int_field("t_share")?) {
            (None, None) => None,
            (sw, sh) => Some(ScheduleParams::new(sw.unwrap_or(0), sh.unwrap_or(0))),
        };
        let deadline_ms = int_field("deadline_ms")?.map(|d| d as u64);
        let memory_mode = match v.get("memory_mode") {
            None => None,
            Some(j) => {
                let text = j.as_str().ok_or("\"memory_mode\" must be a string")?;
                Some(
                    MemoryMode::parse(text)
                        .ok_or("\"memory_mode\" must be \"full\" or \"rolling\"")?,
                )
            }
        };
        let priority = match v.get("priority") {
            None => Priority::Interactive,
            Some(j) => {
                let text = j.as_str().ok_or("\"priority\" must be a string")?;
                Priority::parse(text).ok_or("\"priority\" must be \"interactive\" or \"batch\"")?
            }
        };
        let tenant = v
            .get("tenant")
            .map(|j| j.as_str().ok_or("\"tenant\" must be a string"))
            .transpose()?
            .unwrap_or("")
            .to_string();
        Ok(SolveRequest {
            problem,
            n,
            platform,
            params,
            deadline_ms,
            memory_mode,
            priority,
            tenant,
        })
    }
}

/// The batch/tuner-amortization key derived from a request.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BatchKey {
    /// Problem name.
    pub problem: String,
    /// Instance size bucketed to the next power of two.
    pub n_bucket: usize,
    /// Platform preset name.
    pub platform: String,
    /// Explicit parameters, when the request pins them.
    pub params: Option<(usize, usize)>,
    /// Memory-mode pin, when the request carries one — pinned-rolling
    /// requests never share a batch (and a tuner artifact) with
    /// full-table ones.
    pub memory: Option<MemoryMode>,
    /// Service class: interactive and batch traffic never share a
    /// batch, so a brownout action on a batch never delays an
    /// interactive rider. Tenants are deliberately *not* part of the
    /// key — fair gathering across tenants happens inside a batch.
    pub priority: Priority,
}

impl BatchKey {
    /// Compact display form, used as a trace-span argument.
    pub fn label(&self) -> String {
        let mut label = match self.params {
            Some((sw, sh)) => format!(
                "{}/{}/{}/{}+{}",
                self.problem, self.n_bucket, self.platform, sw, sh
            ),
            None => format!("{}/{}/{}", self.problem, self.n_bucket, self.platform),
        };
        if let Some(m) = self.memory {
            label.push('/');
            label.push_str(m.as_str());
        }
        if self.priority == Priority::Batch {
            label.push('/');
            label.push_str(self.priority.as_str());
        }
        label
    }
}

/// Why the admission controller (or the deadline check) refused a
/// request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded queue was at capacity — backpressure.
    QueueFull {
        /// The configured capacity the queue was at.
        capacity: usize,
    },
    /// The server is draining and admits nothing new.
    ShuttingDown,
    /// The request's deadline expired while it sat in the queue.
    DeadlineExceeded {
        /// How long the request waited, milliseconds.
        waited_ms: u64,
        /// The deadline it carried, milliseconds.
        deadline_ms: u64,
    },
    /// The request failed validation (unknown problem, bad size…).
    Invalid(String),
    /// The backend circuit breaker is open: recent solves failed and the
    /// server is refusing work until the cool-off elapses.
    BreakerOpen {
        /// Suggested client wait before retrying, seconds (also sent as
        /// the `Retry-After` header).
        retry_after_s: u64,
    },
    /// The §IV cost estimate says the solve cannot finish inside the
    /// request's own deadline, so admission refuses it up front instead
    /// of wasting a solve slot on a doomed request.
    DeadlineInfeasible {
        /// Modelled solve time for the instance, milliseconds.
        estimate_ms: u64,
        /// The deadline the request carried, milliseconds.
        deadline_ms: u64,
    },
    /// The tenant exhausted its admission quota (token bucket).
    TenantQuota {
        /// The over-quota tenant.
        tenant: String,
        /// Suggested wait until a token refills, seconds (also sent as
        /// the `Retry-After` header).
        retry_after_s: u64,
    },
    /// The brownout ladder is shedding this service class under
    /// sustained overload.
    BrownoutShed {
        /// Current brownout level (1..).
        level: u8,
        /// Suggested client wait, seconds (also the `Retry-After`
        /// header).
        retry_after_s: u64,
    },
}

impl RejectReason {
    /// Stable machine-readable code (the `error` field on the wire).
    pub fn code(&self) -> &'static str {
        match self {
            RejectReason::QueueFull { .. } => "queue_full",
            RejectReason::ShuttingDown => "shutting_down",
            RejectReason::DeadlineExceeded { .. } => "deadline_exceeded",
            RejectReason::Invalid(_) => "invalid",
            RejectReason::BreakerOpen { .. } => "breaker_open",
            RejectReason::DeadlineInfeasible { .. } => "deadline_infeasible",
            RejectReason::TenantQuota { .. } => "tenant_quota",
            RejectReason::BrownoutShed { .. } => "brownout_shed",
        }
    }

    /// Human-readable detail.
    pub fn message(&self) -> String {
        match self {
            RejectReason::QueueFull { capacity } => {
                format!("queue full ({capacity} requests); retry later")
            }
            RejectReason::ShuttingDown => "server is draining".to_string(),
            RejectReason::DeadlineExceeded {
                waited_ms,
                deadline_ms,
            } => format!("deadline {deadline_ms} ms exceeded after waiting {waited_ms} ms"),
            RejectReason::Invalid(msg) => msg.clone(),
            RejectReason::BreakerOpen { retry_after_s } => {
                format!("backend circuit breaker open; retry after {retry_after_s} s")
            }
            RejectReason::DeadlineInfeasible {
                estimate_ms,
                deadline_ms,
            } => format!(
                "estimated solve time {estimate_ms} ms cannot meet the {deadline_ms} ms deadline"
            ),
            RejectReason::TenantQuota {
                tenant,
                retry_after_s,
            } => format!("tenant \"{tenant}\" over admission quota; retry after {retry_after_s} s"),
            RejectReason::BrownoutShed {
                level,
                retry_after_s,
            } => format!(
                "brownout level {level}: batch-class admissions shed; retry after {retry_after_s} s"
            ),
        }
    }

    /// The HTTP status the wire API maps this rejection to.
    pub fn http_status(&self) -> u16 {
        match self {
            RejectReason::QueueFull { .. } => 429,
            RejectReason::ShuttingDown => 503,
            RejectReason::DeadlineExceeded { .. } => 504,
            RejectReason::Invalid(_) => 400,
            RejectReason::BreakerOpen { .. } => 503,
            RejectReason::DeadlineInfeasible { .. } => 504,
            RejectReason::TenantQuota { .. } => 429,
            RejectReason::BrownoutShed { .. } => 503,
        }
    }

    /// The `Retry-After` value (seconds) this rejection should carry,
    /// when it has one. Backpressure rejections (`queue_full`,
    /// `tenant_quota`, `brownout_shed`, `breaker_open`) all carry one
    /// so well-behaved clients pace themselves instead of hammering.
    pub fn retry_after_s(&self) -> Option<u64> {
        match self {
            RejectReason::BreakerOpen { retry_after_s }
            | RejectReason::TenantQuota { retry_after_s, .. }
            | RejectReason::BrownoutShed { retry_after_s, .. } => Some(*retry_after_s),
            RejectReason::QueueFull { .. } => Some(1),
            _ => None,
        }
    }
}

/// How a submitted request can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Refused without solving (admission control or deadline).
    Rejected(RejectReason),
    /// The backend solve itself failed.
    Backend(String),
    /// The backend solve panicked; the panic was caught and isolated,
    /// the worker survived, and the client gets a clean 500 instead of
    /// a dropped connection.
    Panicked(String),
    /// The solve finished but blew past the server's watchdog budget;
    /// the answer is withheld and the breaker is charged.
    WatchdogTimeout {
        /// How long the solve actually took, milliseconds.
        elapsed_ms: u64,
        /// The configured watchdog budget, milliseconds.
        watchdog_ms: u64,
    },
}

impl ServeError {
    /// Stable machine-readable code.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::Rejected(r) => r.code(),
            ServeError::Backend(_) => "backend_error",
            ServeError::Panicked(_) => "backend_panic",
            ServeError::WatchdogTimeout { .. } => "watchdog_timeout",
        }
    }

    /// Human-readable detail.
    pub fn message(&self) -> String {
        match self {
            ServeError::Rejected(r) => r.message(),
            ServeError::Backend(msg) => msg.clone(),
            ServeError::Panicked(msg) => format!("backend panicked (isolated): {msg}"),
            ServeError::WatchdogTimeout {
                elapsed_ms,
                watchdog_ms,
            } => format!("solve took {elapsed_ms} ms, over the {watchdog_ms} ms watchdog budget"),
        }
    }

    /// HTTP status for the wire API (backend failures and panics are
    /// 500s; a watchdog overrun is a 504 like any other timeout).
    pub fn http_status(&self) -> u16 {
        match self {
            ServeError::Rejected(r) => r.http_status(),
            ServeError::Backend(_) => 500,
            ServeError::Panicked(_) => 500,
            ServeError::WatchdogTimeout { .. } => 504,
        }
    }

    /// The `Retry-After` value (seconds) to attach, when any.
    pub fn retry_after_s(&self) -> Option<u64> {
        match self {
            ServeError::Rejected(r) => r.retry_after_s(),
            _ => None,
        }
    }

    /// The JSON error body.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"error\":\"{}\",\"message\":\"{}\"}}",
            self.code(),
            escape(&self.message())
        )
    }
}

/// A completed solve, as returned to the submitter.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveResponse {
    /// Server-assigned request id.
    pub id: u64,
    /// Echo of the requested problem.
    pub problem: String,
    /// Echo of the requested size.
    pub n: usize,
    /// The problem's headline answer (same text `lddp-cli solve`
    /// prints), used by the load generator's oracle check.
    pub answer: String,
    /// Modelled (virtual) solve time on the platform, milliseconds.
    pub virtual_ms: f64,
    /// The schedule parameters actually executed.
    pub params: ScheduleParams,
    /// The execution tier the solve ran on.
    pub tier: ExecTier,
    /// Memory mode the solve ran in (`full` table or `rolling`
    /// wave-bands).
    pub memory_mode: MemoryMode,
    /// Peak DP working-set bytes of the solve: the full table, or the
    /// rolling band ring.
    pub table_bytes: usize,
    /// Wall time spent queued, milliseconds.
    pub queue_ms: f64,
    /// Wall time spent solving, milliseconds.
    pub solve_ms: f64,
    /// Wall time the batcher spent assembling the batch this request
    /// rode in (drain + group), milliseconds.
    pub batch_ms: f64,
    /// Wall time spent resolving schedule parameters for the batch
    /// (tuner-cache lookup or sweep), milliseconds.
    pub tune_ms: f64,
    /// Per-request trace id, assigned at admission and threaded through
    /// queue → batch → tune → solve. Also sent as the `X-LDDP-Trace-Id`
    /// response header; correlates with `GET /debug/trace` spans.
    pub trace_id: String,
    /// Number of requests in the batch this one rode in.
    pub batch_size: usize,
    /// Whether the batch's parameters came from the tuner cache.
    pub cache_hit: bool,
    /// Degradation steps the backend took to produce this answer
    /// (stable codes such as `bulk_to_scalar`); empty when the solve
    /// ran at full configuration.
    pub degraded: Vec<String>,
    /// Fleet platform the dispatcher placed this solve on
    /// ("hetero-high", …); empty when the server runs a single
    /// backend without a fleet.
    pub placed_on: String,
    /// Simulated devices that cooperated on the grid: 1 for ordinary
    /// solves, >1 when the grid ran as a cross-device `MultiPlan`
    /// band split.
    pub devices: usize,
    /// Time from admission to the first streamed band frame leaving
    /// the server, milliseconds. 0 for non-streamed solves (and for
    /// streams whose first band never made it out).
    pub ttfb_ms: f64,
}

impl SolveResponse {
    /// The JSON body of a successful `POST /solve`.
    pub fn to_json(&self) -> String {
        let degraded = self
            .degraded
            .iter()
            .map(|d| format!("\"{}\"", escape(d)))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"id\":{},\"trace_id\":\"{}\",\"problem\":\"{}\",\"n\":{},\
             \"answer\":\"{}\",\
             \"virtual_ms\":{},\"t_switch\":{},\"t_share\":{},\"tier\":\"{}\",\
             \"queue_ms\":{},\"solve_ms\":{},\"batch_size\":{},\"cache_hit\":{},\
             \"degraded\":[{}],\
             \"placed_on\":\"{}\",\"devices\":{},\
             \"timings\":{{\"queue_wait_ms\":{},\"batch_ms\":{},\
             \"tune_ms\":{},\"solve_ms\":{},\"ttfb_ms\":{},\"tier\":\"{}\",\
             \"memory_mode\":\"{}\",\"table_bytes\":{}}}}}",
            self.id,
            escape(&self.trace_id),
            escape(&self.problem),
            self.n,
            escape(&self.answer),
            num(self.virtual_ms),
            self.params.t_switch,
            self.params.t_share,
            self.tier.as_str(),
            num(self.queue_ms),
            num(self.solve_ms),
            self.batch_size,
            self.cache_hit,
            degraded,
            escape(&self.placed_on),
            self.devices,
            num(self.queue_ms),
            num(self.batch_ms),
            num(self.tune_ms),
            num(self.solve_ms),
            num(self.ttfb_ms),
            self.tier.as_str(),
            self.memory_mode.as_str(),
            self.table_bytes,
        )
    }

    /// Parses a successful `POST /solve` body.
    pub fn from_json(text: &str) -> Result<SolveResponse, String> {
        let v = json::parse(text)?;
        let f = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or(format!("missing number \"{key}\""))
        };
        let s = |key: &str| -> Result<String, String> {
            Ok(v.get(key)
                .and_then(Json::as_str)
                .ok_or(format!("missing string \"{key}\""))?
                .to_string())
        };
        Ok(SolveResponse {
            id: f("id")? as u64,
            problem: s("problem")?,
            n: f("n")? as usize,
            answer: s("answer")?,
            virtual_ms: f("virtual_ms")?,
            params: ScheduleParams::new(f("t_switch")? as usize, f("t_share")? as usize),
            // Absent on responses from servers predating tier
            // reporting — those always ran the scalar/bulk CPU path.
            tier: v
                .get("tier")
                .and_then(Json::as_str)
                .and_then(ExecTier::parse)
                .unwrap_or(ExecTier::Bulk),
            // Absent on responses from servers predating memory-mode
            // reporting — those always materialized the full table.
            memory_mode: v
                .get("timings")
                .and_then(|t| t.get("memory_mode"))
                .and_then(Json::as_str)
                .and_then(MemoryMode::parse)
                .unwrap_or(MemoryMode::Full),
            table_bytes: v
                .get("timings")
                .and_then(|t| t.get("table_bytes"))
                .and_then(Json::as_f64)
                .map_or(0, |b| b as usize),
            queue_ms: f("queue_ms")?,
            solve_ms: f("solve_ms")?,
            // The timings breakdown and trace id are absent on responses
            // from servers predating trace propagation.
            batch_ms: v
                .get("timings")
                .and_then(|t| t.get("batch_ms"))
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            tune_ms: v
                .get("timings")
                .and_then(|t| t.get("tune_ms"))
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            trace_id: v
                .get("trace_id")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            batch_size: f("batch_size")? as usize,
            cache_hit: v
                .get("cache_hit")
                .and_then(Json::as_bool)
                .ok_or("missing bool \"cache_hit\"")?,
            // Absent on responses from servers predating degradation
            // reporting — treat as "not degraded".
            degraded: v
                .get("degraded")
                .and_then(Json::as_arr)
                .map(|a| {
                    a.iter()
                        .filter_map(Json::as_str)
                        .map(str::to_string)
                        .collect()
                })
                .unwrap_or_default(),
            // Absent on responses from servers predating fleet serving
            // — those solved on their single backend platform.
            placed_on: v
                .get("placed_on")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            devices: v
                .get("devices")
                .and_then(Json::as_f64)
                .map_or(1, |d| (d as usize).max(1)),
            // Absent on non-streamed responses and on servers predating
            // the streaming path.
            ttfb_ms: v
                .get("timings")
                .and_then(|t| t.get("ttfb_ms"))
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_json_round_trips() {
        let mut req = SolveRequest::new("lcs", 300);
        req.platform = "low".into();
        req.params = Some(ScheduleParams::new(4, 16));
        req.deadline_ms = Some(1500);
        let back = SolveRequest::from_json(&req.to_json()).unwrap();
        assert_eq!(req, back);

        // Defaults.
        let min = SolveRequest::from_json(r#"{"problem":"dtw"}"#).unwrap();
        assert_eq!(min.n, 256);
        assert_eq!(min.platform, "high");
        assert_eq!(min.params, None);
        assert_eq!(min.deadline_ms, None);
        assert_eq!(min.memory_mode, None);

        // The memory-mode pin rides the wire and the batch key.
        let mut rolling = SolveRequest::new("lcs", 4096);
        rolling.memory_mode = Some(MemoryMode::Rolling);
        let back = SolveRequest::from_json(&rolling.to_json()).unwrap();
        assert_eq!(back.memory_mode, Some(MemoryMode::Rolling));
        assert_ne!(
            rolling.batch_key(),
            SolveRequest::new("lcs", 4096).batch_key()
        );
        assert!(rolling.batch_key().label().ends_with("/rolling"));
        assert!(SolveRequest::from_json(r#"{"problem":"lcs","memory_mode":"sideways"}"#).is_err());

        // Priority and tenant ride the wire; defaults stay off it so old
        // servers keep parsing new clients' default-class requests.
        let mut qos = SolveRequest::new("lcs", 64);
        qos.priority = Priority::Batch;
        qos.tenant = "acme".into();
        let body = qos.to_json();
        assert!(body.contains("\"priority\":\"batch\""));
        assert!(body.contains("\"tenant\":\"acme\""));
        let back = SolveRequest::from_json(&body).unwrap();
        assert_eq!(back, qos);
        let plain = SolveRequest::new("lcs", 64).to_json();
        assert!(!plain.contains("priority"));
        assert!(!plain.contains("tenant"));
        assert!(SolveRequest::from_json(r#"{"problem":"lcs","priority":"urgent"}"#).is_err());
    }

    #[test]
    fn request_json_rejects_garbage() {
        assert!(SolveRequest::from_json("{}").is_err());
        assert!(SolveRequest::from_json(r#"{"problem":"lcs","n":-4}"#).is_err());
        assert!(SolveRequest::from_json(r#"{"problem":"lcs","n":1.5}"#).is_err());
        assert!(SolveRequest::from_json(r#"{"problem":"lcs","platform":7}"#).is_err());
        assert!(SolveRequest::from_json("not json").is_err());
    }

    #[test]
    fn batch_keys_bucket_and_separate_explicit_params() {
        let a = SolveRequest::new("lcs", 200).batch_key();
        let b = SolveRequest::new("lcs", 256).batch_key();
        assert_eq!(a, b);
        assert_eq!(a.n_bucket, 256);
        let mut c = SolveRequest::new("lcs", 200);
        c.params = Some(ScheduleParams::new(1, 2));
        assert_ne!(a, c.batch_key());
        assert!(c.batch_key().label().contains("1+2"));
        let mut d = SolveRequest::new("lcs", 200);
        d.platform = "low".into();
        assert_ne!(a, d.batch_key());
    }

    #[test]
    fn response_json_round_trips() {
        let resp = SolveResponse {
            id: 42,
            problem: "levenshtein".into(),
            n: 128,
            answer: "edit distance = 97".into(),
            virtual_ms: 1.5,
            params: ScheduleParams::new(8, 64),
            tier: ExecTier::Simd,
            memory_mode: MemoryMode::Rolling,
            table_bytes: 98316,
            queue_ms: 0.25,
            solve_ms: 3.75,
            batch_ms: 0.5,
            tune_ms: 1.25,
            trace_id: "00f1e2d3c4b5a697".into(),
            batch_size: 4,
            cache_hit: true,
            degraded: vec!["bulk_to_scalar".into()],
            placed_on: "hetero-low".into(),
            devices: 3,
            ttfb_ms: 0.875,
        };
        let json = resp.to_json();
        assert!(json.contains("\"timings\":{"));
        assert!(json.contains("\"queue_wait_ms\":0.25"));
        let back = SolveResponse::from_json(&json).unwrap();
        assert_eq!(resp, back);
    }

    #[test]
    fn degraded_field_is_optional_on_parse() {
        // A response from a server predating degradation reporting.
        let old = r#"{"id":1,"problem":"lcs","n":8,"answer":"x","virtual_ms":1,
                      "t_switch":0,"t_share":0,"queue_ms":0,"solve_ms":1,
                      "batch_size":1,"cache_hit":false}"#;
        let parsed = SolveResponse::from_json(old).unwrap();
        assert!(parsed.degraded.is_empty());
        // Same for the tier field: old servers ran the bulk CPU path.
        assert_eq!(parsed.tier, ExecTier::Bulk);
        // And the trace/timings fields, which predate trace propagation.
        assert!(parsed.trace_id.is_empty());
        assert_eq!(parsed.batch_ms, 0.0);
        assert_eq!(parsed.tune_ms, 0.0);
        // And the fleet fields, which predate fleet serving.
        assert!(parsed.placed_on.is_empty());
        assert_eq!(parsed.devices, 1);
        // And the memory fields, which predate the rolling tier.
        assert_eq!(parsed.memory_mode, MemoryMode::Full);
        assert_eq!(parsed.table_bytes, 0);
        // And the streaming TTFB, which predates the streaming path.
        assert_eq!(parsed.ttfb_ms, 0.0);
    }

    #[test]
    fn reject_reasons_map_to_codes_and_statuses() {
        let cases: Vec<(RejectReason, &str, u16)> = vec![
            (RejectReason::QueueFull { capacity: 8 }, "queue_full", 429),
            (RejectReason::ShuttingDown, "shutting_down", 503),
            (
                RejectReason::DeadlineExceeded {
                    waited_ms: 10,
                    deadline_ms: 5,
                },
                "deadline_exceeded",
                504,
            ),
            (RejectReason::Invalid("bad".into()), "invalid", 400),
            (
                RejectReason::BreakerOpen { retry_after_s: 2 },
                "breaker_open",
                503,
            ),
            (
                RejectReason::DeadlineInfeasible {
                    estimate_ms: 900,
                    deadline_ms: 100,
                },
                "deadline_infeasible",
                504,
            ),
            (
                RejectReason::TenantQuota {
                    tenant: "acme".into(),
                    retry_after_s: 2,
                },
                "tenant_quota",
                429,
            ),
            (
                RejectReason::BrownoutShed {
                    level: 1,
                    retry_after_s: 1,
                },
                "brownout_shed",
                503,
            ),
        ];
        for (r, code, status) in cases {
            assert_eq!(r.code(), code);
            assert_eq!(r.http_status(), status);
            assert!(!r.message().is_empty());
            let e = ServeError::Rejected(r);
            assert!(e.to_json().contains(code));
        }
        let b = ServeError::Backend("boom".into());
        assert_eq!(b.http_status(), 500);
        assert_eq!(b.code(), "backend_error");
        assert_eq!(b.retry_after_s(), None);

        // Every backpressure rejection carries a Retry-After hint.
        assert_eq!(
            RejectReason::QueueFull { capacity: 8 }.retry_after_s(),
            Some(1)
        );
        assert_eq!(
            RejectReason::TenantQuota {
                tenant: "t".into(),
                retry_after_s: 3
            }
            .retry_after_s(),
            Some(3)
        );
        assert_eq!(
            RejectReason::BrownoutShed {
                level: 2,
                retry_after_s: 1
            }
            .retry_after_s(),
            Some(1)
        );
    }

    #[test]
    fn priority_classes_parse_and_separate_batch_keys() {
        assert_eq!(Priority::parse("interactive"), Some(Priority::Interactive));
        assert_eq!(Priority::parse("batch"), Some(Priority::Batch));
        assert_eq!(Priority::parse("bulk"), None);
        assert_eq!(Priority::default(), Priority::Interactive);
        assert_eq!(Priority::Interactive.index(), 0);
        assert_eq!(Priority::Batch.index(), 1);

        // Classes never share a batch (or a tuner artifact slot).
        let fg = SolveRequest::new("lcs", 64);
        let mut bg = SolveRequest::new("lcs", 64);
        bg.priority = Priority::Batch;
        assert_ne!(fg.batch_key(), bg.batch_key());
        assert!(bg.batch_key().label().ends_with("/batch"));
        // Tenants DO share a batch: fairness happens inside it.
        let mut other = bg.clone();
        other.tenant = "acme".into();
        assert_eq!(bg.batch_key(), other.batch_key());
    }

    #[test]
    fn panic_and_watchdog_errors_are_clean_5xx() {
        let p = ServeError::Panicked("kernel bug".into());
        assert_eq!(p.code(), "backend_panic");
        assert_eq!(p.http_status(), 500);
        assert!(p.message().contains("isolated"));

        let w = ServeError::WatchdogTimeout {
            elapsed_ms: 900,
            watchdog_ms: 500,
        };
        assert_eq!(w.code(), "watchdog_timeout");
        assert_eq!(w.http_status(), 504);
        assert!(w.message().contains("900"));

        let open = ServeError::Rejected(RejectReason::BreakerOpen { retry_after_s: 3 });
        assert_eq!(open.retry_after_s(), Some(3));
    }
}
