//! The brownout ladder: graduated load shedding under sustained queue
//! pressure, with hysteresis.
//!
//! The same idiom as the engine's graceful-degradation ladder (PR 4),
//! lifted to the admission layer: instead of falling back across
//! execution tiers when a kernel faults, the server walks down a
//! ladder of service reductions when the queue stays hot — and walks
//! back up only after the pressure has *stayed* low, so the ladder
//! never flaps at the watermark.
//!
//! Levels (each includes everything above it):
//!
//! | level | action |
//! |-------|--------|
//! | 0     | normal service |
//! | 1     | shed new batch-class admissions (`503 brownout_shed`) |
//! | 2     | cap batch concurrency to one worker |
//! | 3     | force rolling memory mode onto batch solves |
//!
//! Interactive traffic is never shed by the ladder at any level — the
//! queue's class budgets and the breaker remain its only admission
//! gates — so an interactive-only workload cannot observe the ladder
//! at all.
//!
//! [`Brownout::observe`] is a pure function of the observed fill
//! sequence (no wall clock, no randomness), so replaying the same
//! arrival sequence reproduces the same shed decisions — the property
//! the chaos campaign's seeded replays rely on.

/// Watermarks and dwell counts for the ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrownoutConfig {
    /// Queue fill fraction at or above which an observation counts as
    /// pressure.
    pub high_watermark: f64,
    /// Queue fill fraction at or below which an observation counts as
    /// relief.
    pub low_watermark: f64,
    /// Consecutive pressure observations required to climb one level.
    pub engage_after: u32,
    /// Consecutive relief observations required to descend one level —
    /// the hysteresis dwell, deliberately longer than `engage_after`.
    pub disengage_after: u32,
    /// Highest rung of the ladder.
    pub max_level: u8,
}

impl Default for BrownoutConfig {
    fn default() -> BrownoutConfig {
        BrownoutConfig {
            high_watermark: 0.75,
            low_watermark: 0.25,
            engage_after: 3,
            disengage_after: 5,
            max_level: 3,
        }
    }
}

/// One level transition reported by [`Brownout::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Level before the observation.
    pub from: u8,
    /// Level after the observation.
    pub to: u8,
}

/// The ladder's state machine. Not internally synchronized — the
/// server guards it with a mutex and publishes the level through an
/// atomic for lock-free reads on the hot path.
#[derive(Debug)]
pub struct Brownout {
    config: BrownoutConfig,
    level: u8,
    hot_streak: u32,
    cool_streak: u32,
}

impl Brownout {
    /// A ladder at level 0.
    pub fn new(config: BrownoutConfig) -> Brownout {
        Brownout {
            config,
            level: 0,
            hot_streak: 0,
            cool_streak: 0,
        }
    }

    /// Current level.
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Feeds one queue-fill observation (`[0, 1]`) to the ladder and
    /// returns the transition, if this observation caused one.
    ///
    /// Climbing requires `engage_after` *consecutive* observations at
    /// or above the high watermark; descending requires
    /// `disengage_after` consecutive observations at or below the low
    /// watermark. Observations in the dead band between the watermarks
    /// reset both streaks — sustained ambiguity holds the ladder where
    /// it is.
    pub fn observe(&mut self, fill: f64) -> Option<Transition> {
        if fill >= self.config.high_watermark {
            self.cool_streak = 0;
            self.hot_streak += 1;
            if self.hot_streak >= self.config.engage_after && self.level < self.config.max_level {
                self.hot_streak = 0;
                let from = self.level;
                self.level += 1;
                return Some(Transition {
                    from,
                    to: self.level,
                });
            }
        } else if fill <= self.config.low_watermark {
            self.hot_streak = 0;
            self.cool_streak += 1;
            if self.cool_streak >= self.config.disengage_after && self.level > 0 {
                self.cool_streak = 0;
                let from = self.level;
                self.level -= 1;
                return Some(Transition {
                    from,
                    to: self.level,
                });
            }
        } else {
            self.hot_streak = 0;
            self.cool_streak = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder() -> Brownout {
        Brownout::new(BrownoutConfig {
            high_watermark: 0.75,
            low_watermark: 0.25,
            engage_after: 3,
            disengage_after: 5,
            max_level: 3,
        })
    }

    #[test]
    fn engages_only_after_sustained_pressure() {
        let mut b = ladder();
        assert_eq!(b.observe(0.9), None);
        assert_eq!(b.observe(0.9), None);
        // A single dip resets the streak.
        assert_eq!(b.observe(0.1), None);
        assert_eq!(b.observe(0.9), None);
        assert_eq!(b.observe(0.9), None);
        assert_eq!(b.observe(0.9), Some(Transition { from: 0, to: 1 }));
        assert_eq!(b.level(), 1);
    }

    #[test]
    fn climbs_to_max_and_no_further() {
        let mut b = ladder();
        let mut transitions = Vec::new();
        for _ in 0..20 {
            if let Some(t) = b.observe(1.0) {
                transitions.push((t.from, t.to));
            }
        }
        assert_eq!(transitions, vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(b.level(), 3);
    }

    #[test]
    fn disengages_with_hysteresis() {
        let mut b = ladder();
        for _ in 0..3 {
            b.observe(1.0);
        }
        assert_eq!(b.level(), 1);
        // Four relief observations: not enough to descend.
        for _ in 0..4 {
            assert_eq!(b.observe(0.0), None);
        }
        // A pressure blip resets the cool streak.
        b.observe(0.9);
        for _ in 0..4 {
            assert_eq!(b.observe(0.0), None);
        }
        assert_eq!(b.observe(0.0), Some(Transition { from: 1, to: 0 }));
        assert_eq!(b.level(), 0);
        // Already at 0: further relief does nothing.
        for _ in 0..10 {
            assert_eq!(b.observe(0.0), None);
        }
    }

    #[test]
    fn dead_band_holds_the_level() {
        let mut b = ladder();
        for _ in 0..6 {
            b.observe(1.0);
        }
        assert_eq!(b.level(), 2);
        // Fill between the watermarks: neither streak advances.
        for _ in 0..50 {
            assert_eq!(b.observe(0.5), None);
        }
        assert_eq!(b.level(), 2);
    }

    #[test]
    fn same_sequence_replays_to_same_decisions() {
        // Determinism: the ladder is a pure function of the observed
        // sequence, so a replay makes identical shed decisions.
        let fills: Vec<f64> = (0..200)
            .map(|i| {
                let phase = (i * 7919) % 100;
                phase as f64 / 100.0
            })
            .collect();
        let run = |fills: &[f64]| {
            let mut b = ladder();
            fills
                .iter()
                .map(|f| {
                    let t = b.observe(*f);
                    (b.level(), t.map(|t| (t.from, t.to)))
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(&fills), run(&fills));
    }
}
