//! One Criterion benchmark per paper exhibit: each measures the cost of
//! regenerating a representative point of that table/figure through the
//! full framework pipeline (classification → plan → simulated run). This
//! keeps `cargo bench` in lock-step with the `bin/fig*` regenerators —
//! if a figure's machinery regresses, its benchmark moves.

use criterion::{criterion_group, criterion_main, Criterion};
use hetero_sim::exec::{run_cpu_as, run_gpu_as, run_hetero, ExecOptions};
use hetero_sim::platform::hetero_high;
use lddp::Framework;
use lddp_bench::random_seq;
use lddp_core::kernel::Kernel;
use lddp_core::pattern::{classify, table_one, Pattern};
use lddp_core::schedule::{transfer_need, Plan, ScheduleParams};
use lddp_core::wavefront::Dims;
use lddp_problems::lcs::LcsKernel;
use lddp_problems::synthetic::{fig8_kernel, fig9_kernel};
use lddp_problems::{CheckerboardKernel, DitherKernel, LevenshteinKernel};

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group.bench_function("table1_classification", |b| {
        b.iter(|| {
            let rows = table_one();
            assert_eq!(rows.len(), 15);
            rows
        })
    });
    group.bench_function("table2_transfer_needs", |b| {
        b.iter(|| {
            table_one()
                .into_iter()
                .filter(|r| r.pattern.is_canonical())
                .map(|r| transfer_need(r.pattern, r.set).unwrap().ways())
                .sum::<usize>()
        })
    });
    group.finish();
}

fn bench_fig07(c: &mut Criterion) {
    let n = 1024;
    let kernel = LcsKernel::new(random_seq(n, 4, 1), random_seq(n, 4, 2));
    let fw = Framework::new(hetero_high());
    let mut group = c.benchmark_group("fig07");
    group.sample_size(10);
    group.bench_function("t_switch_point_estimate", |b| {
        b.iter(|| fw.estimate(&kernel, ScheduleParams::new(256, 0)).unwrap())
    });
    group.bench_function("full_two_stage_tune", |b| {
        b.iter(|| fw.tune(&kernel).unwrap())
    });
    group.finish();
}

fn bench_fig08(c: &mut Criterion) {
    let kernel = fig8_kernel(Dims::new(1024, 1024), 1);
    let platform = hetero_high();
    let opts = ExecOptions::default();
    let mut group = c.benchmark_group("fig08");
    group.bench_function("inverted_l_gpu_model", |b| {
        b.iter(|| {
            run_gpu_as(&kernel, Pattern::InvertedL, &platform, &opts)
                .unwrap()
                .total_s
        })
    });
    group.bench_function("horizontal1_gpu_model", |b| {
        b.iter(|| {
            run_gpu_as(&kernel, Pattern::Horizontal, &platform, &opts)
                .unwrap()
                .total_s
        })
    });
    group.finish();
}

fn bench_fig09(c: &mut Criterion) {
    let kernel = fig9_kernel(Dims::new(2048, 2048), 1);
    let platform = hetero_high();
    let plan = Plan::new(
        Pattern::Horizontal,
        kernel.contributing_set(),
        kernel.dims(),
        ScheduleParams::new(0, 512),
    )
    .unwrap();
    let mut group = c.benchmark_group("fig09");
    group.bench_function("framework_point_2048", |b| {
        b.iter(|| {
            run_hetero(&kernel, &plan, &platform, &ExecOptions::default())
                .unwrap()
                .total_s
        })
    });
    group.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let n = 1024;
    let kernel = LevenshteinKernel::new(random_seq(n, 4, 3), random_seq(n, 4, 4));
    let platform = hetero_high();
    let plan = Plan::new(
        Pattern::AntiDiagonal,
        kernel.contributing_set(),
        kernel.dims(),
        ScheduleParams::new(128, 64),
    )
    .unwrap();
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    group.bench_function("levenshtein_framework_functional_1024", |b| {
        b.iter(|| {
            run_hetero(&kernel, &plan, &platform, &ExecOptions::functional())
                .unwrap()
                .grid
                .unwrap()
        })
    });
    group.bench_function("levenshtein_cpu_model_1024", |b| {
        b.iter(|| {
            run_cpu_as(
                &kernel,
                Pattern::AntiDiagonal,
                &platform,
                &ExecOptions::default(),
            )
            .unwrap()
            .total_s
        })
    });
    group.finish();
}

fn bench_fig12(c: &mut Criterion) {
    let n = 512;
    let kernel = DitherKernel::noise(n, n, 5);
    let platform = hetero_high();
    let plan = Plan::new(
        Pattern::KnightMove,
        kernel.contributing_set(),
        kernel.dims(),
        ScheduleParams::new(256, 0),
    )
    .unwrap();
    let mut group = c.benchmark_group("fig12");
    group.sample_size(10);
    group.bench_function("dithering_framework_functional_512", |b| {
        b.iter(|| {
            run_hetero(&kernel, &plan, &platform, &ExecOptions::functional())
                .unwrap()
                .grid
                .unwrap()
        })
    });
    group.finish();
}

fn bench_fig13(c: &mut Criterion) {
    let n = 1024;
    let kernel = CheckerboardKernel::random(n, n, 9, 7);
    let platform = hetero_high();
    let plan = Plan::new(
        Pattern::Horizontal,
        kernel.contributing_set(),
        kernel.dims(),
        ScheduleParams::new(0, 256),
    )
    .unwrap();
    let mut group = c.benchmark_group("fig13");
    group.sample_size(10);
    group.bench_function("checkerboard_framework_functional_1024", |b| {
        b.iter(|| {
            run_hetero(&kernel, &plan, &platform, &ExecOptions::functional())
                .unwrap()
                .grid
                .unwrap()
        })
    });
    group.finish();
}

fn bench_classification(c: &mut Criterion) {
    // The front-door cost the paper's "productivity tool" claim rides
    // on: classify + plan must be negligible next to any solve.
    let kernel = fig9_kernel(Dims::new(4096, 4096), 1);
    let fw = Framework::new(hetero_high());
    c.bench_function("classify_kernel", |b| {
        b.iter(|| {
            let class = fw.classify(&kernel).unwrap();
            assert!(class.exec_pattern.is_canonical());
            class
        })
    });
    c.bench_function("plan_construction_4096", |b| {
        b.iter(|| {
            Plan::new(
                classify(kernel.contributing_set()).unwrap(),
                kernel.contributing_set(),
                kernel.dims(),
                ScheduleParams::new(0, 512),
            )
            .unwrap()
        })
    });
}

criterion_group!(
    benches,
    bench_tables,
    bench_fig07,
    bench_fig08,
    bench_fig09,
    bench_fig10,
    bench_fig12,
    bench_fig13,
    bench_classification
);
criterion_main!(benches);
