//! Wall-clock Criterion benchmarks of the *real* execution engines: the
//! sequential oracle, the chunk-per-thread wavefront engine at several
//! thread counts, every case-study kernel, and the Allison–Dix
//! bit-parallel LCS baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lddp_bench::random_seq;
use lddp_core::seq::solve_row_major;
use lddp_parallel::ParallelEngine;
use lddp_problems::lcs::{lcs_length, lcs_length_bitparallel, LcsKernel};
use lddp_problems::{CheckerboardKernel, DitherKernel, LevenshteinKernel, SmithWatermanKernel};

/// Thread scaling of the wavefront engine on an anti-diagonal problem.
fn engine_scaling(c: &mut Criterion) {
    let n = 768;
    let a = random_seq(n, 4, 1);
    let b = random_seq(n, 4, 2);
    let kernel = LevenshteinKernel::new(a, b);
    let mut group = c.benchmark_group("engine_scaling_levenshtein_768");
    group.throughput(Throughput::Elements(((n + 1) * (n + 1)) as u64));
    group.sample_size(10);
    group.bench_function("sequential", |bench| {
        bench.iter(|| solve_row_major(&kernel).unwrap())
    });
    for threads in [1usize, 2, 4, 8] {
        let engine = ParallelEngine::new(threads);
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |bench, _| bench.iter(|| engine.solve(&kernel).unwrap()),
        );
    }
    group.finish();
}

/// Per-problem throughput of the real engine (cells per second).
fn problem_throughput(c: &mut Criterion) {
    let engine = ParallelEngine::host();
    let mut group = c.benchmark_group("problem_throughput");
    group.sample_size(10);

    let n = 512;
    let lev = LevenshteinKernel::new(random_seq(n, 4, 3), random_seq(n, 4, 4));
    group.throughput(Throughput::Elements(((n + 1) * (n + 1)) as u64));
    group.bench_function("levenshtein_512", |b| {
        b.iter(|| engine.solve(&lev).unwrap())
    });

    let dit = DitherKernel::noise(n, n, 5);
    group.throughput(Throughput::Elements((n * n) as u64));
    group.bench_function("dithering_512", |b| b.iter(|| engine.solve(&dit).unwrap()));

    let che = CheckerboardKernel::random(n, n, 9, 6);
    group.throughput(Throughput::Elements((n * n) as u64));
    group.bench_function("checkerboard_512", |b| {
        b.iter(|| engine.solve(&che).unwrap())
    });

    let m = 256;
    let sw = SmithWatermanKernel::new(random_seq(m, 4, 7), random_seq(m, 4, 8));
    group.throughput(Throughput::Elements(((m + 1) * (m + 1)) as u64));
    group.bench_function("smith_waterman_256", |b| {
        b.iter(|| engine.solve(&sw).unwrap())
    });

    group.finish();
}

/// Generic quadratic LCS vs the bit-parallel specialized algorithm — the
/// introduction's "good generic vs excellent specific" trade-off, on
/// real hardware.
fn lcs_specialization(c: &mut Criterion) {
    let n = 2048;
    let a = random_seq(n, 4, 9);
    let b = random_seq(n, 4, 10);
    let mut group = c.benchmark_group("lcs_2048");
    group.throughput(Throughput::Elements((n * n) as u64));
    group.sample_size(10);
    group.bench_function("generic_two_row", |bench| bench.iter(|| lcs_length(&a, &b)));
    group.bench_function("bit_parallel_allison_dix", |bench| {
        bench.iter(|| lcs_length_bitparallel(&a, &b))
    });
    let kernel = LcsKernel::new(a.clone(), b.clone());
    let engine = ParallelEngine::host();
    group.bench_function("framework_threads", |bench| {
        bench.iter(|| engine.solve(&kernel).unwrap())
    });
    group.finish();
}

/// Naive row-major fill vs the cache-oblivious quadrant order (the
/// Chowdhury & Ramachandran baseline, paper reference [8]) — real cache
/// effects on the host.
fn cache_oblivious_baseline(c: &mut Criterion) {
    use lddp_parallel::CacheObliviousEngine;
    let n = 1024;
    let a = random_seq(n, 4, 11);
    let b = random_seq(n, 4, 12);
    let kernel = LevenshteinKernel::new(a, b);
    let mut group = c.benchmark_group("cache_oblivious_levenshtein_1024");
    group.throughput(Throughput::Elements(((n + 1) * (n + 1)) as u64));
    group.sample_size(10);
    group.bench_function("naive_row_major", |bench| {
        bench.iter(|| solve_row_major(&kernel).unwrap())
    });
    group.bench_function("quadrant_sequential", |bench| {
        let engine = CacheObliviousEngine::sequential();
        bench.iter(|| engine.solve(&kernel).unwrap())
    });
    group.bench_function("quadrant_forked", |bench| {
        let engine = CacheObliviousEngine::default();
        bench.iter(|| engine.solve(&kernel).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    engine_scaling,
    problem_throughput,
    lcs_specialization,
    cache_oblivious_baseline
);
criterion_main!(benches);
