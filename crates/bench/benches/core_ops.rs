//! Microbenchmarks of the framework's core machinery: layout index maps,
//! wavefront enumeration, per-wave transfer computation, and the plan
//! audit. These are the pieces executed once per wave — they must stay
//! O(1)-ish or the scheduling overhead would swamp the model.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lddp_core::cell::{ContributingSet, RepCell};
use lddp_core::grid::{Layout, LayoutKind};
use lddp_core::pattern::Pattern;
use lddp_core::schedule::{Plan, ScheduleParams};
use lddp_core::wavefront::{self, Dims};

fn layout_index_maps(c: &mut Criterion) {
    let dims = Dims::new(2048, 2048);
    let mut group = c.benchmark_group("layout_index");
    for (name, kind) in [
        ("row_major", LayoutKind::RowMajor),
        (
            "anti_diag_major",
            LayoutKind::WaveMajor(Pattern::AntiDiagonal),
        ),
        ("knight_major", LayoutKind::WaveMajor(Pattern::KnightMove)),
    ] {
        let layout = Layout::new(kind, dims);
        group.bench_function(BenchmarkId::new("forward", name), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for i in (0..2048).step_by(97) {
                    for j in (0..2048).step_by(89) {
                        acc = acc.wrapping_add(layout.index(black_box(i), black_box(j)));
                    }
                }
                acc
            })
        });
        group.bench_function(BenchmarkId::new("inverse", name), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for idx in (0..2048 * 2048).step_by(8191) {
                    let (i, j) = layout.coords(black_box(idx));
                    acc = acc.wrapping_add(i ^ j);
                }
                acc
            })
        });
    }
    group.finish();
}

fn wavefront_enumeration(c: &mut Criterion) {
    let dims = Dims::new(1024, 1024);
    let mut group = c.benchmark_group("wavefront_enumeration");
    for p in Pattern::ALL {
        group.bench_function(format!("{p}"), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for w in (0..p.num_waves(1024, 1024)).step_by(61) {
                    for (i, j) in wavefront::wave_cells(p, dims, w) {
                        acc = acc.wrapping_add(i * 31 + j);
                    }
                }
                acc
            })
        });
    }
    group.finish();
}

fn plan_transfers(c: &mut Criterion) {
    // Steady-state transfers must be O(1) per wave; a full-plan walk at
    // n = 4096 is the regression canary.
    let dims = Dims::new(4096, 4096);
    let mut group = c.benchmark_group("plan_transfers");
    group.sample_size(10);
    let ad = ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N]);
    let plan = Plan::new(
        Pattern::AntiDiagonal,
        ad,
        dims,
        ScheduleParams::new(512, 256),
    )
    .unwrap();
    group.bench_function("anti_diagonal_all_waves_4096", |b| {
        b.iter(|| {
            let mut cells = 0usize;
            for w in 0..plan.num_waves() {
                cells += plan.transfers(black_box(w)).len();
            }
            cells
        })
    });
    let km = ContributingSet::FULL;
    let plan = Plan::new(Pattern::KnightMove, km, dims, ScheduleParams::new(512, 256)).unwrap();
    group.bench_function("knight_move_all_waves_4096", |b| {
        b.iter(|| {
            let mut cells = 0usize;
            for w in 0..plan.num_waves() {
                cells += plan.transfers(black_box(w)).len();
            }
            cells
        })
    });
    group.bench_function("knight_move_audit_4096", |b| b.iter(|| plan.audit()));
    group.finish();
}

criterion_group!(
    benches,
    layout_index_maps,
    wavefront_enumeration,
    plan_transfers
);
criterion_main!(benches);
