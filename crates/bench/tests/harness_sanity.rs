//! Sanity tests of the reproduction harness: the figure generators must
//! produce well-formed series with the paper's qualitative orderings at
//! small (test-sized) inputs, and the table generators must match the
//! paper exactly.

use lddp_bench::figures;

#[test]
fn table1_has_fifteen_rows_matching_the_paper() {
    let rows = figures::table1_rows();
    assert_eq!(rows.len(), 15);
    // First and last rows as printed in the paper.
    assert_eq!(
        rows[0],
        (
            "N".to_string(),
            "N".to_string(),
            "N".to_string(),
            "Y".to_string(),
            "mInverted-L".to_string()
        )
    );
    assert_eq!(
        rows[14],
        (
            "Y".to_string(),
            "Y".to_string(),
            "Y".to_string(),
            "Y".to_string(),
            "Knight-Move".to_string()
        )
    );
    // Pattern multiset over the 15 rows: 5 Horizontal, 4 Knight-Move,
    // 2 Vertical, 2 Anti-diagonal, 1 Inverted-L, 1 mInverted-L.
    let count = |p: &str| rows.iter().filter(|r| r.4 == p).count();
    assert_eq!(count("Horizontal"), 5);
    assert_eq!(count("Vertical"), 2);
    assert_eq!(count("Anti-diagonal"), 2);
    assert_eq!(count("Knight-Move"), 4);
    assert_eq!(count("Inverted-L"), 1);
    assert_eq!(count("mInverted-L"), 1);
}

#[test]
fn table2_matches_the_paper() {
    let rows = figures::table2_rows();
    let expect = [
        ("Anti-diagonal", 1),
        ("Horizontal (case 1)", 1),
        ("Horizontal (case 2)", 2),
        ("Inverted-L", 1),
        ("Knight-move", 2),
    ];
    assert_eq!(rows.len(), expect.len());
    for ((name, ways), (ename, eways)) in rows.iter().zip(expect.iter()) {
        assert_eq!(name, ename);
        assert_eq!(ways, eways);
    }
}

#[test]
fn fig07_generator_produces_concave_curve() {
    let figs = figures::fig07(512);
    assert_eq!(figs.len(), 2);
    let switch_curve = &figs[0].series[0];
    assert!(switch_curve.points.len() >= 5);
    // Times positive and the curve not monotone increasing from zero
    // (there is a benefit to some t_switch).
    assert!(switch_curve.points.iter().all(|&(_, y)| y > 0.0));
    let first = switch_curve.points.first().unwrap().1;
    let min = switch_curve
        .points
        .iter()
        .map(|&(_, y)| y)
        .fold(f64::INFINITY, f64::min);
    assert!(min < first, "some t_switch must beat pure-GPU");
}

#[test]
fn fig08_generator_orders_h1_before_il_on_gpu() {
    let fig = figures::fig08(&[512, 1024]);
    assert_eq!(fig.series.len(), 4);
    let by_label = |label: &str| {
        fig.series
            .iter()
            .find(|s| s.label.contains(label))
            .unwrap_or_else(|| panic!("missing series {label}"))
    };
    let gpu_il = by_label("GPU-iL");
    let gpu_h1 = by_label("GPU-H1");
    for (a, b) in gpu_il.points.iter().zip(gpu_h1.points.iter()) {
        assert!(b.1 < a.1, "H1 must beat iL on the GPU at n={}", a.0);
    }
}

#[test]
fn cpu_gpu_framework_figures_are_well_formed() {
    for figs in [figures::fig09(&[512, 1024]), figures::fig13(&[512, 1024])] {
        assert_eq!(figs.len(), 2, "one figure per platform");
        for fig in figs {
            assert_eq!(fig.series.len(), 3);
            let cpu = &fig.series[0];
            let gpu = &fig.series[1];
            let fw = &fig.series[2];
            for ((c, g), f) in cpu
                .points
                .iter()
                .zip(gpu.points.iter())
                .zip(fw.points.iter())
            {
                assert!(c.1 > 0.0 && g.1 > 0.0 && f.1 > 0.0);
                // The tuned framework never loses to both baselines.
                assert!(
                    f.1 <= c.1.max(g.1) * 1.001,
                    "{}: framework {} vs cpu {} gpu {}",
                    fig.title,
                    f.1,
                    c.1,
                    g.1
                );
            }
        }
    }
}

#[test]
fn pipeline_ablation_shows_positive_benefit() {
    let fig = figures::ablation_pipeline(&[512, 1024]);
    let on = &fig.series[0];
    let off = &fig.series[1];
    for (a, b) in on.points.iter().zip(off.points.iter()) {
        assert!(b.1 > a.1, "serialized must be slower at n={}", a.0);
    }
}

#[test]
fn layout_ablation_shows_coalescing_benefit() {
    let fig = figures::ablation_layout(&[512, 1024]);
    let coalesced = &fig.series[0];
    let strided = &fig.series[1];
    for (a, b) in coalesced.points.iter().zip(strided.points.iter()) {
        assert!(
            b.1 > a.1 * 1.2,
            "strided must be clearly slower at n={}",
            a.0
        );
    }
}
