//! Minimal hand-rolled SVG line charts, so every regenerated exhibit
//! also lands as an image under `results/` — no plotting dependency.

use crate::Figure;
use std::fmt::Write as _;

const WIDTH: f64 = 720.0;
const HEIGHT: f64 = 440.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 160.0;
const MARGIN_T: f64 = 44.0;
const MARGIN_B: f64 = 52.0;

/// Color cycle (color-blind-safe-ish).
const COLORS: [&str; 6] = [
    "#2563eb", "#dc2626", "#059669", "#d97706", "#7c3aed", "#0891b2",
];

/// Renders the figure as an SVG line chart (log₂ x-axis when the x
/// values span more than one octave, linear otherwise; linear y).
pub fn render(fig: &Figure) -> String {
    let xs: Vec<f64> = fig
        .series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(x, _)| x))
        .collect();
    let ys: Vec<f64> = fig
        .series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(_, y)| y))
        .collect();
    if xs.is_empty() {
        return String::from("<svg xmlns=\"http://www.w3.org/2000/svg\"/>");
    }
    let (x_min, x_max) = bounds(&xs);
    let (_, y_max) = bounds(&ys);
    let y_min = 0.0;
    let y_max = if y_max <= y_min {
        y_min + 1.0
    } else {
        y_max * 1.05
    };
    let log_x = x_min > 0.0 && x_max / x_min >= 2.0;
    let fx = |x: f64| -> f64 {
        let t = if log_x {
            (x.ln() - x_min.ln()) / (x_max.ln() - x_min.ln()).max(f64::MIN_POSITIVE)
        } else if x_max > x_min {
            (x - x_min) / (x_max - x_min)
        } else {
            0.5
        };
        MARGIN_L + t * (WIDTH - MARGIN_L - MARGIN_R)
    };
    let fy = |y: f64| -> f64 {
        let t = (y - y_min) / (y_max - y_min);
        HEIGHT - MARGIN_B - t * (HEIGHT - MARGIN_T - MARGIN_B)
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{HEIGHT}\" \
         viewBox=\"0 0 {WIDTH} {HEIGHT}\" font-family=\"sans-serif\" font-size=\"12\">"
    );
    let _ = writeln!(
        out,
        "<rect width=\"{WIDTH}\" height=\"{HEIGHT}\" fill=\"white\"/>"
    );
    let _ = writeln!(
        out,
        "<text x=\"{}\" y=\"24\" font-size=\"14\" font-weight=\"bold\">{}</text>",
        MARGIN_L,
        escape(&fig.title)
    );

    // Axes.
    let _ = writeln!(
        out,
        "<line x1=\"{MARGIN_L}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"#111\"/>",
        HEIGHT - MARGIN_B,
        WIDTH - MARGIN_R,
        HEIGHT - MARGIN_B
    );
    let _ = writeln!(
        out,
        "<line x1=\"{MARGIN_L}\" y1=\"{MARGIN_T}\" x2=\"{MARGIN_L}\" y2=\"{}\" stroke=\"#111\"/>",
        HEIGHT - MARGIN_B
    );
    // Y grid + labels (5 ticks).
    for k in 0..=4 {
        let y = y_min + (y_max - y_min) * k as f64 / 4.0;
        let py = fy(y);
        let _ = writeln!(
            out,
            "<line x1=\"{MARGIN_L}\" y1=\"{py}\" x2=\"{}\" y2=\"{py}\" stroke=\"#ddd\"/>",
            WIDTH - MARGIN_R
        );
        let _ = writeln!(
            out,
            "<text x=\"{}\" y=\"{}\" text-anchor=\"end\">{}</text>",
            MARGIN_L - 6.0,
            py + 4.0,
            fmt_num(y)
        );
    }
    // X labels at the actual sample positions of the first series.
    if let Some(first) = fig.series.first() {
        for &(x, _) in &first.points {
            let px = fx(x);
            let _ = writeln!(
                out,
                "<text x=\"{px}\" y=\"{}\" text-anchor=\"middle\">{}</text>",
                HEIGHT - MARGIN_B + 18.0,
                fmt_num(x)
            );
        }
    }
    let _ = writeln!(
        out,
        "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\">{}</text>",
        (MARGIN_L + WIDTH - MARGIN_R) / 2.0,
        HEIGHT - 12.0,
        escape(&fig.x_label)
    );

    // Series.
    for (idx, s) in fig.series.iter().enumerate() {
        let color = COLORS[idx % COLORS.len()];
        let mut path = String::new();
        for (k, &(x, y)) in s.points.iter().enumerate() {
            let _ = write!(
                path,
                "{}{:.2},{:.2} ",
                if k == 0 { "M" } else { "L" },
                fx(x),
                fy(y)
            );
        }
        let _ = writeln!(
            out,
            "<path d=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"2\"/>",
            path.trim_end()
        );
        for &(x, y) in &s.points {
            let _ = writeln!(
                out,
                "<circle cx=\"{:.2}\" cy=\"{:.2}\" r=\"3\" fill=\"{color}\"/>",
                fx(x),
                fy(y)
            );
        }
        // Legend.
        let ly = MARGIN_T + 18.0 * idx as f64;
        let lx = WIDTH - MARGIN_R + 12.0;
        let _ = writeln!(
            out,
            "<line x1=\"{lx}\" y1=\"{ly}\" x2=\"{}\" y2=\"{ly}\" stroke=\"{color}\" stroke-width=\"2\"/>",
            lx + 18.0
        );
        let _ = writeln!(
            out,
            "<text x=\"{}\" y=\"{}\">{}</text>",
            lx + 24.0,
            ly + 4.0,
            escape(&s.label)
        );
    }
    let _ = writeln!(out, "</svg>");
    out
}

fn bounds(v: &[f64]) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &x in v {
        min = min.min(x);
        max = max.max(x);
    }
    (min, max)
}

fn fmt_num(x: f64) -> String {
    if x >= 1000.0 && x.fract() == 0.0 {
        if x >= 1048576.0 && (x as u64).is_multiple_of(1024) {
            format!("{}k", x as u64 / 1024)
        } else {
            format!("{}", x as u64)
        }
    } else if x.fract() == 0.0 {
        format!("{}", x as i64)
    } else {
        format!("{x:.2}")
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Series;

    fn sample_fig() -> Figure {
        let mut fig = Figure::new("Test & demo", "n");
        let mut a = Series::new("CPU(ms)");
        a.push(1024.0, 2.0);
        a.push(2048.0, 5.0);
        a.push(4096.0, 15.0);
        let mut b = Series::new("GPU(ms)");
        b.push(1024.0, 3.0);
        b.push(2048.0, 5.5);
        b.push(4096.0, 12.0);
        fig.series = vec![a, b];
        fig
    }

    #[test]
    fn renders_well_formed_svg() {
        let svg = render(&sample_fig());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<path").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 6);
        assert!(svg.contains("CPU(ms)"));
        assert!(svg.contains("Test &amp; demo"), "title must be escaped");
    }

    #[test]
    fn empty_figure_renders_empty_svg() {
        let fig = Figure::new("empty", "x");
        let svg = render(&fig);
        assert!(svg.contains("<svg"));
    }

    #[test]
    fn single_point_series_does_not_panic() {
        let mut fig = Figure::new("one", "x");
        let mut s = Series::new("only");
        s.push(5.0, 1.0);
        fig.series = vec![s];
        let svg = render(&fig);
        assert!(svg.contains("<circle"));
    }

    #[test]
    fn coordinates_stay_inside_the_canvas() {
        let svg = render(&sample_fig());
        for part in svg.split("cx=\"").skip(1) {
            let x: f64 = part.split('"').next().unwrap().parse().unwrap();
            assert!((0.0..=WIDTH).contains(&x));
        }
        for part in svg.split("cy=\"").skip(1) {
            let y: f64 = part.split('"').next().unwrap().parse().unwrap();
            assert!((0.0..=HEIGHT).contains(&y));
        }
    }
}
