//! Figure generators: one function per exhibit of the paper's
//! evaluation. Each returns [`Figure`]s ready to print/CSV; the `bin/`
//! wrappers and `all_figures` call these.

use crate::{random_seq, Figure, Series};
use hetero_sim::exec::{run_cpu_as, run_gpu_as, run_hetero, ExecOptions};
use hetero_sim::platform::{hetero_high, hetero_low, xeon_phi_like, Platform};
use lddp::Framework;
use lddp_core::cell::{ContributingSet, RepCell};
use lddp_core::kernel::{ExecTier, Kernel};
use lddp_core::pattern::Pattern;
use lddp_core::schedule::{Plan, ScheduleParams};
use lddp_core::wavefront::Dims;
use lddp_problems::lcs::{lcs_length, lcs_length_bitparallel, LcsKernel};
use lddp_problems::levenshtein::LevenshteinKernel;
use lddp_problems::synthetic::{fig8_kernel, fig9_kernel};
use lddp_problems::{
    CheckerboardKernel, DitherKernel, DtwKernel, NeedlemanWunschKernel, SmithWatermanKernel,
};
use std::time::Instant;

/// Both platforms, in the paper's order.
pub fn platforms() -> [Platform; 2] {
    [hetero_high(), hetero_low()]
}

/// CPU/GPU/Framework triple for one kernel on one platform.
fn triple<K: Kernel>(kernel: &K, platform: &Platform, io: (usize, usize)) -> (f64, f64, f64) {
    let fw = Framework::new(platform.clone()).with_io_bytes(io.0, io.1);
    let cpu = fw.cpu_baseline(kernel).expect("cpu baseline");
    let gpu = fw.gpu_baseline(kernel).expect("gpu baseline");
    let tuned = fw.tune(kernel).expect("tuning");
    let het = fw
        .estimate(kernel, tuned.params)
        .expect("framework estimate");
    (cpu * 1e3, gpu * 1e3, het * 1e3)
}

fn cpu_gpu_framework_figure<K: Kernel>(
    title: &str,
    sizes: &[usize],
    platform: &Platform,
    make: impl Fn(usize) -> (K, (usize, usize)),
) -> Figure {
    let mut fig = Figure::new(format!("{title} — {}", platform.name), "n");
    let mut cpu = Series::new("CPU(ms)");
    let mut gpu = Series::new("GPU(ms)");
    let mut het = Series::new("Framework(ms)");
    for &n in sizes {
        let (kernel, io) = make(n);
        let (c, g, h) = triple(&kernel, platform, io);
        cpu.push(n as f64, c);
        gpu.push(n as f64, g);
        het.push(n as f64, h);
    }
    fig.series = vec![cpu, gpu, het];
    fig
}

/// Fig 7: heterogeneous time vs `t_switch` (LCS, `t_share = 0`,
/// Hetero-High), plus the follow-up `t_share` sweep at the winner.
pub fn fig07(n: usize) -> Vec<Figure> {
    let a = random_seq(n, 4, 1);
    let b = random_seq(n, 4, 2);
    let kernel = LcsKernel::new(a, b);
    let fw = Framework::new(hetero_high());
    let result = fw.tune(&kernel).expect("tune");

    let mut switch_fig = Figure::new(
        format!("Fig 7 — heterogeneous time vs t_switch (LCS {n}x{n}, t_share=0, Hetero-High)"),
        "t_switch",
    );
    let mut s = Series::new("time(ms)");
    for p in &result.t_switch_curve {
        s.push(p.value as f64, p.time * 1e3);
    }
    switch_fig.series.push(s);

    let mut share_fig = Figure::new(
        format!(
            "Fig 7 follow-up — time vs t_share (t_switch={}, Hetero-High)",
            result.params.t_switch
        ),
        "t_share",
    );
    let mut s = Series::new("time(ms)");
    for p in &result.t_share_curve {
        s.push(p.value as f64, p.time * 1e3);
    }
    share_fig.series.push(s);
    vec![switch_fig, share_fig]
}

/// Fig 8: the `{NW}` problem (`f = max(cell, nw) + c`) solved under the
/// Inverted-L schedule vs Horizontal case 1, on CPU and GPU.
pub fn fig08(sizes: &[usize]) -> Figure {
    let mut fig = Figure::new(
        "Fig 8 — Inverted-L (iL) vs Horizontal case-1 (H1) on CPU and GPU (Hetero-High)",
        "n",
    );
    let mut cpu_il = Series::new("CPU-iL(ms)");
    let mut cpu_h1 = Series::new("CPU-H1(ms)");
    let mut gpu_il = Series::new("GPU-iL(ms)");
    let mut gpu_h1 = Series::new("GPU-H1(ms)");
    let platform = hetero_high();
    let opts = ExecOptions::default();
    for &n in sizes {
        let kernel = fig8_kernel(Dims::new(n, n), 1);
        cpu_il.push(
            n as f64,
            run_cpu_as(&kernel, Pattern::InvertedL, &platform, &opts)
                .unwrap()
                .total_s
                * 1e3,
        );
        cpu_h1.push(
            n as f64,
            run_cpu_as(&kernel, Pattern::Horizontal, &platform, &opts)
                .unwrap()
                .total_s
                * 1e3,
        );
        gpu_il.push(
            n as f64,
            run_gpu_as(&kernel, Pattern::InvertedL, &platform, &opts)
                .unwrap()
                .total_s
                * 1e3,
        );
        gpu_h1.push(
            n as f64,
            run_gpu_as(&kernel, Pattern::Horizontal, &platform, &opts)
                .unwrap()
                .total_s
                * 1e3,
        );
    }
    fig.series = vec![cpu_il, cpu_h1, gpu_il, gpu_h1];
    fig
}

/// Fig 9: horizontal case 1 (`f = min(nw, n) + c`) across table sizes on
/// both platforms.
pub fn fig09(sizes: &[usize]) -> Vec<Figure> {
    platforms()
        .iter()
        .map(|platform| {
            cpu_gpu_framework_figure(
                "Fig 9 — Horizontal case-1 synthetic kernel",
                sizes,
                platform,
                |n| (fig9_kernel(Dims::new(n, n), 1), (0, 0)),
            )
        })
        .collect()
}

/// Fig 10: Levenshtein distance (anti-diagonal) across sizes on both
/// platforms.
pub fn fig10(sizes: &[usize]) -> Vec<Figure> {
    platforms()
        .iter()
        .map(|platform| {
            cpu_gpu_framework_figure("Fig 10 — Levenshtein distance", sizes, platform, |n| {
                let a = random_seq(n, 4, 11);
                let b = random_seq(n, 4, 13);
                // Upload both strings; download the final distance.
                (LevenshteinKernel::new(a, b), (2 * n, 8))
            })
        })
        .collect()
}

/// Fig 12: Floyd–Steinberg dithering (knight-move) across image sizes on
/// both platforms.
pub fn fig12(sizes: &[usize]) -> Vec<Figure> {
    platforms()
        .iter()
        .map(|platform| {
            cpu_gpu_framework_figure(
                "Fig 12 — Floyd-Steinberg dithering",
                sizes,
                platform,
                |n| {
                    let k = DitherKernel::noise(n, n, 5);
                    let io = (k.input_bytes(), k.input_bytes());
                    (k, io)
                },
            )
        })
        .collect()
}

/// Fig 13: checkerboard shortest path (horizontal case 2) across sizes
/// on both platforms.
pub fn fig13(sizes: &[usize]) -> Vec<Figure> {
    platforms()
        .iter()
        .map(|platform| {
            cpu_gpu_framework_figure(
                "Fig 13 — checkerboard shortest path",
                sizes,
                platform,
                |n| {
                    let k = CheckerboardKernel::random(n, n, 9, 17);
                    let io = (k.input_bytes(), 0);
                    (k, io)
                },
            )
        })
        .collect()
}

/// Ablation (§IV-C): stream-pipelined vs serialized one-way transfers
/// for horizontal case 1.
pub fn ablation_pipeline(sizes: &[usize]) -> Figure {
    let mut fig = Figure::new(
        "Ablation — pipelined vs serialized one-way transfers (Horizontal case-1, Hetero-High)",
        "n",
    );
    let mut on = Series::new("pipelined(ms)");
    let mut off = Series::new("serialized(ms)");
    let platform = hetero_high();
    for &n in sizes {
        let kernel = fig9_kernel(Dims::new(n, n), 1);
        let set = kernel.contributing_set();
        let plan = Plan::new(
            Pattern::Horizontal,
            set,
            Dims::new(n, n),
            ScheduleParams::new(0, (n / 8).max(1)),
        )
        .unwrap();
        let mut opts = ExecOptions::default();
        on.push(
            n as f64,
            run_hetero(&kernel, &plan, &platform, &opts)
                .unwrap()
                .total_s
                * 1e3,
        );
        opts.pipeline = false;
        off.push(
            n as f64,
            run_hetero(&kernel, &plan, &platform, &opts)
                .unwrap()
                .total_s
                * 1e3,
        );
    }
    fig.series = vec![on, off];
    fig
}

/// Ablation (§IV-B): coalescing-friendly wave-major layout vs naive
/// row-major storage for the anti-diagonal pattern on the GPU.
pub fn ablation_layout(sizes: &[usize]) -> Figure {
    let mut fig = Figure::new(
        "Ablation — wave-major (coalesced) vs row-major (strided) GPU layout (anti-diagonal, Hetero-High)",
        "n",
    );
    let mut coalesced = Series::new("wave-major(ms)");
    let mut strided = Series::new("row-major(ms)");
    let platform = hetero_high();
    for &n in sizes {
        let a = random_seq(n, 4, 21);
        let b = random_seq(n, 4, 22);
        let kernel = LevenshteinKernel::new(a, b);
        let opts = ExecOptions::default();
        coalesced.push(
            n as f64,
            run_gpu_as(&kernel, Pattern::AntiDiagonal, &platform, &opts)
                .unwrap()
                .total_s
                * 1e3,
        );
        let opts = ExecOptions {
            layout: Some(lddp_core::grid::LayoutKind::RowMajor),
            ..Default::default()
        };
        strided.push(
            n as f64,
            run_gpu_as(&kernel, Pattern::AntiDiagonal, &platform, &opts)
                .unwrap()
                .total_s
                * 1e3,
        );
    }
    fig.series = vec![coalesced, strided];
    fig
}

/// Ablation (§I): the generic framework's real CPU engine vs the
/// Allison–Dix bit-parallel LCS — problem-independent good performance
/// vs problem-specific excellent performance. Wall-clock, measured.
pub fn ablation_bitlcs(sizes: &[usize]) -> Figure {
    let mut fig = Figure::new(
        "Ablation — generic DP (real threads) vs Allison-Dix bit-parallel LCS (wall clock)",
        "n",
    );
    let mut generic = Series::new("generic-dp(ms)");
    let mut bitpar = Series::new("bit-parallel(ms)");
    let engine = lddp_parallel::ParallelEngine::host();
    for &n in sizes {
        let a = random_seq(n, 4, 31);
        let b = random_seq(n, 4, 32);
        let kernel = LcsKernel::new(a.clone(), b.clone());
        let t0 = Instant::now();
        let grid = engine.solve(&kernel).expect("solve");
        let generic_ms = t0.elapsed().as_secs_f64() * 1e3;
        let expected = kernel.length_from(&grid);
        let t0 = Instant::now();
        let got = lcs_length_bitparallel(&a, &b);
        let bitpar_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(got, expected, "engines disagree at n={n}");
        assert_eq!(got, lcs_length(&a, &b));
        generic.push(n as f64, generic_ms);
        bitpar.push(n as f64, bitpar_ms);
    }
    fig.series = vec![generic, bitpar];
    fig
}

/// Ablation (bulk execution): per-cell scalar dispatch vs bulk
/// [`lddp_core::kernel::WaveKernel`] runs, and spawn-per-solve vs the
/// persistent worker pool, wall-clock on LCS. The scalar and bulk
/// columns share one pooled engine (so the delta is purely the
/// per-cell dispatch); the spawn column pays fresh worker threads on
/// every solve — the engine's pre-pool cost model.
pub fn ablation_bulk(sizes: &[usize]) -> Figure {
    let mut fig = Figure::new(
        "Ablation — scalar per-cell vs bulk wave runs, spawned vs pooled workers (LCS, wall clock)",
        "n",
    );
    let mut scalar = Series::new("scalar-pooled(ms)");
    let mut bulk = Series::new("bulk-pooled(ms)");
    let mut spawn = Series::new("bulk-spawned(ms)");
    let pooled = lddp_parallel::ParallelEngine::host();
    let scalar_engine = pooled.clone().with_bulk_enabled(false);
    let best_ms = |f: &mut dyn FnMut()| {
        let mut best = f64::INFINITY;
        for _ in 0..2 {
            let t0 = Instant::now();
            f();
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        best
    };
    for &n in sizes {
        let a = random_seq(n, 4, 33);
        let b = random_seq(n, 4, 34);
        let kernel = LcsKernel::new(a, b);
        let reference = pooled.solve(&kernel).expect("solve");
        let got = scalar_engine.solve(&kernel).expect("solve");
        assert_eq!(
            got.to_row_major(),
            reference.to_row_major(),
            "bulk and scalar paths diverged at n={n}"
        );
        let scalar_ms = best_ms(&mut || {
            scalar_engine.solve(&kernel).expect("solve");
        });
        let bulk_ms = best_ms(&mut || {
            pooled.solve(&kernel).expect("solve");
        });
        let spawn_ms = best_ms(&mut || {
            lddp_parallel::ParallelEngine::new(pooled.threads())
                .solve(&kernel)
                .expect("solve");
        });
        let cells = ((n + 1) * (n + 1)) as f64;
        println!(
            "n={n}: scalar {:.1} Mcells/s, bulk {:.1} Mcells/s ({:.2}x), spawn-per-solve {:.2}x slower than pooled",
            cells / scalar_ms / 1e3,
            cells / bulk_ms / 1e3,
            scalar_ms / bulk_ms,
            spawn_ms / bulk_ms,
        );
        scalar.push(n as f64, scalar_ms);
        bulk.push(n as f64, bulk_ms);
        spawn.push(n as f64, spawn_ms);
    }
    fig.series = vec![scalar, bulk, spawn];
    fig
}

/// One execution-tier figure: scalar vs bulk vs SIMD throughput for a
/// single problem family, every tier's table checked bit-identical to
/// the scalar one before timing.
fn tier_figure<K: Kernel>(
    problem: &str,
    sizes: &[usize],
    pooled: &lddp_parallel::ParallelEngine,
    make: &dyn Fn(usize) -> K,
) -> Figure {
    let scalar_engine = pooled.clone().with_tier(Some(ExecTier::Scalar));
    let bulk_engine = pooled.clone().with_tier(Some(ExecTier::Bulk));
    let simd_engine = pooled.clone().with_tier(Some(ExecTier::Simd));
    let mut fig = Figure::new(
        format!("Ablation — execution tiers on {problem} (wall clock)"),
        "n",
    );
    let mut s_scalar = Series::new("scalar(Mcells/s)");
    let mut s_bulk = Series::new("bulk(Mcells/s)");
    let mut s_simd = Series::new("simd(Mcells/s)");
    for &n in sizes {
        let kernel = make(n);
        let d = kernel.dims();
        let cells = (d.rows * d.cols) as f64;
        let reference = scalar_engine.solve(&kernel).expect("solve");
        for engine in [&bulk_engine, &simd_engine] {
            let got = engine.solve(&kernel).expect("solve");
            assert_eq!(
                got.to_row_major(),
                reference.to_row_major(),
                "{problem}: tiers diverged at n={n}"
            );
        }
        let best_ms = |engine: &lddp_parallel::ParallelEngine| {
            let mut best = f64::INFINITY;
            for _ in 0..2 {
                let t0 = Instant::now();
                engine.solve(&kernel).expect("solve");
                best = best.min(t0.elapsed().as_secs_f64() * 1e3);
            }
            best
        };
        let scalar_ms = best_ms(&scalar_engine);
        let bulk_ms = best_ms(&bulk_engine);
        let simd_ms = best_ms(&simd_engine);
        println!(
            "{problem} n={n}: scalar {:.1}, bulk {:.1}, simd {:.1} Mcells/s (simd {:.2}x over bulk)",
            cells / scalar_ms / 1e3,
            cells / bulk_ms / 1e3,
            cells / simd_ms / 1e3,
            bulk_ms / simd_ms,
        );
        s_scalar.push(n as f64, cells / scalar_ms / 1e3);
        s_bulk.push(n as f64, cells / bulk_ms / 1e3);
        s_simd.push(n as f64, cells / simd_ms / 1e3);
    }
    fig.series = vec![s_scalar, s_bulk, s_simd];
    fig
}

/// Ablation (execution tiers): scalar per-cell vs bulk wave runs vs
/// SIMD lanes across every wave-kernel problem, plus the Allison–Dix
/// bit-parallel row kernel on LCS. All grid tiers share one pooled
/// engine with the tier pinned, so the deltas are purely the inner
/// loop. On hosts without a vector unit the engine downgrades the
/// `Simd` pin and that column reads as bulk.
pub fn ablation_simd(sizes: &[usize]) -> Vec<Figure> {
    let pooled = lddp_parallel::ParallelEngine::host();
    println!(
        "simd backend: {} ({} threads)",
        lddp_core::kernel::simd_backend(),
        pooled.threads()
    );
    let mut figs = vec![
        tier_figure("lcs", sizes, &pooled, &|n| {
            LcsKernel::new(random_seq(n, 4, 41), random_seq(n, 4, 42))
        }),
        tier_figure("levenshtein", sizes, &pooled, &|n| {
            LevenshteinKernel::new(random_seq(n, 26, 43), random_seq(n, 26, 44))
        }),
        tier_figure("needleman-wunsch", sizes, &pooled, &|n| {
            NeedlemanWunschKernel::new(random_seq(n, 4, 45), random_seq(n, 4, 46))
        }),
        tier_figure("smith-waterman", sizes, &pooled, &|n| {
            SmithWatermanKernel::new(random_seq(n, 4, 47), random_seq(n, 4, 48))
        }),
        tier_figure("dtw", sizes, &pooled, &|n| DtwKernel::random_walk(n, n, 49)),
    ];
    // The bit-parallel LCS kernel skips the grid entirely, so it rides
    // on the LCS figure as a fourth series rather than a tier column.
    let mut bitpar = Series::new("bit-parallel(Mcells/s)");
    for &n in sizes {
        let a = random_seq(n, 4, 41);
        let b = random_seq(n, 4, 42);
        let expected = lcs_length(&a, &b);
        let mut best = f64::INFINITY;
        for _ in 0..2 {
            let t0 = Instant::now();
            let got = lcs_length_bitparallel(&a, &b);
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
            assert_eq!(got, expected, "bit-parallel diverged at n={n}");
        }
        let cells = ((n + 1) * (n + 1)) as f64;
        println!("lcs n={n}: bit-parallel {:.1} Mcells/s", cells / best / 1e3);
        bitpar.push(n as f64, cells / best / 1e3);
    }
    figs[0].series.push(bitpar);
    figs
}

/// Extension (§VII): the same Fig 9 experiment on a hypothetical
/// Xeon-Phi-like accelerator.
pub fn extension_phi(sizes: &[usize]) -> Figure {
    cpu_gpu_framework_figure(
        "Extension — Horizontal case-1 on a Phi-like accelerator (paper §VII outlook)",
        sizes,
        &xeon_phi_like(),
        |n| (fig9_kernel(Dims::new(n, n), 1), (0, 0)),
    )
}

/// Table I rendered as CSV-able rows.
pub fn table1_rows() -> Vec<(String, String, String, String, String)> {
    lddp_core::pattern::table_one()
        .into_iter()
        .map(|row| {
            let yn = |c: RepCell| if row.set.contains(c) { "Y" } else { "N" }.to_string();
            (
                yn(RepCell::W),
                yn(RepCell::Nw),
                yn(RepCell::N),
                yn(RepCell::Ne),
                row.pattern.to_string(),
            )
        })
        .collect()
}

/// Table II rendered as rows: (pattern/case, ways).
pub fn table2_rows() -> Vec<(String, usize)> {
    use lddp_core::schedule::transfer_need;
    let h1 = ContributingSet::new(&[RepCell::Nw, RepCell::N]);
    let h2 = ContributingSet::new(&[RepCell::Nw, RepCell::N, RepCell::Ne]);
    let ad = ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N]);
    let il = ContributingSet::new(&[RepCell::Nw]);
    let km = ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N, RepCell::Ne]);
    vec![
        (
            "Anti-diagonal".to_string(),
            transfer_need(Pattern::AntiDiagonal, ad).unwrap().ways(),
        ),
        (
            "Horizontal (case 1)".to_string(),
            transfer_need(Pattern::Horizontal, h1).unwrap().ways(),
        ),
        (
            "Horizontal (case 2)".to_string(),
            transfer_need(Pattern::Horizontal, h2).unwrap().ways(),
        ),
        (
            "Inverted-L".to_string(),
            transfer_need(Pattern::InvertedL, il).unwrap().ways(),
        ),
        (
            "Knight-move".to_string(),
            transfer_need(Pattern::KnightMove, km).unwrap().ways(),
        ),
    ]
}
