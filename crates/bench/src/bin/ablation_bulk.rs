//! Ablation: bulk wave-slice kernels vs per-cell scalar dispatch, and
//! the persistent worker pool vs spawn-per-solve, on real threads.
use lddp_bench::figures::ablation_bulk;
use lddp_bench::sizes_from_args;

fn main() {
    let sizes = sizes_from_args(&[512, 1024, 2048, 4096]);
    ablation_bulk(&sizes).emit("ablation_bulk");
}
