//! Extension: the paper's §VII outlook — the framework on a
//! Xeon-Phi-like accelerator model.
use lddp_bench::figures::extension_phi;
use lddp_bench::sizes_from_args;

fn main() {
    let sizes = sizes_from_args(&[1024, 2048, 4096, 8192]);
    extension_phi(&sizes).emit("extension_phi");
}
