//! Regenerates Fig 8: inverted-L vs horizontal case-1 on CPU and GPU.
use lddp_bench::figures::fig08;
use lddp_bench::sizes_from_args;

fn main() {
    let sizes = sizes_from_args(&[1024, 2048, 4096, 8192]);
    fig08(&sizes).emit("fig08");
}
