//! Regenerates every table and figure of the paper in one run.
//! `cargo run --release -p lddp-bench --bin all_figures`
use lddp_bench::figures::*;

fn main() {
    println!("Regenerating all exhibits (results/ gets one CSV each)…\n");

    println!("== Table I — contributing sets and corresponding patterns");
    for (w, nw, n, ne, pattern) in table1_rows() {
        println!("  {w} {nw} {n} {ne}  {pattern}");
    }
    println!();
    println!("== Table II — patterns and data transfer need");
    for (pattern, ways) in table2_rows() {
        println!("  {pattern:<22} {ways} way");
    }
    println!();

    for (i, fig) in fig07(4096).into_iter().enumerate() {
        fig.emit(&format!(
            "fig07_{}",
            if i == 0 { "t_switch" } else { "t_share" }
        ));
    }
    fig08(&[1024, 2048, 4096, 8192]).emit("fig08");
    let sizes = [1024, 2048, 4096, 8192, 16384];
    for (fig, name) in fig09(&sizes).into_iter().zip(["fig09_high", "fig09_low"]) {
        fig.emit(name);
    }
    for (fig, name) in fig10(&sizes).into_iter().zip(["fig10_high", "fig10_low"]) {
        fig.emit(name);
    }
    let img = [512, 1024, 2048, 4096, 8192];
    for (fig, name) in fig12(&img).into_iter().zip(["fig12_high", "fig12_low"]) {
        fig.emit(name);
    }
    for (fig, name) in fig13(&sizes).into_iter().zip(["fig13_high", "fig13_low"]) {
        fig.emit(name);
    }
    ablation_pipeline(&[1024, 2048, 4096, 8192]).emit("ablation_pipeline");
    ablation_layout(&[1024, 2048, 4096, 8192]).emit("ablation_layout");
    ablation_bitlcs(&[512, 1024, 2048, 4096]).emit("ablation_bitlcs");
    ablation_bulk(&[512, 1024, 2048, 4096]).emit("ablation_bulk");
    extension_phi(&[1024, 2048, 4096, 8192]).emit("extension_phi");
    println!(
        "Also available (run individually): ablation_threading, ablation_partition,\n\
         ablation_lockstep, extension_multi, extension_balance, verify_shapes.\n\
         done."
    );
}
