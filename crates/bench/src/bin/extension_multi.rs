//! Extension experiment (§VII): does adding a *second* accelerator help?
//! Compares the tuned two-device framework (CPU + K20) against a
//! three-device CPU + K20 + Phi split on the horizontal case-1 kernel.

use hetero_sim::multi::{run_multi, MultiPlatform};
use lddp::platforms::hetero_high;
use lddp::Framework;
use lddp_bench::{sizes_from_args, Figure, Series};
use lddp_core::kernel::Kernel;
use lddp_core::multi::MultiPlan;
use lddp_core::pattern::Pattern;
use lddp_core::wavefront::Dims;
use lddp_problems::synthetic::fig9_kernel;

fn main() {
    let sizes = sizes_from_args(&[1024, 2048, 4096, 8192, 16384]);
    let mut fig = Figure::new(
        "Extension — two devices (CPU+K20) vs three (CPU+K20+Phi), horizontal case-1",
        "n",
    );
    // Three comparable configurations:
    // - the tuned standard framework (2 devices, pipelined one-way
    //   transfers — the paper's §IV-C fast path);
    // - 2 devices under the conservative multi executor (serialized
    //   pinned copies, no pipelining);
    // - 3 devices under the same multi executor.
    // The honest 3-vs-2 comparison is between the last two (same copy
    // model); the first shows what pipelining buys.
    let mut pipelined2 = Series::new("2dev-pipelined(ms)");
    let mut serial2 = Series::new("2dev-serialized(ms)");
    let mut serial3 = Series::new("3dev-serialized(ms)");
    let platform3 = MultiPlatform::high_plus_phi();
    let platform2 = {
        let mut p = MultiPlatform::high_plus_phi();
        p.accels.truncate(1); // CPU + K20 only
        p.name = "Hetero-High (multi executor)".into();
        p
    };

    for &n in &sizes {
        let kernel = fig9_kernel(Dims::new(n, n), 1);
        let set = kernel.contributing_set();
        let dims = kernel.dims();

        let fw = Framework::new(hetero_high());
        let tuned = fw.tune(&kernel).expect("tune");
        pipelined2.push(n as f64, fw.estimate(&kernel, tuned.params).unwrap() * 1e3);

        let steps: Vec<usize> = (0..=8).map(|k| k * n / 8).collect();

        // Best 2-device split under the serialized multi executor.
        let mut best2 = f64::INFINITY;
        for &b in &steps {
            let plan = MultiPlan::new(Pattern::Horizontal, set, dims, 0, vec![b]).unwrap();
            best2 = best2.min(
                run_multi(&kernel, &plan, &platform2, false)
                    .unwrap()
                    .total_s,
            );
        }
        serial2.push(n as f64, best2 * 1e3);

        // Best 3-device split (includes all 2-device splits as the
        // degenerate b1 = n / b0 = 0 cases, so best3 ≤ best2).
        let mut best3 = f64::INFINITY;
        let mut best_bounds = (0, 0);
        for &b0 in &steps {
            for &b1 in steps.iter().filter(|&&b| b >= b0) {
                let plan = MultiPlan::new(Pattern::Horizontal, set, dims, 0, vec![b0, b1]).unwrap();
                let t = run_multi(&kernel, &plan, &platform3, false)
                    .unwrap()
                    .total_s;
                if t < best3 {
                    best3 = t;
                    best_bounds = (b0, b1);
                }
            }
        }
        serial3.push(n as f64, best3 * 1e3);
        eprintln!(
            "n={n}: best 3-way bands CPU[0,{}) K20[{},{}) Phi[{},{n})",
            best_bounds.0, best_bounds.0, best_bounds.1, best_bounds.1
        );
    }
    fig.series = vec![pipelined2, serial2, serial3];
    fig.emit("extension_multi");
}
