//! Ablation: §IV-B coalescing-friendly layout vs naive row-major.
use lddp_bench::figures::ablation_layout;
use lddp_bench::sizes_from_args;

fn main() {
    let sizes = sizes_from_args(&[1024, 2048, 4096, 8192]);
    ablation_layout(&sizes).emit("ablation_layout");
}
