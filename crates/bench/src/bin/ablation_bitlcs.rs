//! Ablation: generic framework vs the Allison–Dix bit-parallel LCS
//! (problem-specific baseline), wall-clock.
use lddp_bench::figures::ablation_bitlcs;
use lddp_bench::sizes_from_args;

fn main() {
    let sizes = sizes_from_args(&[512, 1024, 2048, 4096]);
    ablation_bitlcs(&sizes).emit("ablation_bitlcs");
}
