//! Extension: one-pass dynamic load balancing (after Cuenca et al.,
//! reference [10]) vs the paper's offline two-stage sweep. The balancer
//! needs zero pilot runs; how close does it get?

use hetero_sim::balance::{run_balanced, BalanceConfig};
use hetero_sim::exec::ExecOptions;
use hetero_sim::platform::hetero_high;
use lddp::Framework;
use lddp_bench::{random_seq, sizes_from_args, Figure, Series};
use lddp_core::pattern::Pattern;
use lddp_core::wavefront::Dims;
use lddp_problems::synthetic::fig9_kernel;
use lddp_problems::LevenshteinKernel;

fn main() {
    let sizes = sizes_from_args(&[1024, 2048, 4096, 8192, 16384]);
    let platform = hetero_high();
    let opts = ExecOptions::default();

    let mut fig = Figure::new(
        "Extension — offline-tuned static band vs one-pass dynamic balancing (Hetero-High)",
        "n",
    );
    let mut tuned_h = Series::new("tuned-horizontal(ms)");
    let mut balanced_h = Series::new("balanced-horizontal(ms)");
    let mut tuned_ad = Series::new("tuned-antidiag(ms)");
    let mut balanced_ad = Series::new("balanced-antidiag(ms)");

    for &n in &sizes {
        // Horizontal case 1.
        let k = fig9_kernel(Dims::new(n, n), 1);
        let fw = Framework::new(platform.clone());
        let t = fw.tune(&k).unwrap();
        tuned_h.push(n as f64, fw.estimate(&k, t.params).unwrap() * 1e3);
        let (_, report) = run_balanced(
            &k,
            Pattern::Horizontal,
            &platform,
            &opts,
            &BalanceConfig::default(),
        )
        .unwrap();
        balanced_h.push(n as f64, report.total_s * 1e3);

        // Anti-diagonal (Levenshtein): reuse the tuned t_switch for the
        // balancer's ramp length, but let the band drift on its own.
        let k = LevenshteinKernel::new(random_seq(n, 4, 1), random_seq(n, 4, 2));
        let t = fw.tune(&k).unwrap();
        tuned_ad.push(n as f64, fw.estimate(&k, t.params).unwrap() * 1e3);
        let config = BalanceConfig {
            t_switch: t.params.t_switch,
            initial_band: 0,
            gain: 0.5,
        };
        let (_, report) =
            run_balanced(&k, Pattern::AntiDiagonal, &platform, &opts, &config).unwrap();
        balanced_ad.push(n as f64, report.total_s * 1e3);
    }
    fig.series = vec![tuned_h, balanced_h, tuned_ad, balanced_ad];
    fig.emit("extension_balance");
    println!(
        "One feedback pass matches the offline sweep at small sizes and beats it at\n\
         scale (the per-wave band tracks varying wave widths, which no single static\n\
         t_share can) — without the pilot runs the §V-A procedure needs."
    );
}
