//! Ablation (§IV-A): "thread per cell vs thread per block". On the CPU,
//! a few heavy chunked threads crush the one-thread-per-cell strawman;
//! on the GPU, thread-per-cell is exactly the right model. This binary
//! quantifies both halves of the paper's argument.

use hetero_sim::platform::hetero_high;
use lddp_bench::{sizes_from_args, Figure, Series};

fn main() {
    let sizes = sizes_from_args(&[1024, 4096, 16384, 65536]);
    let platform = hetero_high();
    let ops = 16;
    let bytes = 12;
    // Linux-class thread creation + context switch.
    let spawn_s = 15e-6;

    let mut fig = Figure::new(
        "Ablation — one wave: CPU chunked vs CPU thread-per-cell vs GPU thread-per-cell (Hetero-High)",
        "cells",
    );
    let mut chunked = Series::new("cpu-chunked(ms)");
    let mut tpc = Series::new("cpu-thread-per-cell(ms)");
    let mut gpu = Series::new("gpu-thread-per-cell(ms)");
    for &n in &sizes {
        chunked.push(n as f64, platform.cpu.wave_time_s(n, ops, bytes, 1.0) * 1e3);
        tpc.push(
            n as f64,
            platform
                .cpu
                .wave_time_thread_per_cell_s(n, ops, bytes, 1.0, spawn_s)
                * 1e3,
        );
        gpu.push(n as f64, platform.gpu.wave_time_s(n, ops, bytes, 1.0) * 1e3);
    }
    fig.series = vec![chunked, tpc, gpu];
    fig.emit("ablation_threading");

    println!(
        "CPU: chunked heavy threads win by 2-4 orders of magnitude (the §IV-A rationale).\n\
         GPU: thread-per-cell is the native execution model and scales flat until\n\
         the device saturates."
    );
}
