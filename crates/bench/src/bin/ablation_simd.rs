//! Ablation: execution tiers (scalar / bulk / SIMD / bit-parallel)
//! across every wave-kernel problem, on real threads.
use lddp_bench::figures::ablation_simd;
use lddp_bench::sizes_from_args;

fn main() {
    let sizes = sizes_from_args(&[512, 1024, 2048, 4096]);
    let names = [
        "ablation_simd_lcs",
        "ablation_simd_levenshtein",
        "ablation_simd_nw",
        "ablation_simd_sw",
        "ablation_simd_dtw",
    ];
    for (fig, name) in ablation_simd(&sizes).into_iter().zip(names) {
        fig.emit(name);
    }
}
