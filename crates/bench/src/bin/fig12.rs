//! Regenerates Fig 12: Floyd–Steinberg dithering across image sizes on
//! both platforms.
use lddp_bench::figures::fig12;
use lddp_bench::sizes_from_args;

fn main() {
    let sizes = sizes_from_args(&[512, 1024, 2048, 4096, 8192]);
    for (fig, name) in fig12(&sizes).into_iter().zip(["fig12_high", "fig12_low"]) {
        fig.emit(name);
    }
}
