//! Ablation: §IV-C stream pipelining on vs off for one-way transfers.
use lddp_bench::figures::ablation_pipeline;
use lddp_bench::sizes_from_args;

fn main() {
    let sizes = sizes_from_args(&[1024, 2048, 4096, 8192]);
    ablation_pipeline(&sizes).emit("ablation_pipeline");
}
