//! Regenerates the paper's Table II: pattern → transfer need
//! (1-way / 2-way), as derived from the schedule geometry.
use lddp_bench::figures::table2_rows;
use lddp_bench::results_dir;

fn main() {
    println!("== Table II — patterns and corresponding data transfer need");
    println!("{:<22} 1-way / 2-way", "Pattern");
    let mut csv = String::from("Pattern,Ways\n");
    for (pattern, ways) in table2_rows() {
        println!("{pattern:<22} {ways} way");
        csv.push_str(&format!("{pattern},{ways}\n"));
    }
    let dir = results_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("table2.csv");
    std::fs::write(&path, csv).unwrap();
    println!("   → {}", path.display());
}
