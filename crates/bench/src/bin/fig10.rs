//! Regenerates Fig 10: Levenshtein distance across sizes on both
//! platforms.
use lddp_bench::figures::fig10;
use lddp_bench::sizes_from_args;

fn main() {
    let sizes = sizes_from_args(&[1024, 2048, 4096, 8192, 16384]);
    for (fig, name) in fig10(&sizes).into_iter().zip(["fig10_high", "fig10_low"]) {
        fig.emit(name);
    }
}
