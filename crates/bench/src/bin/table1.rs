//! Regenerates the paper's Table I: contributing set → pattern.
use lddp_bench::figures::table1_rows;
use lddp_bench::results_dir;

fn main() {
    println!("== Table I — contributing sets and corresponding patterns");
    println!("{:>6} {:>6} {:>6} {:>6}   Pattern", "W", "NW", "N", "NE");
    let mut csv = String::from("W,NW,N,NE,Pattern\n");
    for (w, nw, n, ne, pattern) in table1_rows() {
        println!("{w:>6} {nw:>6} {n:>6} {ne:>6}   {pattern}");
        csv.push_str(&format!("{w},{nw},{n},{ne},{pattern}\n"));
    }
    let dir = results_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("table1.csv");
    std::fs::write(&path, csv).unwrap();
    println!("   → {}", path.display());
}
