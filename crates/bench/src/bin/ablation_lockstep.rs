//! Ablation: barrier-synchronous (lockstep) wave execution vs the
//! free-running event-driven pipeline — how much does the per-wave
//! barrier cost, and how tight is the lockstep `max()` model the other
//! figures use?

use hetero_sim::exec::{run_hetero, ExecOptions};
use hetero_sim::pipeline::simulate_pipelined;
use hetero_sim::platform::hetero_high;
use lddp_bench::{sizes_from_args, Figure, Series};
use lddp_core::kernel::Kernel;
use lddp_core::pattern::Pattern;
use lddp_core::schedule::{Plan, ScheduleParams};
use lddp_core::wavefront::Dims;
use lddp_problems::synthetic::fig9_kernel;

fn main() {
    let sizes = sizes_from_args(&[1024, 2048, 4096, 8192, 16384]);
    let platform = hetero_high();
    let mut fig = Figure::new(
        "Ablation — lockstep (barrier per wave) vs free-running pipeline (Horizontal case-1, Hetero-High)",
        "n",
    );
    let mut lockstep = Series::new("lockstep(ms)");
    let mut pipelined = Series::new("pipeline(ms)");
    for &n in &sizes {
        let kernel = fig9_kernel(Dims::new(n, n), 1);
        let plan = Plan::new(
            Pattern::Horizontal,
            kernel.contributing_set(),
            kernel.dims(),
            ScheduleParams::new(0, n / 4),
        )
        .unwrap();
        lockstep.push(
            n as f64,
            run_hetero(&kernel, &plan, &platform, &ExecOptions::default())
                .unwrap()
                .total_s
                * 1e3,
        );
        let report = simulate_pipelined(&kernel, &plan, &platform).unwrap();
        pipelined.push(n as f64, report.total_s * 1e3);
        eprintln!(
            "n={n}: max GPU lag {} waves, copy engine busy {:.3} ms",
            report.max_gpu_lag,
            report.copy_busy_s * 1e3
        );
    }
    fig.series = vec![lockstep, pipelined];
    fig.emit("ablation_lockstep");
    println!(
        "The lockstep max() model tracks the event-driven pipeline within a few\n\
         percent in steady state — the approximation the other exhibits rest on."
    );
}
