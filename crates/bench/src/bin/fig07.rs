//! Regenerates Fig 7: heterogeneous time vs t_switch for LCS 4k×4k.
use lddp_bench::figures::fig07;
use lddp_bench::sizes_from_args;

fn main() {
    let n = sizes_from_args(&[4096])[0];
    for (i, fig) in fig07(n).into_iter().enumerate() {
        fig.emit(&format!(
            "fig07_{}",
            if i == 0 { "t_switch" } else { "t_share" }
        ));
    }
}
