//! Ablation: the paper's contiguous column-band partition vs a
//! block-cyclic (striped) alternative. Stripes balance load better but
//! force Θ(cols/stripe) boundary cells across the link *every wave*;
//! this bin quantifies the copy overhead each choice adds to a
//! horizontal case-2 wave on Hetero-High.

use hetero_sim::link::HostMemory;
use hetero_sim::platform::hetero_high;
use lddp_bench::{sizes_from_args, Figure, Series};
use lddp_core::cell::{ContributingSet, RepCell};
use lddp_core::schedule::striped_crossings_per_wave;

fn main() {
    let sizes = sizes_from_args(&[1024, 4096, 16384]);
    let set = ContributingSet::new(&[RepCell::Nw, RepCell::N, RepCell::Ne]);
    let link = hetero_high().link;
    let cell = 4usize;

    let mut fig = Figure::new(
        "Ablation — per-wave copy cost: contiguous band vs block-cyclic stripes (horizontal case-2)",
        "cols",
    );
    let mut band = Series::new("band(us)");
    let mut stripes_256 = Series::new("stripes-256(us)");
    let mut stripes_32 = Series::new("stripes-32(us)");
    for &n in &sizes {
        // Band: ≤ 2 boundary cells per wave, two pinned copies.
        let band_cells = 2;
        let band_s = 2.0 * link.transfer_time_s(band_cells / 2 * cell, HostMemory::Pinned);
        band.push(n as f64, band_s * 1e6);
        for (series, stripe) in [(&mut stripes_256, 256usize), (&mut stripes_32, 32usize)] {
            let cells = striped_crossings_per_wave(set, n, stripe);
            // Two directions, each one pinned copy of half the cells.
            let s = 2.0 * link.transfer_time_s(cells / 2 * cell, HostMemory::Pinned);
            series.push(n as f64, s * 1e6);
        }
    }
    fig.series = vec![band, stripes_256, stripes_32];
    fig.emit("ablation_partition");
    println!(
        "The band keeps boundary traffic O(1) per wave; striping multiplies it by the\n\
         stripe count — the geometric reason §III assigns each device one contiguous band."
    );
}
