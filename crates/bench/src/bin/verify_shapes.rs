//! Automated reproduction verdicts: regenerates every exhibit at full
//! size, evaluates the paper's qualitative claims against the measured
//! series, and writes `results/REPORT.md` with one PASS/FAIL line per
//! claim. The machine-checkable version of EXPERIMENTS.md.

use lddp_bench::figures;
use lddp_bench::{results_dir, Figure};
use std::fmt::Write as _;

struct Verdict {
    exhibit: &'static str,
    claim: &'static str,
    pass: bool,
    detail: String,
}

fn series<'a>(fig: &'a Figure, label: &str) -> &'a [(f64, f64)] {
    &fig.series
        .iter()
        .find(|s| s.label.contains(label))
        .unwrap_or_else(|| panic!("missing series {label} in {}", fig.title))
        .points
}

fn at(points: &[(f64, f64)], x: f64) -> f64 {
    points
        .iter()
        .find(|&&(px, _)| px == x)
        .map(|&(_, y)| y)
        .unwrap_or_else(|| panic!("missing x={x}"))
}

fn main() {
    let mut verdicts = Vec::new();
    let mut push = |exhibit, claim, pass, detail: String| {
        println!(
            "[{}] {exhibit}: {claim} — {detail}",
            if pass { "PASS" } else { "FAIL" }
        );
        verdicts.push(Verdict {
            exhibit,
            claim,
            pass,
            detail,
        });
    };

    // Tables.
    let t1 = figures::table1_rows();
    push(
        "Table I",
        "15 rows, 6 patterns",
        t1.len() == 15,
        format!("{} rows", t1.len()),
    );
    let t2 = figures::table2_rows();
    let t2_ok = t2
        == vec![
            ("Anti-diagonal".to_string(), 1),
            ("Horizontal (case 1)".to_string(), 1),
            ("Horizontal (case 2)".to_string(), 2),
            ("Inverted-L".to_string(), 1),
            ("Knight-move".to_string(), 2),
        ];
    push(
        "Table II",
        "transfer needs match the paper",
        t2_ok,
        format!("{t2:?}"),
    );

    // Fig 7: interior concave minimum.
    let f7 = figures::fig07(4096);
    let curve = &f7[0].series[0].points;
    let min_idx = curve
        .iter()
        .enumerate()
        .min_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
        .unwrap()
        .0;
    push(
        "Fig 7",
        "interior minimum of the t_switch curve",
        min_idx > 0 && min_idx < curve.len() - 1,
        format!("argmin at index {min_idx} of {}", curve.len()),
    );

    // Fig 8: H1 beats iL on the GPU at every size.
    let f8 = figures::fig08(&[1024, 2048, 4096, 8192]);
    let gpu_il = series(&f8, "GPU-iL");
    let gpu_h1 = series(&f8, "GPU-H1");
    let f8_ok = gpu_il.iter().zip(gpu_h1).all(|(a, b)| b.1 < a.1);
    push(
        "Fig 8",
        "horizontal case-1 beats inverted-L on the GPU",
        f8_ok,
        format!(
            "at 4096: iL {:.2} ms vs H1 {:.2} ms",
            at(gpu_il, 4096.0),
            at(gpu_h1, 4096.0)
        ),
    );

    // Figs 9/10/12/13 share the CPU/GPU/Framework structure.
    let sizes = [1024usize, 2048, 4096, 8192, 16384];
    let img_sizes = [512usize, 1024, 2048, 4096, 8192, 16384];
    let checks: Vec<(&'static str, Vec<Figure>, f64, f64)> = vec![
        ("Fig 9", figures::fig09(&sizes), 1024.0, 16384.0),
        ("Fig 10", figures::fig10(&sizes), 1024.0, 16384.0),
        ("Fig 12", figures::fig12(&img_sizes), 512.0, 16384.0),
        ("Fig 13", figures::fig13(&sizes), 1024.0, 16384.0),
    ];
    for (name, figs, small, large) in &checks {
        for fig in figs {
            let cpu = series(fig, "CPU");
            let gpu = series(fig, "GPU");
            let fw = series(fig, "Framework");
            let small_ok = at(cpu, *small) < at(gpu, *small);
            push(
                name,
                "CPU wins at the smallest size",
                small_ok,
                format!(
                    "{}: cpu {:.2} vs gpu {:.2} ms",
                    fig.title,
                    at(cpu, *small),
                    at(gpu, *small)
                ),
            );
            let large_ok = at(gpu, *large) < at(cpu, *large);
            push(
                name,
                "GPU wins at the largest size",
                large_ok,
                format!(
                    "{}: gpu {:.2} vs cpu {:.2} ms",
                    fig.title,
                    at(gpu, *large),
                    at(cpu, *large)
                ),
            );
            let fw_ok = cpu
                .iter()
                .zip(gpu)
                .zip(fw)
                .all(|((c, g), f)| f.1 <= c.1.min(g.1) * 1.001);
            push(
                name,
                "framework never loses to either baseline",
                fw_ok,
                fig.title.clone(),
            );
            let fw_beats_gpu_at_scale = at(fw, *large) < at(gpu, *large);
            push(
                name,
                "framework beats the pure GPU at scale",
                fw_beats_gpu_at_scale,
                format!(
                    "{}: fw {:.2} vs gpu {:.2} ms",
                    fig.title,
                    at(fw, *large),
                    at(gpu, *large)
                ),
            );
        }
    }

    // Ablations.
    let pipe = figures::ablation_pipeline(&[1024, 4096, 8192]);
    let on = series(&pipe, "pipelined");
    let off = series(&pipe, "serialized");
    push(
        "Ablation §IV-C",
        "pipelining strictly helps",
        on.iter().zip(off).all(|(a, b)| a.1 < b.1),
        format!(
            "at 8192: {:.2} vs {:.2} ms",
            at(on, 8192.0),
            at(off, 8192.0)
        ),
    );
    let lay = figures::ablation_layout(&[1024, 4096, 8192]);
    let wm = series(&lay, "wave-major");
    let rm = series(&lay, "row-major");
    push(
        "Ablation §IV-B",
        "coalesced layout strictly helps on the GPU",
        wm.iter().zip(rm).all(|(a, b)| a.1 < b.1),
        format!("at 8192: {:.2} vs {:.2} ms", at(wm, 8192.0), at(rm, 8192.0)),
    );

    // Report.
    let passed = verdicts.iter().filter(|v| v.pass).count();
    let total = verdicts.len();
    let mut md = String::new();
    let _ = writeln!(md, "# Reproduction verdicts\n");
    let _ = writeln!(md, "{passed}/{total} claims hold.\n");
    let _ = writeln!(md, "| Exhibit | Claim | Verdict | Detail |");
    let _ = writeln!(md, "|---|---|---|---|");
    for v in &verdicts {
        let _ = writeln!(
            md,
            "| {} | {} | {} | {} |",
            v.exhibit,
            v.claim,
            if v.pass { "PASS" } else { "**FAIL**" },
            v.detail.replace('|', "/")
        );
    }
    let dir = results_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("REPORT.md");
    std::fs::write(&path, md).unwrap();
    println!("\n{passed}/{total} claims hold → {}", path.display());
    if passed != total {
        std::process::exit(1);
    }
}
