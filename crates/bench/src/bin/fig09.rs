//! Regenerates Fig 9: horizontal case-1 times across table sizes on
//! Hetero-High and Hetero-Low.
use lddp_bench::figures::fig09;
use lddp_bench::sizes_from_args;

fn main() {
    let sizes = sizes_from_args(&[1024, 2048, 4096, 8192, 16384]);
    for (fig, name) in fig09(&sizes).into_iter().zip(["fig09_high", "fig09_low"]) {
        fig.emit(name);
    }
}
