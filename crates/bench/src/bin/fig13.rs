//! Regenerates Fig 13: checkerboard shortest path across sizes on both
//! platforms.
use lddp_bench::figures::fig13;
use lddp_bench::sizes_from_args;

fn main() {
    let sizes = sizes_from_args(&[1024, 2048, 4096, 8192, 16384]);
    for (fig, name) in fig13(&sizes).into_iter().zip(["fig13_high", "fig13_low"]) {
        fig.emit(name);
    }
}
