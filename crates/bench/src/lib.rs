//! # lddp-bench
//!
//! The reproduction harness: one binary per table/figure of the paper's
//! evaluation (run them all with `cargo run --release -p lddp-bench --bin
//! all_figures`), plus Criterion benchmarks of the *real* engines in
//! `benches/`.
//!
//! Each figure binary generates the paper's workload, sweeps the same
//! parameter axis, prints the series the paper plots, and writes a CSV
//! under `results/`.

#![warn(missing_docs)]

pub mod figures;
pub mod svg;

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A named series of (x, y) points — one line of a figure.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label ("CPU", "GPU", "Framework", …).
    pub label: String,
    /// Sample points: x (size / parameter) and y (milliseconds).
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a sample.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }
}

/// A figure: a title, an x-axis label, and its series (all sharing x
/// values).
#[derive(Debug, Clone)]
pub struct Figure {
    /// Exhibit name ("Fig 10 — Levenshtein, Hetero-High").
    pub title: String,
    /// Meaning of the x column.
    pub x_label: String,
    /// The plotted series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(title: impl Into<String>, x_label: impl Into<String>) -> Self {
        Figure {
            title: title.into(),
            x_label: x_label.into(),
            series: Vec::new(),
        }
    }

    /// Renders an aligned text table (the "same rows the paper reports").
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {}", self.title);
        let _ = write!(out, "{:>12}", self.x_label);
        for s in &self.series {
            let _ = write!(out, " {:>14}", s.label);
        }
        let _ = writeln!(out);
        let rows = self
            .series
            .iter()
            .map(|s| s.points.len())
            .max()
            .unwrap_or(0);
        for r in 0..rows {
            if let Some(&(x, _)) = self.series.first().and_then(|s| s.points.get(r)) {
                let _ = write!(out, "{:>12}", format_x(x));
            }
            for s in &self.series {
                match s.points.get(r) {
                    Some(&(_, y)) => {
                        let _ = write!(out, " {:>14.3}", y);
                    }
                    None => {
                        let _ = write!(out, " {:>14}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Writes `<name>.csv` under `dir` (header: x_label, labels…).
    pub fn write_csv(&self, dir: &Path, name: &str) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut out = String::new();
        let _ = write!(out, "{}", self.x_label);
        for s in &self.series {
            let _ = write!(out, ",{}", s.label);
        }
        let _ = writeln!(out);
        let rows = self
            .series
            .iter()
            .map(|s| s.points.len())
            .max()
            .unwrap_or(0);
        for r in 0..rows {
            if let Some(&(x, _)) = self.series.first().and_then(|s| s.points.get(r)) {
                let _ = write!(out, "{}", format_x(x));
            }
            for s in &self.series {
                match s.points.get(r) {
                    Some(&(_, y)) => {
                        let _ = write!(out, ",{y}");
                    }
                    None => out.push(','),
                }
            }
            let _ = writeln!(out);
        }
        std::fs::write(&path, out)?;
        Ok(path)
    }

    /// Prints the table and writes CSV + SVG, reporting the paths.
    pub fn emit(&self, name: &str) {
        print!("{}", self.to_table());
        let dir = results_dir();
        match self.write_csv(&dir, name) {
            Ok(path) => println!("   → {}", path.display()),
            Err(e) => println!("   (csv not written: {e})"),
        }
        let svg_path = dir.join(format!("{name}.svg"));
        match std::fs::write(&svg_path, crate::svg::render(self)) {
            Ok(()) => println!("   → {}\n", svg_path.display()),
            Err(e) => println!("   (svg not written: {e})\n"),
        }
    }
}

fn format_x(x: f64) -> String {
    if x.fract() == 0.0 {
        format!("{}", x as i64)
    } else {
        format!("{x:.2}")
    }
}

/// Default results directory (`results/` at the workspace root, or
/// `$LDDP_RESULTS`).
pub fn results_dir() -> PathBuf {
    std::env::var_os("LDDP_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            here.ancestors()
                .nth(2)
                .unwrap_or(Path::new("."))
                .join("results")
        })
}

/// Parses `--sizes 1024,2048` style CLI overrides; falls back to
/// `default`.
pub fn sizes_from_args(default: &[usize]) -> Vec<usize> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--sizes" {
            if let Some(list) = args.next() {
                let parsed: Vec<usize> = list
                    .split(',')
                    .filter_map(|s| s.trim().parse().ok())
                    .collect();
                if !parsed.is_empty() {
                    return parsed;
                }
            }
        }
    }
    default.to_vec()
}

/// Random byte string over a small alphabet (workload generator).
pub fn random_seq(len: usize, alphabet: u8, seed: u64) -> Vec<u8> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(0..alphabet)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_renders_table_and_csv() {
        let mut fig = Figure::new("Test", "n");
        let mut cpu = Series::new("CPU");
        cpu.push(1024.0, 1.5);
        cpu.push(2048.0, 3.25);
        let mut gpu = Series::new("GPU");
        gpu.push(1024.0, 2.5);
        gpu.push(2048.0, 2.75);
        fig.series.push(cpu);
        fig.series.push(gpu);
        let table = fig.to_table();
        assert!(table.contains("== Test"));
        assert!(table.contains("1024"));
        assert!(table.contains("3.250"));
        let dir = std::env::temp_dir().join("lddp-bench-test");
        let path = fig.write_csv(&dir, "test_fig").unwrap();
        let csv = std::fs::read_to_string(path).unwrap();
        assert!(csv.starts_with("n,CPU,GPU"));
        assert!(csv.contains("2048,3.25,2.75"));
    }

    #[test]
    fn random_seq_is_deterministic() {
        assert_eq!(random_seq(16, 4, 1), random_seq(16, 4, 1));
        assert_ne!(random_seq(16, 4, 1), random_seq(16, 4, 2));
        assert!(random_seq(64, 4, 3).iter().all(|&b| b < 4));
    }

    #[test]
    fn sizes_default_passthrough() {
        assert_eq!(sizes_from_args(&[1, 2, 3]), vec![1, 2, 3]);
    }
}
