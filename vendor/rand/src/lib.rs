//! Offline shim for the subset of `rand` 0.8 this workspace uses:
//! [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen`, `gen_range`, `gen_bool`. The build container has no
//! network access to crates.io, so the workspace vendors this std-only
//! stand-in instead of the real crate.
//!
//! The generator is SplitMix64 — deterministic per seed, statistically
//! fine for workload generation, **not** the real `StdRng` stream.
//! Everything in this repo derives expected answers from the same
//! generated inputs (sequential oracles), so only self-consistency
//! matters, not stream compatibility.

/// A deterministic 64-bit generator (SplitMix64 core).
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding entry point (`rand` exposes more constructors; the repo only
/// uses `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// A generator seeded from a single word.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Named generator types.

    /// The workspace's stand-in for `rand::rngs::StdRng`: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut rng = StdRng { state: seed };
            // Warm up so nearby seeds diverge immediately.
            use super::RngCore;
            rng.next_u64();
            rng
        }
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait SampleUniform: Sized {
    /// A uniformly distributed value over the type's natural domain
    /// (full integer range; `[0,1)` for floats).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl SampleUniform for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl SampleUniform for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        f64::sample_standard(rng) as f32
    }
}

/// Types drawable from a bounded range (drives the generic
/// [`SampleRange`] impls; the generic shape is what lets `{float}`
/// literals unify with the surrounding expression's type).
pub trait SampleBounded: Copy {
    /// A uniform draw from `[start, end)` (`inclusive` widens to
    /// `[start, end]`). Panics on an empty range, like the real crate.
    fn sample_between<R: RngCore + ?Sized>(
        start: Self,
        end: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_bounded_int {
    ($($t:ty),*) => {$(
        impl SampleBounded for $t {
            fn sample_between<R: RngCore + ?Sized>(
                start: $t,
                end: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let span = (end as i128 - start as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "gen_range: empty range");
                let v = (rng.next_u64() as u128) % span as u128;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_bounded_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_bounded_float {
    ($($t:ty),*) => {$(
        impl SampleBounded for $t {
            fn sample_between<R: RngCore + ?Sized>(
                start: $t,
                end: $t,
                _inclusive: bool,
                rng: &mut R,
            ) -> $t {
                assert!(start < end, "gen_range: empty range");
                let unit = f64::sample_standard(rng) as $t;
                start + unit * (end - start)
            }
        }
    )*};
}
impl_bounded_float!(f32, f64);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// A uniform draw from the range (panics on an empty range, like
    /// the real crate).
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleBounded> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleBounded> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(*self.start(), *self.end(), true, rng)
    }
}

/// The user-facing generator methods, blanket-implemented for any
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A value from the type's standard distribution.
    fn gen<T: SampleUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A uniform draw from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.gen()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(8);
            (0..8).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}
