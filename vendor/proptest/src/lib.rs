//! Offline shim for the subset of `proptest` 1.x this workspace uses.
//! The build container has no network access to crates.io, so the
//! workspace vendors this std-only stand-in instead of the real crate.
//!
//! Supported surface: the [`proptest!`] macro (`fn name(x in strategy,
//! …) { … }` items), [`Strategy`] with `prop_map` / `prop_filter` /
//! `prop_filter_map`, range and tuple strategies, [`any`],
//! [`collection::vec`], [`option::of`], [`sample::select`], [`Just`],
//! and the `prop_assert*` macros.
//!
//! Differences from the real crate, by design: no shrinking (a failing
//! case panics with the generated inputs via the assertion message),
//! no persistence (`proptest-regressions` files are ignored), and a
//! fixed deterministic seed per test name so runs are reproducible.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! The shim's case runner: a deterministic RNG and the case count.

    /// Cases generated per property.
    pub const CASES: u32 = 256;

    /// SplitMix64, seeded from the test name so each property gets a
    /// stable, distinct stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from `name` (FNV-1a hash).
        pub fn from_name(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// A uniform draw from `[0, bound)` (`bound` ≥ 1).
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound.max(1)
        }

        /// A uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

use test_runner::TestRng;

/// A value generator. `generate` returns `None` when a filter rejected
/// the candidate (the runner retries with fresh randomness).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// One candidate value, or `None` if filtered out.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values passing `f`.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }

    /// Maps and filters in one step: `None` results are rejected.
    fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
        self,
        _whence: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(|v| (self.f)(v))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).and_then(&self.f)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                Some((self.start as i128 + rng.below(span) as i128) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u64;
                let v = if span == u64::MAX { rng.next_u64() } else { rng.below(span + 1) };
                Some((start as i128 + v as i128) as $t)
            }
        }
    )*};
}
impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                Some(self.start + rng.unit_f64() as $t * (self.end - self.start))
            }
        }
    )*};
}
impl_float_ranges!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+ ))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)+))
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Types with a default whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// One arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// The whole-domain strategy for `T` (`any::<u64>()` etc.).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A length specification for [`vec`]: an exact length, `a..b`, or
    /// `a..=b` (the real crate's `SizeRange` conversions).
    pub trait IntoSizeRange {
        /// The half-open `[min, max)` length range.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let span = self.max.saturating_sub(self.min).max(1);
            let len = self.min + rng.below(span as u64) as usize;
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.element.generate(rng)?);
            }
            Some(out)
        }
    }

    /// A `Vec` whose length is drawn from `size`, elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        assert!(min < max, "collection::vec: empty size range");
        VecStrategy { element, min, max }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::{Strategy, TestRng};

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<Option<S::Value>> {
            if rng.next_u64() & 3 == 0 {
                Some(None)
            } else {
                self.inner.generate(rng).map(Some)
            }
        }
    }

    /// `None` a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod sample {
    //! Sampling strategies.

    use super::{Strategy, TestRng};

    /// See [`select`].
    pub struct Select<T> {
        choices: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> Option<T> {
            assert!(!self.choices.is_empty(), "select: empty choice set");
            let idx = rng.below(self.choices.len() as u64) as usize;
            Some(self.choices[idx].clone())
        }
    }

    /// A uniform pick from `choices`.
    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        Select { choices }
    }
}

/// Alias module matching `proptest::prelude::prop::…` paths.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::sample;
}

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).

    pub use crate::prop;
    pub use crate::{any, Arbitrary, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// The property macro: each `fn name(x in strategy, …) { body }` item
/// becomes a `#[test]`-able function running [`test_runner::CASES`]
/// generated cases. No shrinking: a failing case panics directly.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                let mut __cases = 0u32;
                let mut __attempts = 0u32;
                while __cases < $crate::test_runner::CASES
                    && __attempts < $crate::test_runner::CASES * 50
                {
                    __attempts += 1;
                    $(
                        let $arg = match $crate::Strategy::generate(&($strat), &mut __rng) {
                            Some(v) => v,
                            None => continue,
                        };
                    )+
                    __cases += 1;
                    // The body runs in a Result-returning closure so
                    // proptest's `return Ok(())` early-exit idiom
                    // compiles; assertion failures panic directly.
                    #[allow(clippy::redundant_closure_call)]
                    let __case: ::core::result::Result<(), ::std::string::String> = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = __case {
                        panic!("proptest case failed: {}", e);
                    }
                }
                assert!(
                    __cases >= $crate::test_runner::CASES / 8,
                    "proptest shim: filters rejected too many cases ({} of {} attempts accepted)",
                    __cases,
                    __attempts
                );
            }
        )*
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples_compose(x in 1usize..10, pair in (0u8..4, 0u8..4)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(pair.0 < 4 && pair.1 < 4);
        }

        #[test]
        fn map_and_filter_map_apply(v in (0u32..100).prop_map(|v| v * 2),
                                    odd in (0u32..100).prop_filter_map("odd", |v| {
                                        if v % 2 == 1 { Some(v) } else { None }
                                    })) {
            prop_assert_eq!(v % 2, 0);
            prop_assert_eq!(odd % 2, 1);
        }

        #[test]
        fn collections_and_select(vals in prop::collection::vec(any::<u8>(), 0..40),
                                  pick in prop::sample::select(vec![3u8, 5, 7]),
                                  opt in prop::option::of(1usize..4)) {
            prop_assert!(vals.len() < 40);
            prop_assert!([3u8, 5, 7].contains(&pick));
            if let Some(v) = opt {
                prop_assert!((1..4).contains(&v));
            }
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
