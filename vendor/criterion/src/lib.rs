//! Offline shim for the subset of `criterion` 0.5 this workspace uses.
//! The build container has no network access to crates.io, so the
//! workspace vendors this std-only stand-in instead of the real crate.
//!
//! It runs each benchmark for a short fixed budget and prints a
//! median-of-runs time — enough to keep `cargo bench` targets
//! compiling and producing comparable numbers, without the real
//! crate's statistics, plotting, or CLI.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget per benchmark (after one warm-up call).
const BUDGET: Duration = Duration::from_millis(300);

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `f` as the benchmark body under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(name);
        self
    }

    /// A named group; the shim's groups only prefix benchmark names.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            prefix: name.to_string(),
        }
    }
}

/// A two-part benchmark name (`BenchmarkId::new("forward", param)`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Throughput annotation (accepted and ignored by the shim).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim does not rescale.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim's budget is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs `f` as `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.prefix, id));
        self
    }

    /// Runs `f` as `group/id` with a borrowed input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.prefix, id));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// The timing harness handed to benchmark bodies.
#[derive(Debug, Default)]
pub struct Bencher {
    per_iter_s: Option<f64>,
}

impl Bencher {
    /// Times `f` repeatedly for the fixed budget and records the mean
    /// per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let started = Instant::now();
        let mut iters = 0u64;
        while started.elapsed() < BUDGET {
            black_box(f());
            iters += 1;
        }
        self.per_iter_s = Some(started.elapsed().as_secs_f64() / iters.max(1) as f64);
    }

    fn report(&self, name: &str) {
        match self.per_iter_s {
            Some(s) if s >= 1e-3 => println!("bench {name}: {:.3} ms/iter", s * 1e3),
            Some(s) if s >= 1e-6 => println!("bench {name}: {:.3} us/iter", s * 1e6),
            Some(s) => println!("bench {name}: {:.1} ns/iter", s * 1e9),
            None => println!("bench {name}: no iterations recorded"),
        }
    }
}

/// Declares a benchmark group function running the listed targets.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_time() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(4))
            .sample_size(10)
            .bench_function(BenchmarkId::new("f", 2), |b| b.iter(|| black_box(2 * 2)));
        g.bench_with_input(BenchmarkId::new("in", 3), &3u64, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        g.finish();
    }
}
