//! Floyd–Steinberg dithering on the framework (§VI-B, knight-move
//! pattern): dithers a synthetic grayscale image heterogeneously, writes
//! before/after PGM files, and prints the Fig 12 comparison.
//!
//! ```sh
//! cargo run --release --example dithering [size] [outdir]
//! ```

use lddp::core::kernel::Kernel;
use lddp::platforms::{hetero_high, hetero_low};
use lddp::problems::dithering::{write_pgm, DitherKernel};
use lddp::Framework;
use std::path::PathBuf;

fn main() {
    let size: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(512);
    let outdir: PathBuf = std::env::args()
        .nth(2)
        .map(Into::into)
        .unwrap_or_else(|| "results".into());
    std::fs::create_dir_all(&outdir).expect("create output dir");

    // A radial-gradient-with-noise test image: enough structure to see
    // the dithering pattern, fully synthetic.
    let kernel = {
        let mut image = Vec::with_capacity(size * size);
        for i in 0..size {
            for j in 0..size {
                let di = i as f64 / size as f64 - 0.5;
                let dj = j as f64 / size as f64 - 0.5;
                let r = (di * di + dj * dj).sqrt() * 2.0;
                image.push((255.0 * (1.0 - r).clamp(0.0, 1.0)) as u8);
            }
        }
        DitherKernel::new(size, size, image)
    };

    // Write the input.
    let input: Vec<u8> = (0..size)
        .flat_map(|i| (0..size).map(move |j| (i, j)))
        .map(|(i, j)| kernel.input(i, j) as u8)
        .collect();
    write_pgm(&outdir.join("dither_input.pgm"), size, size, &input).unwrap();

    // Solve heterogeneously (two-way pinned transfers, Table II).
    let fw =
        Framework::new(hetero_high()).with_io_bytes(kernel.input_bytes(), kernel.input_bytes());
    let class = fw.classify(&kernel).unwrap();
    println!(
        "pattern: {} / transfers: {:?}",
        class.raw_pattern, class.transfer
    );
    let solution = fw.solve(&kernel).unwrap();

    let mut out = Vec::with_capacity(size * size);
    for i in 0..size {
        for j in 0..size {
            out.push(solution.grid.get(i, j).out);
        }
    }
    write_pgm(&outdir.join("dither_output.pgm"), size, size, &out).unwrap();
    println!(
        "dithered {size}x{size} image in {:.3} ms virtual time (t_switch={}, t_share={})",
        solution.total_s * 1e3,
        solution.params.t_switch,
        solution.params.t_share
    );
    println!(
        "wrote {}/dither_input.pgm and dither_output.pgm",
        outdir.display()
    );

    // Fig 12 flavour: who wins at this size on each platform?
    for platform in [hetero_high(), hetero_low()] {
        let fw = Framework::new(platform.clone())
            .with_io_bytes(kernel.input_bytes(), kernel.input_bytes());
        let cpu = fw.cpu_baseline(&kernel).unwrap();
        let gpu = fw.gpu_baseline(&kernel).unwrap();
        let het = fw.estimate(&kernel, solution.params).unwrap();
        println!(
            "{:<12} CPU {:>9.3} ms | GPU {:>9.3} ms | Framework {:>9.3} ms",
            platform.name,
            cpu * 1e3,
            gpu * 1e3,
            het * 1e3
        );
    }

    // Sanity: mean intensity is preserved by error diffusion.
    let mean_in: f64 = input.iter().map(|&p| p as f64).sum::<f64>() / input.len() as f64;
    let mean_out: f64 = out.iter().map(|&p| p as f64).sum::<f64>() / out.len() as f64;
    println!("mean intensity: input {mean_in:.2}, dithered {mean_out:.2}");
    let _ = kernel.dims();
}
