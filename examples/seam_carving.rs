//! Content-aware image narrowing on the framework: computes cumulative
//! energy maps heterogeneously (horizontal case-2 schedule), removes the
//! k cheapest vertical seams, and writes before/after PGM images.
//!
//! ```sh
//! cargo run --release --example seam_carving [size] [seams] [outdir]
//! ```

use lddp::core::grid::{Grid, LayoutKind};
use lddp::core::Dims;
use lddp::platforms::hetero_high;
use lddp::problems::dithering::write_pgm;
use lddp::problems::seam_carving::SeamCarvingKernel;
use lddp::workloads::radial_gradient;
use lddp::Framework;
use std::path::PathBuf;

fn main() {
    let size: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    let seams: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    let outdir: PathBuf = std::env::args()
        .nth(3)
        .map(Into::into)
        .unwrap_or_else(|| "results".into());
    std::fs::create_dir_all(&outdir).expect("create output dir");

    // A structured test image: radial gradient with a bright diagonal
    // stripe the carver should route around.
    let rows = size;
    let mut cols = size;
    let mut image = radial_gradient(rows, cols);
    for i in 0..rows {
        let j = (i * cols) / rows;
        for dj in 0..(cols / 16).max(1) {
            if j + dj < cols {
                image[i * cols + j + dj] = 255;
            }
        }
    }
    write_pgm(&outdir.join("seam_input.pgm"), rows, cols, &image).unwrap();

    let mut total_energy_removed = 0u64;
    let mut total_ms = 0.0;
    for k in 0..seams {
        let kernel = SeamCarvingKernel::from_image(rows, cols, &image);
        let fw = Framework::new(hetero_high()).with_io_bytes(4 * rows * cols, 0);
        let solution = fw.solve(&kernel).expect("solve");
        total_ms += solution.total_s * 1e3;
        // Repack into a grid for the seam helpers.
        let mut grid = Grid::new(LayoutKind::RowMajor, Dims::new(rows, cols));
        for i in 0..rows {
            for j in 0..cols {
                grid.set(i, j, solution.grid.get(i, j));
            }
        }
        let seam = kernel.min_seam(&grid);
        total_energy_removed += kernel.seam_energy(&seam);
        image = SeamCarvingKernel::remove_seam(rows, cols, &image, &seam);
        cols -= 1;
        if k == 0 {
            println!(
                "first seam: energy {}, params t_share={}",
                kernel.seam_energy(&seam),
                solution.params.t_share
            );
        }
    }
    write_pgm(&outdir.join("seam_output.pgm"), rows, cols, &image).unwrap();
    println!(
        "removed {seams} seams from a {size}x{size} image → {rows}x{cols}; \
         total seam energy {total_energy_removed}; {total_ms:.1} ms virtual compute"
    );
    println!(
        "wrote {}/seam_input.pgm and seam_output.pgm",
        outdir.display()
    );
}
