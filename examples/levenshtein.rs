//! Levenshtein distance on the heterogeneous framework (the paper's
//! §VI-A case study): compares CPU-parallel, GPU and Framework virtual
//! times across sizes on both platforms, then cross-checks the answer
//! against the independent reference and the real thread engine.
//!
//! ```sh
//! cargo run --release --example levenshtein [max_n]
//! ```

use lddp::parallel::ParallelEngine;
use lddp::platforms::{hetero_high, hetero_low};
use lddp::problems::levenshtein::{distance, LevenshteinKernel};
use lddp::Framework;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_dna(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| b"ACGT"[rng.gen_range(0..4)]).collect()
}

fn main() {
    let max_n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4096);

    // Correctness first: a moderate instance through every engine.
    let a = random_dna(600, 1);
    let b = random_dna(700, 2);
    let kernel = LevenshteinKernel::new(a.clone(), b.clone());
    let expected = distance(&a, &b);
    let fw = Framework::new(hetero_high());
    let solution = fw.solve(&kernel).unwrap();
    let d = lddp::core::kernel::Kernel::dims(&kernel);
    assert_eq!(solution.grid.get(d.rows - 1, d.cols - 1), expected);
    let par = ParallelEngine::host().solve(&kernel).unwrap();
    assert_eq!(kernel.distance_from(&par), expected);
    println!("edit distance of 600x700 random DNA: {expected} (all engines agree)\n");

    // The Fig 10 sweep.
    for platform in [hetero_high(), hetero_low()] {
        println!("== {} (virtual times, ms)", platform.name);
        println!(
            "{:>8} {:>12} {:>12} {:>12} {:>10} {:>9}",
            "n", "CPU", "GPU", "Framework", "t_switch", "t_share"
        );
        let mut n = 512;
        while n <= max_n {
            let a = random_dna(n, 3);
            let b = random_dna(n, 4);
            let kernel = LevenshteinKernel::new(a, b);
            let fw = Framework::new(platform.clone());
            let cpu = fw.cpu_baseline(&kernel).unwrap();
            let gpu = fw.gpu_baseline(&kernel).unwrap();
            let tuned = fw.tune(&kernel).unwrap();
            let het = fw.estimate(&kernel, tuned.params).unwrap();
            println!(
                "{:>8} {:>12.3} {:>12.3} {:>12.3} {:>10} {:>9}",
                n,
                cpu * 1e3,
                gpu * 1e3,
                het * 1e3,
                tuned.params.t_switch,
                tuned.params.t_share
            );
            n *= 2;
        }
        println!();
    }
}
