//! Visualizes a heterogeneous execution: the three phases of an
//! anti-diagonal schedule show up directly in the CPU/GPU occupancy
//! strip (CPU-only ramp, shared middle, CPU-only tail).
//!
//! ```sh
//! cargo run --release --example timeline [n]
//! ```

use hetero_sim::exec::{run_hetero, ExecOptions};
use hetero_sim::platform::hetero_high;
use hetero_sim::report::{occupancy_strip, summarize};
use lddp::core::kernel::Kernel;
use lddp::core::pattern::Pattern;
use lddp::core::schedule::Plan;
use lddp::platforms;
use lddp::problems::LevenshteinKernel;
use lddp::Framework;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2048);
    let mut rng = StdRng::seed_from_u64(42);
    let a: Vec<u8> = (0..n).map(|_| rng.gen_range(b'a'..=b'd')).collect();
    let b: Vec<u8> = (0..n).map(|_| rng.gen_range(b'a'..=b'd')).collect();
    let kernel = LevenshteinKernel::new(a, b);

    // Tune, then re-run with the timeline recorder on.
    let fw = Framework::new(platforms::hetero_high());
    let tuned = fw.tune(&kernel).expect("tune");
    let plan = Plan::new(
        Pattern::AntiDiagonal,
        kernel.contributing_set(),
        kernel.dims(),
        tuned.params,
    )
    .expect("plan");
    let opts = ExecOptions {
        record_timeline: true,
        ..Default::default()
    };
    let report = run_hetero(&kernel, &plan, &hetero_high(), &opts).expect("run");

    println!(
        "Levenshtein {n}x{n}, anti-diagonal schedule, t_switch={} t_share={}\n",
        tuned.params.t_switch, tuned.params.t_share
    );
    println!("{}", summarize(&report.breakdown, report.total_s));
    println!();
    println!("occupancy over wall time (3-phase structure of Fig 3):");
    let (strip, width) = occupancy_strip(&report.timeline, 72);
    print!("{strip}");
    println!("({width} buckets)");
    println!();

    // Phase statistics from the plan itself.
    for span in plan.phases() {
        let cells: usize = span
            .waves
            .clone()
            .map(|w| {
                let a = plan.assignment(w);
                a.cpu_len() + a.gpu_len()
            })
            .sum();
        println!(
            "  {:?}: waves {:>6}..{:<6} ({} cells)",
            span.kind, span.waves.start, span.waves.end, cells
        );
    }
}
