//! The §V-A tuning procedure, visualized: sweeps `t_switch` with
//! `t_share = 0` (the Fig 7 curve), then `t_share` at the winning
//! `t_switch`, printing both curves as ASCII bars.
//!
//! ```sh
//! cargo run --release --example autotune [n]
//! ```

use lddp::core::tuner::SweepPoint;
use lddp::platforms::hetero_high;
use lddp::problems::LcsKernel;
use lddp::Framework;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bar(t: f64, max: f64) -> String {
    let width = (t / max * 48.0).round() as usize;
    "█".repeat(width.max(1))
}

fn print_curve(title: &str, points: &[SweepPoint]) {
    println!("{title}");
    let max = points.iter().map(|p| p.time).fold(0.0, f64::max);
    let min = points
        .iter()
        .min_by(|a, b| a.time.total_cmp(&b.time))
        .expect("non-empty curve");
    for p in points {
        let marker = if p.value == min.value {
            "  ← optimum"
        } else {
            ""
        };
        println!(
            "  {:>6}  {:>9.3} ms  {}{marker}",
            p.value,
            p.time * 1e3,
            bar(p.time, max)
        );
    }
    println!();
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4096);

    let mut rng = StdRng::seed_from_u64(7);
    let a: Vec<u8> = (0..n).map(|_| rng.gen_range(0..4u8)).collect();
    let b: Vec<u8> = (0..n).map(|_| rng.gen_range(0..4u8)).collect();
    let kernel = LcsKernel::new(a, b);

    let fw = Framework::new(hetero_high());
    println!(
        "tuning LCS {n}x{n} (anti-diagonal) on {} — the paper's Fig 7 procedure\n",
        fw.platform().name
    );
    let result = fw.tune(&kernel).unwrap();
    print_curve(
        "time vs t_switch at t_share = 0 (concave, Fig 7):",
        &result.t_switch_curve,
    );
    print_curve(
        &format!("time vs t_share at t_switch = {}:", result.params.t_switch),
        &result.t_share_curve,
    );
    println!(
        "chosen parameters: t_switch = {}, t_share = {}",
        result.params.t_switch, result.params.t_share
    );
    let tuned = fw.estimate(&kernel, result.params).unwrap();
    let cpu = fw.cpu_baseline(&kernel).unwrap();
    let gpu = fw.gpu_baseline(&kernel).unwrap();
    println!(
        "tuned {:.3} ms vs CPU {:.3} ms / GPU {:.3} ms",
        tuned * 1e3,
        cpu * 1e3,
        gpu * 1e3
    );
}
