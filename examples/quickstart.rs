//! Quickstart: define an LDDP-Plus update function, let the framework
//! classify, tune and execute it heterogeneously.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lddp::core::kernel::{ClosureKernel, Neighbors};
use lddp::core::{ContributingSet, Dims, RepCell};
use lddp::platforms::hetero_high;
use lddp::Framework;

fn main() {
    // The paper's §V-C contract: the user supplies only (1) the function
    // f over the representative cells and (2) the initialization — here
    // the `None` branches. This is the Fig 9 benchmark function
    // f(i,j) = min(f(i-1,j-1), f(i-1,j)) + c.
    let dims = Dims::new(1024, 1024);
    let set = ContributingSet::new(&[RepCell::Nw, RepCell::N]);
    let kernel = ClosureKernel::new(dims, set, |i, j, n: &Neighbors<u32>| {
        match (n.nw, n.n) {
            (Some(a), Some(b)) => a.min(b) + 1,
            (Some(a), None) => a + 1,
            (None, Some(b)) => b + 1,
            // Row 0 initialization.
            (None, None) => ((i * 31 + j * 7) % 64) as u32,
        }
    })
    .with_name("quickstart-min");

    let fw = Framework::new(hetero_high());

    // 1. Classification (Table I).
    let class = fw.classify(&kernel).unwrap();
    println!("contributing set : {}", kernel_set(&kernel));
    println!("pattern          : {}", class.raw_pattern);
    println!(
        "executed as      : {} ({:?} adapter)",
        class.exec_pattern, class.adapter
    );
    println!("layout           : {:?}", class.layout);
    println!("transfers        : {:?} (Table II)", class.transfer);

    // 2. Empirical tuning (§V-A) + heterogeneous execution.
    let solution = fw.solve(&kernel).unwrap();
    println!(
        "tuned params     : t_switch = {}, t_share = {}",
        solution.params.t_switch, solution.params.t_share
    );
    println!(
        "virtual time     : {:.3} ms on {}",
        solution.total_s * 1e3,
        fw.platform().name
    );
    println!(
        "work split       : {:.1}% CPU busy, {:.1}% GPU busy, {} B boundary traffic",
        1e2 * solution.breakdown.cpu_busy_s / solution.total_s,
        1e2 * solution.breakdown.gpu_busy_s / solution.total_s,
        solution.breakdown.bytes_to_gpu + solution.breakdown.bytes_to_cpu,
    );

    // 3. Compare with the pure baselines the paper plots.
    let cpu = fw.cpu_baseline(&kernel).unwrap();
    let gpu = fw.gpu_baseline(&kernel).unwrap();
    println!("CPU parallel     : {:.3} ms", cpu * 1e3);
    println!("GPU              : {:.3} ms", gpu * 1e3);
    println!("Framework        : {:.3} ms", solution.total_s * 1e3);

    // 4. The answer itself (bottom-right corner).
    println!(
        "table corner     : {}",
        solution.grid.get(dims.rows - 1, dims.cols - 1)
    );
}

fn kernel_set<K: lddp::core::kernel::Kernel>(k: &K) -> String {
    format!("{}", k.contributing_set())
}
