//! Bringing your own problem to the framework: a custom *vertical*
//! kernel (contributing set `{W, NW}`) that the framework transposes
//! into a horizontal problem automatically, and a mirrored-inverted-L
//! kernel (`{NE}`) that runs under horizontal case 1 directly.
//!
//! ```sh
//! cargo run --release --example custom_kernel
//! ```

use lddp::core::framework::Adapter;
use lddp::core::kernel::{ClosureKernel, Neighbors};
use lddp::core::{ContributingSet, Dims, RepCell};
use lddp::platforms::hetero_high;
use lddp::Framework;

fn main() {
    let fw = Framework::new(hetero_high());

    // --- A vertical problem: maximum-sum column walk. -----------------
    // Walking down a column, each cell extends the best of its West and
    // North-West predecessors; columns fill left to right.
    let dims = Dims::new(512, 768);
    let vertical = ClosureKernel::new(
        dims,
        ContributingSet::new(&[RepCell::W, RepCell::Nw]),
        |i, j, n: &Neighbors<u64>| {
            let gain = ((i * 2654435761) ^ (j * 97)) as u64 % 100;
            gain + n.w.unwrap_or(0).max(n.nw.unwrap_or(0))
        },
    )
    .with_name("column-walk");

    let class = fw.classify(&vertical).unwrap();
    println!("custom vertical kernel:");
    println!(
        "  classified as {} → executed as {}",
        class.raw_pattern, class.exec_pattern
    );
    println!(
        "  adapter: {:?} (rows and columns swapped internally)",
        class.adapter
    );
    assert_eq!(class.adapter, Adapter::Transpose);
    let solution = fw.solve(&vertical).unwrap();
    println!(
        "  solved {}x{} in {:.3} ms virtual; corner value {}",
        dims.rows,
        dims.cols,
        solution.total_s * 1e3,
        solution.grid.get(dims.rows - 1, dims.cols - 1)
    );
    // The adapter is transparent: results come back in the caller's
    // coordinates, identical to a plain sequential solve.
    let oracle = lddp::core::seq::solve_row_major(&vertical).unwrap();
    assert_eq!(solution.grid.to_row_major(), oracle.to_row_major());
    println!("  matches the sequential oracle ✓\n");

    // --- A mirrored inverted-L problem: {NE} only. ---------------------
    let m_dims = Dims::new(384, 384);
    let mirrored = ClosureKernel::new(
        m_dims,
        ContributingSet::new(&[RepCell::Ne]),
        |i, j, n: &Neighbors<u64>| {
            let own = (i * 31 + j * 17 + 1) as u64;
            own + n.ne.unwrap_or(0) / 2
        },
    )
    .with_name("mirror-cascade");
    let class = fw.classify(&mirrored).unwrap();
    println!("custom mirrored-inverted-L kernel:");
    println!(
        "  classified as {} → executed as {} (no adapter needed: {{NE}} is a row-only set)",
        class.raw_pattern, class.exec_pattern
    );
    let solution = fw.solve(&mirrored).unwrap();
    let oracle = lddp::core::seq::solve_row_major(&mirrored).unwrap();
    assert_eq!(solution.grid.to_row_major(), oracle.to_row_major());
    println!(
        "  solved in {:.3} ms virtual; matches the sequential oracle ✓",
        solution.total_s * 1e3
    );
}
