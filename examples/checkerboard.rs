//! Checkerboard shortest path on the framework (§VI-C, horizontal
//! case 2): solves a random cost board heterogeneously, reconstructs the
//! optimal path, and prints the Fig 13 comparison.
//!
//! ```sh
//! cargo run --release --example checkerboard [size]
//! ```

use lddp::core::grid::{Grid, LayoutKind};
use lddp::core::kernel::Kernel;
use lddp::platforms::{hetero_high, hetero_low};
use lddp::problems::checkerboard::CheckerboardKernel;
use lddp::Framework;

fn main() {
    let size: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1024);

    let kernel = CheckerboardKernel::random(size, size, 9, 2026);
    let fw = Framework::new(hetero_high()).with_io_bytes(kernel.input_bytes(), 0);
    let class = fw.classify(&kernel).unwrap();
    println!(
        "pattern: {} (case 2) / transfers: {:?} → pinned memory",
        class.raw_pattern, class.transfer
    );

    let solution = fw.solve(&kernel).unwrap();
    let best = kernel.best_cost_from(&to_grid(&solution.grid, size));
    println!(
        "cheapest path cost on a {size}x{size} board: {best} \
         ({:.3} ms virtual, t_share = {})",
        solution.total_s * 1e3,
        solution.params.t_share
    );

    // Reconstruct and display the path head on small boards.
    let path = kernel.traceback(&to_grid(&solution.grid, size));
    let preview: Vec<String> = path.iter().take(12).map(|j| j.to_string()).collect();
    println!("path columns (first rows): {} ...", preview.join(" → "));
    let path_cost: u32 = path
        .iter()
        .enumerate()
        .map(|(i, &j)| kernel.cost(i, j))
        .sum();
    assert_eq!(path_cost, best, "traceback must realize the optimal cost");

    for platform in [hetero_high(), hetero_low()] {
        let fw = Framework::new(platform.clone()).with_io_bytes(kernel.input_bytes(), 0);
        let cpu = fw.cpu_baseline(&kernel).unwrap();
        let gpu = fw.gpu_baseline(&kernel).unwrap();
        let tuned = fw.tune(&kernel).unwrap();
        let het = fw.estimate(&kernel, tuned.params).unwrap();
        println!(
            "{:<12} CPU {:>9.3} ms | GPU {:>9.3} ms | Framework {:>9.3} ms (t_share {})",
            platform.name,
            cpu * 1e3,
            gpu * 1e3,
            het * 1e3,
            tuned.params.t_share
        );
    }
    let _ = kernel.dims();
}

/// The solution grid is already row-major in user coordinates; rewrap it
/// for the kernel's grid-based helpers.
fn to_grid(grid: &Grid<u32>, size: usize) -> Grid<u32> {
    let mut g = Grid::new(LayoutKind::RowMajor, lddp::core::Dims::new(size, size));
    for i in 0..size {
        for j in 0..size {
            g.set(i, j, grid.get(i, j));
        }
    }
    g
}
