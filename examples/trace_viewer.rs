//! Produces Perfetto-loadable traces of one Levenshtein instance on
//! both platform presets, so the schedule structure of the two
//! platforms can be compared side by side in the timeline viewer.
//!
//! ```sh
//! cargo run --release --example trace_viewer [n]
//! # then open hetero_high.trace.json / hetero_low.trace.json at
//! # https://ui.perfetto.dev (or chrome://tracing)
//! ```
//!
//! See docs/OBSERVABILITY.md for the trace model (tracks, counters,
//! histograms) and EXPERIMENTS.md for how these traces relate to the
//! paper's figures.

use lddp::platforms;
use lddp::problems::LevenshteinKernel;
use lddp::trace::{chrome, metrics, Recorder};
use lddp::workloads::random_seq;
use lddp::Framework;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(512);
    let kernel = LevenshteinKernel::new(random_seq(n, 4, 1), random_seq(n, 4, 2));

    for (label, platform) in [
        ("hetero_high", platforms::hetero_high()),
        ("hetero_low", platforms::hetero_low()),
    ] {
        let fw = Framework::new(platform).with_io_bytes(2 * n, 8);
        let rec = Recorder::new();
        let solution = fw.solve_traced(&kernel, None, &rec).expect("solve");
        let data = rec.into_data();

        let trace_path = format!("{label}.trace.json");
        std::fs::write(&trace_path, chrome::to_chrome_json(&data)).expect("write trace");
        let metrics_path = format!("{label}.metrics.jsonl");
        std::fs::write(&metrics_path, metrics::to_jsonl(&data)).expect("write metrics");

        println!(
            "{label}: {:.3} ms virtual, t_switch={} t_share={}, {} phases",
            solution.total_s * 1e3,
            solution.params.t_switch,
            solution.params.t_share,
            solution.phases.len(),
        );
        for p in &solution.phases {
            println!(
                "  {:?} waves {}..{}: {:.3} ms wall, cpu {:.3} ms, gpu {:.3} ms, copy {:.3} ms",
                p.kind,
                p.waves.start,
                p.waves.end,
                p.wall_s * 1e3,
                p.cpu_busy_s * 1e3,
                p.gpu_busy_s * 1e3,
                p.copy_s * 1e3,
            );
        }
        println!("  -> {trace_path}, {metrics_path}");
    }
    println!("\nopen the .trace.json files at https://ui.perfetto.dev");
}
