//! Thin binary wrapper around [`lddp::cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match lddp::cli::parse(&args).and_then(lddp::cli::execute) {
        Ok(out) => println!("{out}"),
        Err(err) => {
            eprintln!("error: {err}\n\n{}", lddp::cli::usage());
            std::process::exit(2);
        }
    }
}
