//! Seeded synthetic workload generators shared by the CLI, examples and
//! tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random byte string over `0..alphabet`.
pub fn random_seq(len: usize, alphabet: u8, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(0..alphabet)).collect()
}

/// Random grayscale image.
pub fn random_image(rows: usize, cols: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..rows * cols).map(|_| rng.gen()).collect()
}

/// A radial gradient image (deterministic, structured).
pub fn radial_gradient(rows: usize, cols: usize) -> Vec<u8> {
    let mut image = Vec::with_capacity(rows * cols);
    for i in 0..rows {
        for j in 0..cols {
            let di = i as f64 / rows.max(1) as f64 - 0.5;
            let dj = j as f64 / cols.max(1) as f64 - 0.5;
            let r = (di * di + dj * dj).sqrt() * 2.0;
            image.push((255.0 * (1.0 - r).clamp(0.0, 1.0)) as u8);
        }
    }
    image
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(random_seq(32, 4, 9), random_seq(32, 4, 9));
        assert_eq!(random_image(4, 4, 1), random_image(4, 4, 1));
        assert_ne!(random_seq(32, 4, 9), random_seq(32, 4, 10));
    }

    #[test]
    fn alphabet_respected() {
        assert!(random_seq(256, 3, 2).iter().all(|&b| b < 3));
    }

    #[test]
    fn gradient_is_bright_in_the_centre() {
        let img = radial_gradient(9, 9);
        assert!(img[4 * 9 + 4] > img[0]);
        assert_eq!(img.len(), 81);
    }
}
