//! Command-line interface logic for the `lddp-cli` binary.
//!
//! Hand-rolled argument parsing (no external dependencies) kept in a
//! library module so it is unit-testable. Commands:
//!
//! ```text
//! lddp-cli classify --set W,NW,N
//! lddp-cli solve   --problem levenshtein --n 1024 [--platform high|low]
//!                  [--t-switch X --t-share Y] [--json]
//! lddp-cli tune    --problem lcs --n 2048 [--refined]
//! lddp-cli compare --problem checkerboard --n 4096 [--json]
//! lddp-cli trace   --problem levenshtein --n 512 --out run.trace.json
//!                  [--metrics run.metrics.jsonl]
//! lddp-cli serve   --addr 127.0.0.1:8700 [--workers W] [--queue-cap Q]
//!                  [--max-batch B] [--deadline-ms D] [--trace serve.trace.json]
//!                  [--tune-cache cache.json]
//! lddp-cli loadgen --problem lcs --requests 500 [--addr HOST:PORT]
//!                  [--rps R] [--duration S] [--concurrency C] [--no-verify]
//!                  [--retries A]
//! lddp-cli chaos   [--seed S] [--campaign quick|heavy] [--out report.json]
//! ```
//!
//! `trace` writes a Chrome trace-event JSON timeline (loadable in
//! Perfetto / `chrome://tracing`, see docs/OBSERVABILITY.md); `--json`
//! switches `solve`/`compare` to machine-readable output. `serve` runs
//! the batching solve server (see docs/SERVING.md) and `loadgen` drives
//! it — over HTTP when `--addr` is given, against an in-process server
//! otherwise — checking every answer against the sequential oracle
//! unless `--no-verify` is passed. `chaos` runs a seeded fault-injection
//! campaign across the engine ladder, the hetero executor, and the
//! serving stack (see docs/ROBUSTNESS.md), failing loudly when any
//! recovered answer diverges from the oracle.

use crate::platforms::{cpu_only, hetero_high, hetero_low, Platform};
use crate::{Framework, PhaseStat};
use hetero_sim::report::{utilization, Utilization};
use lddp_chaos::{FaultInjector, FaultPlan, FaultPlanConfig, RetryPolicy};
use lddp_core::cell::{ContributingSet, RepCell};
use lddp_core::grid::Grid;
use lddp_core::kernel::{ExecTier, Kernel, MemoryMode};
use lddp_core::pattern::classify;
use lddp_core::rolling;
use lddp_core::schedule::{PhaseKind, ScheduleParams};
use lddp_core::tuner_cache::TunedConfig;
use lddp_core::DegradeStep;
use lddp_problems as problems;
use lddp_serve::loadgen::{HttpTarget, LoadgenConfig};
use lddp_serve::{Priority, ServeConfig, Server, SolveBackend, SolveRequest};
use lddp_trace::json::{escape, num};
use lddp_trace::{chrome, metrics, NullSink, Recorder, TraceSink};
use std::time::{Duration, Instant};

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Classify a contributing set.
    Classify {
        /// The set to classify.
        set: ContributingSet,
    },
    /// Solve a named problem instance.
    Solve {
        /// Problem name.
        problem: String,
        /// Instance size (table side).
        n: usize,
        /// Platform preset name.
        platform: String,
        /// Optional explicit parameters (otherwise tuned).
        params: Option<ScheduleParams>,
        /// Emit a machine-readable JSON summary instead of text.
        json: bool,
        /// Memory-mode pin (`None` = the tuner's budget-based choice).
        memory: Option<MemoryMode>,
    },
    /// Tune a named problem instance.
    Tune {
        /// Problem name.
        problem: String,
        /// Instance size.
        n: usize,
        /// Platform preset name.
        platform: String,
        /// Use the ternary-search tuner.
        refined: bool,
    },
    /// Solve with one-pass dynamic load balancing.
    Balance {
        /// Problem name.
        problem: String,
        /// Instance size.
        n: usize,
        /// Platform preset name.
        platform: String,
        /// CPU-only ramp length for ramp-shaped patterns.
        t_switch: usize,
    },
    /// Print CPU/GPU/Framework times for a problem instance.
    Compare {
        /// Problem name.
        problem: String,
        /// Instance size.
        n: usize,
        /// Platform preset name.
        platform: String,
        /// Emit a machine-readable JSON summary instead of text.
        json: bool,
    },
    /// Solve while recording a Chrome trace-event timeline.
    Trace {
        /// Problem name.
        problem: String,
        /// Instance size.
        n: usize,
        /// Platform preset name.
        platform: String,
        /// Optional explicit parameters (otherwise tuned, with the
        /// sweep recorded into the trace).
        params: Option<ScheduleParams>,
        /// Output path for the Chrome trace JSON.
        out: String,
        /// Optional output path for the JSON-lines metrics dump.
        metrics: Option<String>,
    },
    /// Run the batching solve server (see docs/SERVING.md).
    Serve {
        /// Listen address (`host:port`).
        addr: String,
        /// Worker threads executing batches.
        workers: usize,
        /// Admission-queue capacity (interactive class).
        queue_cap: usize,
        /// Batch-class queue capacity (`None` = same as `queue_cap`).
        batch_queue_cap: Option<usize>,
        /// Per-tenant admission quota, requests/second (`None` = no
        /// quotas).
        tenant_rps: Option<f64>,
        /// Token-bucket burst size for tenant quotas.
        tenant_burst: Option<f64>,
        /// Most jobs one batch may carry.
        max_batch: usize,
        /// Default per-request deadline, milliseconds.
        deadline_ms: Option<u64>,
        /// Per-solve watchdog budget, milliseconds.
        watchdog_ms: Option<u64>,
        /// Optional path for a Chrome trace of the whole serve run,
        /// written at shutdown.
        trace: Option<String>,
        /// Optional tuner-cache persistence file: loaded (if present)
        /// before serving, written back on graceful drain.
        tune_cache: Option<String>,
        /// Serve through the heterogeneous worker-pool fleet (cost-aware
        /// dispatcher over the platform presets, cross-device MultiPlan
        /// splits for large grids).
        fleet: bool,
    },
    /// Generate load against a solve server and report latency.
    Loadgen {
        /// Target server (`host:port`); `None` drives an in-process
        /// server instead.
        addr: Option<String>,
        /// Problem name.
        problem: String,
        /// Instance size.
        n: usize,
        /// Platform preset name.
        platform: String,
        /// Requests to send (0 = until `--duration` elapses).
        requests: usize,
        /// Open-loop arrival rate; `None` = closed loop.
        rps: Option<f64>,
        /// Wall-clock cap on the run, seconds.
        duration_s: Option<f64>,
        /// Closed-loop worker count.
        concurrency: usize,
        /// Per-request deadline, milliseconds.
        deadline_ms: Option<u64>,
        /// Skip the sequential-oracle answer check.
        no_verify: bool,
        /// Attempts per request (1 = no retries).
        retries: u32,
        /// Instance-size mix cycled round-robin across requests
        /// (empty = every request uses `n`).
        mix: Vec<usize>,
        /// Service class stamped on every request.
        priority: Priority,
        /// Tenant name stamped on every request (empty = unattributed).
        tenant: String,
        /// Drive the in-process server with the fleet backend.
        fleet: bool,
        /// Consume `POST /solve?stream=1` band streams and report
        /// time-to-first-band percentiles.
        stream: bool,
        /// Cap (milliseconds) on honoring 429/503 `Retry-After` hints.
        retry_after_cap_ms: Option<u64>,
    },
    /// Quick wall-clock benchmark of the real thread engine.
    Bench {
        /// Instance side per problem.
        n: usize,
        /// Run the score-only rolling-band benchmark instead of the
        /// full-table tier sweep.
        rolling: bool,
        /// Optional JSON output path (also printed to stdout).
        out: Option<String>,
    },
    /// Run a seeded fault-injection campaign (see docs/ROBUSTNESS.md).
    Chaos {
        /// Seed for the deterministic fault plan.
        seed: u64,
        /// Campaign intensity: `quick` or `heavy`.
        campaign: String,
        /// Optional JSON report output path (also printed to stdout).
        out: Option<String>,
    },
    /// Print usage.
    Help,
}

/// Problems the CLI knows how to build: every kernel in
/// [`lddp_problems::NAMES`] plus the `fig9` synthetic benchmark.
pub const PROBLEMS: &[&str] = &[
    "levenshtein",
    "lcs",
    "dtw",
    "checkerboard",
    "dithering",
    "seam",
    "maxsquare",
    "needleman-wunsch",
    "smith-waterman",
    "weighted-edit",
    "fig9",
];

/// Parses an argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let cmd = match it.next().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => return Ok(Command::Help),
        Some(c) => c,
    };
    let mut set = None;
    let mut problem = None;
    let mut n = None;
    let mut platform = "high".to_string();
    let mut t_switch = None;
    let mut t_share = None;
    let mut refined = false;
    let mut json = false;
    let mut out = None;
    let mut metrics = None;
    let mut addr = None;
    let mut workers = None;
    let mut queue_cap = None;
    let mut max_batch = None;
    let mut deadline_ms = None;
    let mut requests = None;
    let mut rps = None;
    let mut duration_s = None;
    let mut concurrency = None;
    let mut no_verify = false;
    let mut trace_out = None;
    let mut quick = false;
    let mut watchdog_ms = None;
    let mut retries = None;
    let mut seed = None;
    let mut campaign = None;
    let mut tune_cache = None;
    let mut fleet = false;
    let mut memory = None;
    let mut rolling = false;
    let mut mix: Vec<usize> = Vec::new();
    let mut batch_queue_cap = None;
    let mut tenant_rps = None;
    let mut tenant_burst = None;
    let mut priority = None;
    let mut tenant = None;
    let mut stream = false;
    let mut retry_after_cap_ms = None;
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--set" => {
                let v = it.next().ok_or("--set needs a value like W,NW,N")?;
                set = Some(parse_set(v)?);
            }
            "--problem" => {
                let v = it.next().ok_or("--problem needs a name")?;
                if !PROBLEMS.contains(&v.as_str()) {
                    return Err(format!(
                        "unknown problem '{v}'; expected one of {}",
                        PROBLEMS.join(", ")
                    ));
                }
                problem = Some(v.clone());
            }
            "--n" => {
                let v = it.next().ok_or("--n needs a number")?;
                n = Some(v.parse::<usize>().map_err(|e| format!("--n: {e}"))?);
            }
            "--platform" => {
                let v = it.next().ok_or("--platform needs high|low|cpu-only")?;
                if v != "high" && v != "low" && v != "cpu-only" {
                    return Err(format!(
                        "unknown platform '{v}'; expected high, low, or cpu-only"
                    ));
                }
                platform = v.clone();
            }
            "--t-switch" => {
                let v = it.next().ok_or("--t-switch needs a number")?;
                t_switch = Some(v.parse::<usize>().map_err(|e| format!("--t-switch: {e}"))?);
            }
            "--t-share" => {
                let v = it.next().ok_or("--t-share needs a number")?;
                t_share = Some(v.parse::<usize>().map_err(|e| format!("--t-share: {e}"))?);
            }
            "--refined" => refined = true,
            "--json" => json = true,
            "--out" => {
                let v = it.next().ok_or("--out needs a file path")?;
                out = Some(v.clone());
            }
            "--metrics" => {
                let v = it.next().ok_or("--metrics needs a file path")?;
                metrics = Some(v.clone());
            }
            "--addr" => {
                let v = it.next().ok_or("--addr needs host:port")?;
                addr = Some(v.clone());
            }
            "--workers" => {
                let v = it.next().ok_or("--workers needs a number")?;
                workers = Some(v.parse::<usize>().map_err(|e| format!("--workers: {e}"))?);
            }
            "--queue-cap" => {
                let v = it.next().ok_or("--queue-cap needs a number")?;
                queue_cap = Some(
                    v.parse::<usize>()
                        .map_err(|e| format!("--queue-cap: {e}"))?,
                );
            }
            "--max-batch" => {
                let v = it.next().ok_or("--max-batch needs a number")?;
                max_batch = Some(
                    v.parse::<usize>()
                        .map_err(|e| format!("--max-batch: {e}"))?,
                );
            }
            "--deadline-ms" => {
                let v = it.next().ok_or("--deadline-ms needs a number")?;
                deadline_ms = Some(
                    v.parse::<u64>()
                        .map_err(|e| format!("--deadline-ms: {e}"))?,
                );
            }
            "--requests" => {
                let v = it.next().ok_or("--requests needs a number")?;
                requests = Some(v.parse::<usize>().map_err(|e| format!("--requests: {e}"))?);
            }
            "--rps" => {
                let v = it.next().ok_or("--rps needs a number")?;
                let r = v.parse::<f64>().map_err(|e| format!("--rps: {e}"))?;
                if !r.is_finite() || r <= 0.0 {
                    return Err("--rps must be a positive number".into());
                }
                rps = Some(r);
            }
            "--duration" => {
                let v = it.next().ok_or("--duration needs seconds")?;
                let d = v.parse::<f64>().map_err(|e| format!("--duration: {e}"))?;
                if !d.is_finite() || d <= 0.0 {
                    return Err("--duration must be positive seconds".into());
                }
                duration_s = Some(d);
            }
            "--concurrency" => {
                let v = it.next().ok_or("--concurrency needs a number")?;
                concurrency = Some(
                    v.parse::<usize>()
                        .map_err(|e| format!("--concurrency: {e}"))?,
                );
            }
            "--no-verify" => no_verify = true,
            "--quick" => quick = true,
            "--rolling" => rolling = true,
            "--watchdog-ms" => {
                let v = it.next().ok_or("--watchdog-ms needs a number")?;
                watchdog_ms = Some(
                    v.parse::<u64>()
                        .map_err(|e| format!("--watchdog-ms: {e}"))?,
                );
            }
            "--retries" => {
                let v = it.next().ok_or("--retries needs a number")?;
                let r = v.parse::<u32>().map_err(|e| format!("--retries: {e}"))?;
                if r == 0 {
                    return Err("--retries counts attempts and must be at least 1".into());
                }
                retries = Some(r);
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a number")?;
                seed = Some(v.parse::<u64>().map_err(|e| format!("--seed: {e}"))?);
            }
            "--campaign" => {
                let v = it.next().ok_or("--campaign needs quick|heavy")?;
                if v != "quick" && v != "heavy" {
                    return Err(format!("unknown campaign '{v}'; expected quick or heavy"));
                }
                campaign = Some(v.clone());
            }
            "--trace" => {
                let v = it.next().ok_or("--trace needs a file path")?;
                trace_out = Some(v.clone());
            }
            "--tune-cache" => {
                let v = it.next().ok_or("--tune-cache needs a file path")?;
                tune_cache = Some(v.clone());
            }
            "--fleet" => fleet = true,
            "--memory" => {
                let v = it.next().ok_or("--memory needs full|rolling")?;
                memory = Some(MemoryMode::parse(v).ok_or_else(|| {
                    format!("unknown memory mode '{v}'; expected full or rolling")
                })?);
            }
            "--mix" => {
                let v = it.next().ok_or("--mix needs sizes like 48,96,1100")?;
                mix = v
                    .split(',')
                    .map(|s| s.trim().parse::<usize>().map_err(|e| format!("--mix: {e}")))
                    .collect::<Result<Vec<usize>, String>>()?;
                if mix.is_empty() || mix.iter().any(|&m| m < 2) {
                    return Err("--mix sizes must each be at least 2".into());
                }
            }
            "--batch-queue-cap" => {
                let v = it.next().ok_or("--batch-queue-cap needs a number")?;
                batch_queue_cap = Some(
                    v.parse::<usize>()
                        .map_err(|e| format!("--batch-queue-cap: {e}"))?,
                );
            }
            "--tenant-rps" => {
                let v = it.next().ok_or("--tenant-rps needs a rate")?;
                let r = v.parse::<f64>().map_err(|e| format!("--tenant-rps: {e}"))?;
                if !r.is_finite() || r <= 0.0 {
                    return Err("--tenant-rps must be a positive rate".into());
                }
                tenant_rps = Some(r);
            }
            "--tenant-burst" => {
                let v = it.next().ok_or("--tenant-burst needs a number")?;
                let b = v
                    .parse::<f64>()
                    .map_err(|e| format!("--tenant-burst: {e}"))?;
                if !b.is_finite() || b < 1.0 {
                    return Err("--tenant-burst must be at least 1".into());
                }
                tenant_burst = Some(b);
            }
            "--priority" => {
                let v = it.next().ok_or("--priority needs interactive|batch")?;
                priority = Some(Priority::parse(v).ok_or_else(|| {
                    format!("unknown priority '{v}'; expected interactive or batch")
                })?);
            }
            "--tenant" => {
                let v = it.next().ok_or("--tenant needs a name")?;
                tenant = Some(v.clone());
            }
            "--stream" => stream = true,
            "--retry-after-cap-ms" => {
                let v = it.next().ok_or("--retry-after-cap-ms needs milliseconds")?;
                retry_after_cap_ms = Some(
                    v.parse::<u64>()
                        .map_err(|e| format!("--retry-after-cap-ms: {e}"))?,
                );
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    match cmd {
        "classify" => Ok(Command::Classify {
            set: set.ok_or("classify requires --set")?,
        }),
        "solve" => {
            let params = match (t_switch, t_share) {
                (None, None) => None,
                (sw, sh) => Some(ScheduleParams::new(sw.unwrap_or(0), sh.unwrap_or(0))),
            };
            Ok(Command::Solve {
                problem: problem.ok_or("solve requires --problem")?,
                n: n.unwrap_or(1024),
                platform,
                params,
                json,
                memory,
            })
        }
        "balance" => Ok(Command::Balance {
            problem: problem.ok_or("balance requires --problem")?,
            n: n.unwrap_or(1024),
            platform,
            t_switch: t_switch.unwrap_or(0),
        }),
        "tune" => Ok(Command::Tune {
            problem: problem.ok_or("tune requires --problem")?,
            n: n.unwrap_or(1024),
            platform,
            refined,
        }),
        "compare" => Ok(Command::Compare {
            problem: problem.ok_or("compare requires --problem")?,
            n: n.unwrap_or(1024),
            platform,
            json,
        }),
        "trace" => {
            let params = match (t_switch, t_share) {
                (None, None) => None,
                (sw, sh) => Some(ScheduleParams::new(sw.unwrap_or(0), sh.unwrap_or(0))),
            };
            Ok(Command::Trace {
                problem: problem.ok_or("trace requires --problem")?,
                n: n.unwrap_or(512),
                platform,
                params,
                out: out.unwrap_or_else(|| "run.trace.json".to_string()),
                metrics,
            })
        }
        "serve" => Ok(Command::Serve {
            addr: addr.unwrap_or_else(|| "127.0.0.1:8700".to_string()),
            workers: workers.unwrap_or(4),
            queue_cap: queue_cap.unwrap_or(256),
            batch_queue_cap,
            tenant_rps,
            tenant_burst,
            max_batch: max_batch.unwrap_or(8),
            deadline_ms,
            watchdog_ms,
            trace: trace_out,
            tune_cache,
            fleet,
        }),
        "loadgen" => {
            let requests = requests.unwrap_or(100);
            if requests == 0 && duration_s.is_none() {
                return Err("loadgen needs --requests > 0 or --duration".into());
            }
            if fleet && addr.is_some() {
                return Err(
                    "loadgen --fleet drives the in-process server; point --addr at a \
                     `serve --fleet` instance instead"
                        .into(),
                );
            }
            Ok(Command::Loadgen {
                addr,
                problem: problem.ok_or("loadgen requires --problem")?,
                n: n.unwrap_or(256),
                platform,
                requests,
                rps,
                duration_s,
                concurrency: concurrency.unwrap_or(4),
                deadline_ms,
                no_verify,
                retries: retries.unwrap_or(1),
                mix,
                priority: priority.unwrap_or_default(),
                tenant: tenant.unwrap_or_default(),
                fleet,
                stream,
                retry_after_cap_ms,
            })
        }
        "bench" => {
            if quick == rolling {
                return Err(
                    "bench needs exactly one of --quick or --rolling (the full suite \
                     runs under `cargo bench`)"
                        .into(),
                );
            }
            Ok(Command::Bench {
                n: n.unwrap_or(512),
                rolling,
                out,
            })
        }
        "chaos" => Ok(Command::Chaos {
            seed: seed.unwrap_or(42),
            campaign: campaign.unwrap_or_else(|| "quick".to_string()),
            out,
        }),
        other => Err(format!("unknown command '{other}'; try help")),
    }
}

/// Parses "W,NW,N" style contributing sets (case-insensitive).
pub fn parse_set(text: &str) -> Result<ContributingSet, String> {
    let mut set = ContributingSet::EMPTY;
    for part in text.split(',') {
        let cell = match part.trim().to_ascii_uppercase().as_str() {
            "W" => RepCell::W,
            "NW" => RepCell::Nw,
            "N" => RepCell::N,
            "NE" => RepCell::Ne,
            other => return Err(format!("unknown representative cell '{other}'")),
        };
        set = set.with(cell);
    }
    if set.is_empty() {
        return Err("contributing set must not be empty".into());
    }
    Ok(set)
}

fn platform_by_name(name: &str) -> Platform {
    match name {
        "low" => hetero_low(),
        "cpu" | "cpu-only" => cpu_only(),
        _ => hetero_high(),
    }
}

/// Usage text.
pub fn usage() -> String {
    format!(
        "lddp-cli — heterogeneous LDDP framework driver\n\
         \n\
         USAGE:\n\
         \x20 lddp-cli classify --set W,NW,N\n\
         \x20 lddp-cli solve   --problem <name> [--n N] [--platform high|low]\n\
         \x20                  [--t-switch X] [--t-share Y] [--json]\n\
         \x20                  [--memory full|rolling]\n\
         \x20 lddp-cli tune    --problem <name> [--n N] [--platform high|low] [--refined]\n\
         \x20 lddp-cli balance --problem <name> [--n N] [--platform high|low] [--t-switch X]\n\
         \x20 lddp-cli compare --problem <name> [--n N] [--platform high|low] [--json]\n\
         \x20 lddp-cli trace   --problem <name> [--n N] [--platform high|low]\n\
         \x20                  [--t-switch X] [--t-share Y]\n\
         \x20                  [--out trace.json] [--metrics metrics.jsonl]\n\
         \x20 lddp-cli serve   [--addr host:port] [--workers W] [--queue-cap Q]\n\
         \x20                  [--batch-queue-cap Q] [--tenant-rps R] [--tenant-burst B]\n\
         \x20                  [--max-batch B] [--deadline-ms D] [--watchdog-ms W]\n\
         \x20                  [--trace serve.trace.json] [--tune-cache cache.json]\n\
         \x20                  [--fleet]\n\
         \x20 lddp-cli loadgen --problem <name> [--n N] [--platform high|low]\n\
         \x20                  [--addr host:port] [--requests R] [--rps RATE]\n\
         \x20                  [--duration S] [--concurrency C] [--deadline-ms D]\n\
         \x20                  [--no-verify] [--retries A] [--mix 48,96,1100]\n\
         \x20                  [--priority interactive|batch] [--tenant NAME] [--fleet]\n\
         \x20                  [--stream] [--retry-after-cap-ms MS]\n\
         \x20 lddp-cli bench   --quick|--rolling [--n N] [--out BENCH.json]\n\
         \x20 lddp-cli chaos   [--seed S] [--campaign quick|heavy] [--out report.json]\n\
         \n\
         `trace` writes a Perfetto-loadable Chrome trace-event timeline\n\
         (see docs/OBSERVABILITY.md). `serve` runs the batching solve\n\
         server (`--tune-cache` persists tuned params + tier across\n\
         restarts; `--fleet` serves through the heterogeneous worker-pool\n\
         fleet with a cost-aware dispatcher and cross-device MultiPlan\n\
         splits, see docs/FLEET.md); `loadgen` drives it and prints a\n\
         JSON latency report, checking answers against the sequential\n\
         oracle (docs/SERVING.md); `--mix` cycles requests through a\n\
         size mix to exercise the fleet dispatcher; `--priority` and\n\
         `--tenant` stamp every request with a QoS class / tenant for\n\
         overload experiments (`serve --tenant-rps` meters named\n\
         tenants, `--batch-queue-cap` bounds the batch class);\n\
         `--stream` consumes `POST /solve?stream=1` band streams and\n\
         reports time-to-first-band percentiles, and\n\
         `--retry-after-cap-ms` caps how much of a 429/503 Retry-After\n\
         hint is honored (default 2000).\n\
         Set LDDP_FORCE_TIER=scalar|bulk|simd|bitparallel to cap the\n\
         execution tier of every engine in the process.\n\
         `solve --memory rolling` keeps only the live wavefronts\n\
         (O(n+m) bytes instead of the full table); without the flag the\n\
         tuner picks the mode from the platform's table-memory budget\n\
         (see DESIGN.md, \"Memory tiers\"). `bench --rolling`\n\
         measures that tier's peak working set and throughput.\n\
         `chaos` runs a seeded fault-injection campaign across the engine\n\
         ladder, the hetero executor, and the serving stack, verifying\n\
         every recovered answer against the oracle (docs/ROBUSTNESS.md).\n\
         \n\
         PROBLEMS: {}\n",
        PROBLEMS.join(", ")
    )
}

/// A uniform summary of one run, ready to print.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Problem name.
    pub problem: String,
    /// Instance description.
    pub instance: String,
    /// Classified / executed patterns.
    pub patterns: String,
    /// Parameters used.
    pub params: ScheduleParams,
    /// Execution tier the table was (or would be) computed on.
    pub tier: ExecTier,
    /// Memory mode the table was computed in.
    pub memory_mode: MemoryMode,
    /// Peak DP working-set bytes: the full table, or the rolling band
    /// ring (three wavefronts).
    pub table_bytes: usize,
    /// Virtual time, ms.
    pub hetero_ms: f64,
    /// Headline answer (problem-specific).
    pub answer: String,
}

impl RunSummary {
    /// Renders the summary block. Full-table runs keep the historic
    /// format; rolling runs add one `memory` line with the working-set
    /// compression.
    pub fn render(&self) -> String {
        let memory = if self.memory_mode == MemoryMode::Rolling {
            format!(
                "\nmemory    : rolling ({} peak working set)",
                fmt_bytes(self.table_bytes)
            )
        } else {
            String::new()
        };
        format!(
            "problem   : {}\ninstance  : {}\npattern   : {}\nparams    : t_switch={} t_share={}\n\
             tier      : {}{}\ntime      : {:.3} ms (virtual)\nanswer    : {}",
            self.problem,
            self.instance,
            self.patterns,
            self.params.t_switch,
            self.params.t_share,
            self.tier,
            memory,
            self.hetero_ms,
            self.answer
        )
    }
}

/// Human-readable byte count (binary units, one decimal).
fn fmt_bytes(bytes: usize) -> String {
    const UNITS: [&str; 4] = ["B", "KiB", "MiB", "GiB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit + 1 < UNITS.len() {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.1} {}", UNITS[unit])
    }
}

/// [`RunSummary`] plus the observability extras a traced solve yields.
#[derive(Debug, Clone)]
pub struct SolveOutput {
    /// The human-readable summary block.
    pub summary: RunSummary,
    /// Instance size.
    pub n: usize,
    /// Platform preset name as requested (`high`/`low`).
    pub platform: String,
    /// Engine utilization over the run.
    pub utilization: Utilization,
    /// Per-phase cost breakdown.
    pub phases: Vec<PhaseStat>,
}

/// Builds and solves the named problem, returning the summary.
pub fn run_solve(
    problem: &str,
    n: usize,
    platform_name: &str,
    params: Option<ScheduleParams>,
) -> Result<RunSummary, String> {
    run_solve_traced(problem, n, platform_name, params, &NullSink).map(|o| o.summary)
}

/// Dispatches over the problem registry. For the named problem it binds
/// the deterministic instance at size `n` and invokes the caller's
/// `$go!(kernel_expr, (to_gpu_bytes, from_gpu_bytes), answer_closure)`
/// macro, where the answer closure has type
/// `|&Kernel, &Grid<Cell>| -> String`. Every driver that needs a
/// per-problem kernel (hetero solve, sequential oracle, classification,
/// tuning) goes through this one registry, so a new problem is added in
/// exactly one place.
macro_rules! with_problem {
    ($problem:expr, $n:expr, $go:ident) => {{
        let n: usize = $n;
        let seq = |seed: u64| crate::workloads::random_seq(n, 4, seed);
        match $problem {
            "levenshtein" => $go!(
                problems::LevenshteinKernel::new(seq(1), seq(2)),
                (2 * n, 8),
                |k: &problems::LevenshteinKernel, g: &Grid<u32>| {
                    let d = k.dims();
                    format!("edit distance = {}", g.get(d.rows - 1, d.cols - 1))
                }
            ),
            "lcs" => $go!(
                problems::LcsKernel::new(seq(3), seq(4)),
                (2 * n, 8),
                |k: &problems::LcsKernel, g: &Grid<u32>| {
                    let d = k.dims();
                    format!("LCS length = {}", g.get(d.rows - 1, d.cols - 1))
                }
            ),
            "dtw" => $go!(
                problems::DtwKernel::random_walk(n, n, 5),
                (8 * n, 8),
                |_k: &problems::DtwKernel, g: &Grid<f32>| {
                    format!("DTW distance = {:.3}", g.get(n - 1, n - 1))
                }
            ),
            "checkerboard" => $go!(
                problems::CheckerboardKernel::random(n, n, 9, 6),
                (n * n, 0),
                |_k: &problems::CheckerboardKernel, g: &Grid<u32>| {
                    let best = (0..n).map(|j| g.get(n - 1, j)).min().unwrap();
                    format!("cheapest path cost = {best}")
                }
            ),
            "dithering" => $go!(
                problems::DitherKernel::noise(n, n, 7),
                (n * n, n * n),
                |_k: &problems::DitherKernel, g: &Grid<problems::DitherCell>| {
                    let on = (0..n)
                        .flat_map(|i| (0..n).map(move |j| (i, j)))
                        .filter(|&(i, j)| g.get(i, j).out == 255)
                        .count();
                    format!("{on} of {} pixels on", n * n)
                }
            ),
            "seam" => $go!(
                problems::SeamCarvingKernel::new(
                    n,
                    n,
                    (0..n * n)
                        .map(|x| ((x as u64).wrapping_mul(2654435761) >> 7) as u32 % 64)
                        .collect(),
                ),
                (4 * n * n, 0),
                |_k: &problems::SeamCarvingKernel, g: &Grid<u64>| {
                    let best = (0..n).map(|j| g.get(n - 1, j)).min().unwrap();
                    format!("minimal seam energy = {best}")
                }
            ),
            "maxsquare" => $go!(
                problems::MaxSquareKernel::random(n, n, 0.8, 8),
                (n * n / 8, 8),
                |_k: &problems::MaxSquareKernel, g: &Grid<u32>| {
                    let mut best = 0;
                    for i in 0..n {
                        for j in 0..n {
                            best = best.max(g.get(i, j));
                        }
                    }
                    format!("largest all-ones square side = {best}")
                }
            ),
            "needleman-wunsch" => $go!(
                problems::NeedlemanWunschKernel::new(seq(9), seq(10)),
                (2 * n, 8),
                |k: &problems::NeedlemanWunschKernel, g: &Grid<i32>| {
                    let d = k.dims();
                    format!("global alignment score = {}", g.get(d.rows - 1, d.cols - 1))
                }
            ),
            "smith-waterman" => $go!(
                problems::SmithWatermanKernel::new(seq(11), seq(12)),
                (2 * n, 8),
                |k: &problems::SmithWatermanKernel, g: &Grid<problems::SwCell>| {
                    let d = k.dims();
                    let mut best = 0;
                    for i in 0..d.rows {
                        for j in 0..d.cols {
                            best = best.max(g.get(i, j).best());
                        }
                    }
                    format!("best local alignment score = {best}")
                }
            ),
            "weighted-edit" => $go!(
                problems::WeightedEditKernel::new(
                    seq(13),
                    seq(14),
                    problems::weighted_edit::EditCosts::default(),
                ),
                (2 * n, 8),
                |k: &problems::WeightedEditKernel, g: &Grid<u32>| {
                    format!("weighted edit distance = {}", k.distance_from(g))
                }
            ),
            "fig9" => $go!(
                problems::synthetic::fig9_kernel(lddp_core::wavefront::Dims::new(n, n), 1),
                (0, 0),
                |_k: &_, g: &Grid<u32>| { format!("corner value = {}", g.get(n - 1, n - 1)) }
            ),
            other => Err(format!("unknown problem '{other}'")),
        }
    }};
}

/// Builds and solves the named problem with observability: tuner sweep
/// points and the run's phase/wave/transfer events go into `sink`, and
/// the output carries utilization + per-phase stats for rendering.
pub fn run_solve_traced(
    problem: &str,
    n: usize,
    platform_name: &str,
    params: Option<ScheduleParams>,
    sink: &dyn TraceSink,
) -> Result<SolveOutput, String> {
    let platform = platform_by_name(platform_name);
    macro_rules! go {
        ($kernel:expr, $io:expr, $answer:expr) => {{
            let kernel = $kernel;
            let fw = Framework::new(platform.clone()).with_io_bytes($io.0, $io.1);
            let solution = fw
                .solve_traced(&kernel, params, sink)
                .map_err(|e| e.to_string())?;
            let class = &solution.classification;
            Ok(SolveOutput {
                summary: RunSummary {
                    problem: problem.to_string(),
                    instance: format!("{n} x {n} on {}", platform.name),
                    patterns: format!(
                        "{} → executed as {}",
                        class.raw_pattern, class.exec_pattern
                    ),
                    params: solution.params,
                    tier: solution.tier,
                    memory_mode: MemoryMode::Full,
                    table_bytes: rolling::full_table_bytes(&kernel),
                    hetero_ms: solution.total_s * 1e3,
                    answer: $answer(&kernel, &solution.grid),
                },
                n,
                platform: platform_name.to_string(),
                utilization: utilization(&solution.breakdown, solution.total_s),
                phases: solution.phases.clone(),
            })
        }};
    }
    with_problem!(problem, n, go)
}

/// Solves the named problem on the sequential row-major reference
/// engine and returns the same headline answer string the solve paths
/// print. This is the oracle the serving load generator checks
/// responses against: instances are deterministic in `(problem, n)`, so
/// equal answers mean the heterogeneous execution computed the same
/// table.
pub fn run_solve_seq(problem: &str, n: usize) -> Result<String, String> {
    macro_rules! oracle {
        ($kernel:expr, $io:expr, $answer:expr) => {{
            let kernel = $kernel;
            let _ = $io;
            let grid = lddp_core::seq::solve_row_major(&kernel).map_err(|e| e.to_string())?;
            Ok($answer(&kernel, &grid))
        }};
    }
    with_problem!(problem, n, oracle)
}

/// Builds and solves the named problem on a shared thread-pool engine —
/// the serving hot path. The table is computed by `engine`'s persistent
/// workers (reusing their threads and barrier across requests, through
/// the bulk or SIMD interior-run path where the kernel provides one),
/// while the reported virtual time is the framework's cost-model
/// estimate for the given parameters, so timings stay comparable with
/// the traced solve path.
///
/// `tier` pins the execution tier (a cached tuner decision); `None`
/// lets the engine pick. [`ExecTier::BitParallel`] is honored for
/// `lcs`, where the answer is a length, not a table — the bit-parallel
/// row kernel computes it without materializing the grid; every other
/// problem downgrades it to the best grid tier.
pub fn run_solve_pooled(
    problem: &str,
    n: usize,
    platform_name: &str,
    params: ScheduleParams,
    tier: Option<ExecTier>,
    engine: &crate::parallel::ParallelEngine,
) -> Result<RunSummary, String> {
    let platform = platform_by_name(platform_name);
    if tier == Some(ExecTier::BitParallel) && problem == "lcs" {
        return run_solve_bitparallel_lcs(n, platform_name, params);
    }
    let engine = engine.clone().with_tier(tier);
    macro_rules! pooled {
        ($kernel:expr, $io:expr, $answer:expr) => {{
            let kernel = $kernel;
            let fw = Framework::new(platform.clone()).with_io_bytes($io.0, $io.1);
            let class = fw.classify(&kernel).map_err(|e| e.to_string())?;
            let hetero_s = fw.estimate(&kernel, params).map_err(|e| e.to_string())?;
            let exec_tier = engine.select_tier(&kernel);
            let grid = engine.solve(&kernel).map_err(|e| e.to_string())?;
            Ok(RunSummary {
                problem: problem.to_string(),
                instance: format!("{n} x {n} on {}", platform.name),
                patterns: format!("{} → executed as {}", class.raw_pattern, class.exec_pattern),
                params,
                tier: exec_tier,
                memory_mode: MemoryMode::Full,
                table_bytes: rolling::full_table_bytes(&kernel),
                hetero_ms: hetero_s * 1e3,
                answer: $answer(&kernel, &grid),
            })
        }};
    }
    with_problem!(problem, n, pooled)
}

/// The `lcs` instance solved by the bit-parallel row kernel
/// ([`problems::lcs::lcs_length_bitparallel`]): the length comes out of
/// machine-word bit operations, no DP grid is materialized. Instance
/// seeds match the registry's `lcs` arm, so the answer string is
/// identical to every grid path's.
fn run_solve_bitparallel_lcs(
    n: usize,
    platform_name: &str,
    params: ScheduleParams,
) -> Result<RunSummary, String> {
    let platform = platform_by_name(platform_name);
    let a = crate::workloads::random_seq(n, 4, 3);
    let b = crate::workloads::random_seq(n, 4, 4);
    let kernel = problems::LcsKernel::new(a.clone(), b.clone());
    let fw = Framework::new(platform.clone()).with_io_bytes(2 * n, 8);
    let class = fw.classify(&kernel).map_err(|e| e.to_string())?;
    let hetero_s = fw.estimate(&kernel, params).map_err(|e| e.to_string())?;
    let len = problems::lcs::lcs_length_bitparallel(&a, &b);
    Ok(RunSummary {
        problem: "lcs".to_string(),
        instance: format!("{n} x {n} on {}", platform.name),
        patterns: format!("{} → executed as {}", class.raw_pattern, class.exec_pattern),
        params,
        tier: ExecTier::BitParallel,
        memory_mode: MemoryMode::Full,
        // No grid: 256 per-symbol match masks plus the row state.
        table_bytes: (256 + 1) * n.div_ceil(64) * 8,
        hetero_ms: hetero_s * 1e3,
        answer: format!("LCS length = {len}"),
    })
}

/// [`run_solve_pooled`] under fault injection — the chaos serving path.
/// The table is computed through the engine's graceful-degradation
/// ladder ([`solve_degrading`](crate::parallel::ParallelEngine::solve_degrading)),
/// and a device fault drawn from the injector degrades the cost model
/// from heterogeneous to the CPU-only baseline instead of failing the
/// request. Returns the summary plus the wire codes of every rung taken
/// (e.g. `"bulk_to_scalar"`); an empty vector means the fully
/// configured path served the request.
#[allow(clippy::too_many_arguments)]
pub fn run_solve_pooled_chaos(
    problem: &str,
    n: usize,
    platform_name: &str,
    params: ScheduleParams,
    tier: Option<ExecTier>,
    engine: &crate::parallel::ParallelEngine,
    injector: &dyn FaultInjector,
) -> Result<(RunSummary, Vec<String>), String> {
    let platform = platform_by_name(platform_name);
    // Under injection every solve must be able to walk the degradation
    // ladder, so a bit-parallel pin falls back to the grid tiers here.
    let engine = engine.clone().with_tier(tier);
    macro_rules! chaos_pooled {
        ($kernel:expr, $io:expr, $answer:expr) => {{
            let kernel = $kernel;
            let fw = Framework::new(platform.clone()).with_io_bytes($io.0, $io.1);
            let class = fw.classify(&kernel).map_err(|e| e.to_string())?;
            let mut degraded: Vec<String> = Vec::new();
            // One device-fault draw per request: the modelled device
            // dying costs the request its heterogeneous speedup, not
            // its answer.
            let hetero_s = if injector.active() && injector.device_fault(0) {
                degraded.push(DegradeStep::HeteroToCpuOnly.code().to_string());
                fw.cpu_baseline(&kernel).map_err(|e| e.to_string())?
            } else {
                fw.estimate(&kernel, params).map_err(|e| e.to_string())?
            };
            let exec_tier = engine.select_tier(&kernel);
            let (grid, steps) = engine
                .solve_degrading(&kernel, injector)
                .map_err(|e| e.to_string())?;
            degraded.extend(steps.iter().map(|s| s.code().to_string()));
            Ok((
                RunSummary {
                    problem: problem.to_string(),
                    instance: format!("{n} x {n} on {}", platform.name),
                    patterns: format!(
                        "{} → executed as {}",
                        class.raw_pattern, class.exec_pattern
                    ),
                    params,
                    tier: exec_tier,
                    memory_mode: MemoryMode::Full,
                    table_bytes: rolling::full_table_bytes(&kernel),
                    hetero_ms: hetero_s * 1e3,
                    answer: $answer(&kernel, &grid),
                },
                degraded,
            ))
        }};
    }
    with_problem!(problem, n, chaos_pooled)
}

/// Builds and solves the named problem in rolling (wave-band) memory
/// mode on a shared thread-pool engine: no DP grid is materialized,
/// only the ring of three live wavefronts (`O(n + m)` bytes), and the
/// headline answer comes from the captured corner cell — or, for
/// `smith-waterman`, the running arg-best cell. Instance seeds and
/// answer strings are identical to the full-table paths byte for byte,
/// so the sequential oracle check passes unchanged. Problems whose
/// answer needs the whole table (see [`rolling_supported`]) return
/// `Err`.
pub fn run_solve_rolling(
    problem: &str,
    n: usize,
    platform_name: &str,
    params: ScheduleParams,
    tier: Option<ExecTier>,
    engine: &crate::parallel::ParallelEngine,
) -> Result<RunSummary, String> {
    run_solve_rolling_inner(problem, n, platform_name, params, tier, engine, None)
        .map(|(summary, _)| summary)
}

/// [`run_solve_rolling`] under fault injection — the chaos serving
/// path, mirroring [`run_solve_pooled_chaos`]: the engine walks the
/// rolling degradation ladder and a device fault degrades the cost
/// model to the CPU-only baseline. Returns the summary plus the wire
/// codes of every rung taken.
#[allow(clippy::too_many_arguments)]
pub fn run_solve_rolling_chaos(
    problem: &str,
    n: usize,
    platform_name: &str,
    params: ScheduleParams,
    tier: Option<ExecTier>,
    engine: &crate::parallel::ParallelEngine,
    injector: &dyn FaultInjector,
) -> Result<(RunSummary, Vec<String>), String> {
    run_solve_rolling_inner(
        problem,
        n,
        platform_name,
        params,
        tier,
        engine,
        Some(injector),
    )
}

#[allow(clippy::too_many_arguments)]
fn run_solve_rolling_inner(
    problem: &str,
    n: usize,
    platform_name: &str,
    params: ScheduleParams,
    tier: Option<ExecTier>,
    engine: &crate::parallel::ParallelEngine,
    injector: Option<&dyn FaultInjector>,
) -> Result<(RunSummary, Vec<String>), String> {
    let platform = platform_by_name(platform_name);
    // A bit-parallel pin has no band analogue (it is already gridless);
    // let the engine pick the best band tier instead.
    let engine = engine.clone().with_tier(match tier {
        Some(ExecTier::BitParallel) => None,
        t => t,
    });
    let seq = |seed: u64| crate::workloads::random_seq(n, 4, seed);
    macro_rules! roll {
        ($kernel:expr, $io:expr, $best:expr, $answer:expr) => {{
            let kernel = $kernel;
            let fw = Framework::new(platform.clone()).with_io_bytes($io.0, $io.1);
            let class = fw.classify(&kernel).map_err(|e| e.to_string())?;
            let mut degraded: Vec<String> = Vec::new();
            let hetero_s = match injector {
                Some(inj) if inj.active() && inj.device_fault(0) => {
                    degraded.push(DegradeStep::HeteroToCpuOnly.code().to_string());
                    fw.cpu_baseline(&kernel).map_err(|e| e.to_string())?
                }
                _ => fw.estimate(&kernel, params).map_err(|e| e.to_string())?,
            };
            let solve = match injector {
                Some(inj) => {
                    let (solve, steps) = engine
                        .solve_rolling_degrading(&kernel, $best, inj)
                        .map_err(|e| e.to_string())?;
                    degraded.extend(steps.iter().map(|s| s.code().to_string()));
                    solve
                }
                None => engine
                    .solve_rolling(&kernel, $best)
                    .map_err(|e| e.to_string())?,
            };
            let answer = $answer(&solve);
            Ok((
                RunSummary {
                    problem: problem.to_string(),
                    instance: format!("{n} x {n} on {}", platform.name),
                    patterns: format!(
                        "{} → executed as {}",
                        class.raw_pattern, class.exec_pattern
                    ),
                    params,
                    tier: solve.tier,
                    memory_mode: MemoryMode::Rolling,
                    table_bytes: solve.peak_bytes,
                    hetero_ms: hetero_s * 1e3,
                    answer,
                },
                degraded,
            ))
        }};
    }
    use crate::parallel::RollingSolve;
    match problem {
        "levenshtein" => roll!(
            problems::LevenshteinKernel::new(seq(1), seq(2)),
            (2 * n, 8),
            None,
            |s: &RollingSolve<u32>| format!("edit distance = {}", s.corner.unwrap_or_default())
        ),
        "lcs" => roll!(
            problems::LcsKernel::new(seq(3), seq(4)),
            (2 * n, 8),
            None,
            |s: &RollingSolve<u32>| format!("LCS length = {}", s.corner.unwrap_or_default())
        ),
        "dtw" => roll!(
            problems::DtwKernel::random_walk(n, n, 5),
            (8 * n, 8),
            None,
            |s: &RollingSolve<f32>| format!("DTW distance = {:.3}", s.corner.unwrap_or_default())
        ),
        "needleman-wunsch" => roll!(
            problems::NeedlemanWunschKernel::new(seq(9), seq(10)),
            (2 * n, 8),
            None,
            |s: &RollingSolve<i32>| format!(
                "global alignment score = {}",
                s.corner.unwrap_or_default()
            )
        ),
        "smith-waterman" => roll!(
            problems::SmithWatermanKernel::new(seq(11), seq(12)),
            (2 * n, 8),
            Some(|c: &problems::SwCell| c.best() as i64),
            |s: &RollingSolve<problems::SwCell>| {
                let best = s.best.map(|(_, _, c)| c.best()).unwrap_or(0);
                format!("best local alignment score = {best}")
            }
        ),
        other if PROBLEMS.contains(&other) => Err(format!(
            "problem '{other}' has no rolling-mode solve (its answer needs the full table)"
        )),
        other => Err(format!("unknown problem '{other}'")),
    }
}

/// [`run_solve_rolling`] that streams sealed wave bands while the pool
/// keeps solving — the backend of `POST /solve?stream=1`. The schedule
/// is cut into at most `bands` near-equal-cell slices and `emit` is
/// called once per band, in order, from behind the band's sealing
/// barrier; a blocking `emit` stalls the pool (backpressure), and an
/// `emit` returning `false` stops emission while the solve completes.
/// Instance seeds and the answer string are byte-identical to
/// [`run_solve_rolling`] and the full-table paths.
#[allow(clippy::too_many_arguments)]
pub fn run_solve_rolling_stream(
    problem: &str,
    n: usize,
    platform_name: &str,
    params: ScheduleParams,
    tier: Option<ExecTier>,
    engine: &crate::parallel::ParallelEngine,
    bands: usize,
    emit: &(dyn Fn(lddp_core::rolling::BandEvent) -> bool + Sync),
) -> Result<RunSummary, String> {
    let platform = platform_by_name(platform_name);
    // As in the plain rolling path: a bit-parallel pin has no band
    // analogue, so let the engine pick the best band tier.
    let engine = engine.clone().with_tier(match tier {
        Some(ExecTier::BitParallel) => None,
        t => t,
    });
    let seq = |seed: u64| crate::workloads::random_seq(n, 4, seed);
    macro_rules! roll_stream {
        ($kernel:expr, $io:expr, $best:expr, $score:expr, $answer:expr) => {{
            let kernel = $kernel;
            let fw = Framework::new(platform.clone()).with_io_bytes($io.0, $io.1);
            let class = fw.classify(&kernel).map_err(|e| e.to_string())?;
            let hetero_s = fw.estimate(&kernel, params).map_err(|e| e.to_string())?;
            let hook = crate::parallel::StreamHook {
                bands,
                score_of: $score,
                emit,
            };
            let solve = engine
                .solve_rolling_stream(&kernel, $best, &hook)
                .map_err(|e| e.to_string())?;
            let answer = $answer(&solve);
            Ok(RunSummary {
                problem: problem.to_string(),
                instance: format!("{n} x {n} on {}", platform.name),
                patterns: format!("{} → executed as {}", class.raw_pattern, class.exec_pattern),
                params,
                tier: solve.tier,
                memory_mode: MemoryMode::Rolling,
                table_bytes: solve.peak_bytes,
                hetero_ms: hetero_s * 1e3,
                answer,
            })
        }};
    }
    use crate::parallel::RollingSolve;
    match problem {
        "levenshtein" => roll_stream!(
            problems::LevenshteinKernel::new(seq(1), seq(2)),
            (2 * n, 8),
            None,
            |c: &u32| *c as f64,
            |s: &RollingSolve<u32>| format!("edit distance = {}", s.corner.unwrap_or_default())
        ),
        "lcs" => roll_stream!(
            problems::LcsKernel::new(seq(3), seq(4)),
            (2 * n, 8),
            None,
            |c: &u32| *c as f64,
            |s: &RollingSolve<u32>| format!("LCS length = {}", s.corner.unwrap_or_default())
        ),
        "dtw" => roll_stream!(
            problems::DtwKernel::random_walk(n, n, 5),
            (8 * n, 8),
            None,
            |c: &f32| *c as f64,
            |s: &RollingSolve<f32>| format!("DTW distance = {:.3}", s.corner.unwrap_or_default())
        ),
        "needleman-wunsch" => roll_stream!(
            problems::NeedlemanWunschKernel::new(seq(9), seq(10)),
            (2 * n, 8),
            None,
            |c: &i32| *c as f64,
            |s: &RollingSolve<i32>| format!(
                "global alignment score = {}",
                s.corner.unwrap_or_default()
            )
        ),
        "smith-waterman" => roll_stream!(
            problems::SmithWatermanKernel::new(seq(11), seq(12)),
            (2 * n, 8),
            Some(|c: &problems::SwCell| c.best() as i64),
            |c: &problems::SwCell| c.best() as f64,
            |s: &RollingSolve<problems::SwCell>| {
                let best = s.best.map(|(_, _, c)| c.best()).unwrap_or(0);
                format!("best local alignment score = {best}")
            }
        ),
        other if PROBLEMS.contains(&other) => Err(format!(
            "problem '{other}' has no rolling-mode solve (its answer needs the full table)"
        )),
        other => Err(format!("unknown problem '{other}'")),
    }
}

/// The §IV cost model's virtual-time estimate for one instance on one
/// platform preset with the given (already legalized) parameters — the
/// scoring input of the fleet dispatcher, which compares this estimate
/// across every pool before placing a batch.
pub fn estimate_virtual(
    problem: &str,
    n: usize,
    platform_name: &str,
    params: ScheduleParams,
) -> Result<f64, String> {
    let platform = platform_by_name(platform_name);
    macro_rules! est_of {
        ($kernel:expr, $io:expr, $answer:expr) => {{
            let kernel = $kernel;
            // Dead call pins the answer closure's kernel-parameter type
            // (some registry arms annotate it as `&_`).
            if false {
                let g = lddp_core::seq::solve_row_major(&kernel).map_err(|e| e.to_string())?;
                let _: String = $answer(&kernel, &g);
            }
            let fw = Framework::new(platform.clone()).with_io_bytes($io.0, $io.1);
            let class = fw.classify(&kernel).map_err(|e| e.to_string())?;
            let legal = params.clamped_for(class.exec_pattern, kernel.dims());
            fw.estimate(&kernel, legal).map_err(|e| e.to_string())
        }};
    }
    with_problem!(problem, n, est_of)
}

/// The simulated device set cross-device splits run on: the Hetero-High
/// CPU as device 0, then the fleet's two GPUs (K20 and GT650M) cycled
/// until `devices` are filled.
fn fleet_multi_platform(devices: usize) -> hetero_sim::multi::MultiPlatform {
    let high = hetero_high();
    let low = hetero_low();
    let accels = (1..devices)
        .map(|d| {
            if d % 2 == 1 {
                hetero_sim::multi::Accelerator {
                    name: "K20".into(),
                    gpu: high.gpu.clone(),
                    link: high.link.clone(),
                }
            } else {
                hetero_sim::multi::Accelerator {
                    name: "GT650M".into(),
                    gpu: low.gpu.clone(),
                    link: low.link.clone(),
                }
            }
        })
        .collect();
    hetero_sim::multi::MultiPlatform {
        name: "fleet multi-device".into(),
        cpu: high.cpu,
        accels,
    }
}

/// Solves one instance as a `devices`-way cross-device [`MultiPlan`]
/// column-band split (§VII made concrete): even band boundaries, the
/// tuned `t_switch` re-legalized **per band** (satellite of the fleet
/// work — a parameter tuned on the whole grid can be illegal for a
/// narrow band), functional execution with per-device grids, and the
/// reassembled table's answer. Problems whose raw pattern needs a
/// kernel adapter (transposed/mirrored execution) have no direct band
/// split and return `Err` — callers fall back to a pooled solve.
///
/// [`MultiPlan`]: lddp_core::multi::MultiPlan
pub fn run_solve_multi(
    problem: &str,
    n: usize,
    params: ScheduleParams,
    devices: usize,
) -> Result<RunSummary, String> {
    if devices < 2 {
        return Err("a cross-device split needs at least 2 devices".into());
    }
    let platform = fleet_multi_platform(devices);
    macro_rules! multi_of {
        ($kernel:expr, $io:expr, $answer:expr) => {{
            let kernel = $kernel;
            let _ = $io;
            let set = kernel.contributing_set();
            let raw = classify(set).ok_or("empty contributing set")?;
            if !raw.is_canonical() {
                return Err(format!(
                    "problem '{problem}' executes {raw} through an adapter; \
                     no direct cross-device band split"
                ));
            }
            let dims = kernel.dims();
            let boundaries = crate::fleet::split_bands(dims.cols, devices);
            // Per-band re-legalization: the plan carries one t_switch,
            // so take the strictest of the per-band clamps (each band
            // checked against its own rows × width dims, not the grid).
            let t_switch =
                crate::fleet::per_band_params(params, raw, dims.rows, &boundaries, dims.cols)
                    .iter()
                    .map(|p| p.t_switch)
                    .chain(std::iter::once(params.clamped_for(raw, dims).t_switch))
                    .min()
                    .unwrap_or(0);
            let plan = lddp_core::multi::MultiPlan::new(raw, set, dims, t_switch, boundaries)
                .map_err(|e| e.to_string())?;
            let report = hetero_sim::multi::run_multi(&kernel, &plan, &platform, true)
                .map_err(|e| e.to_string())?;
            let grid = report.grid.expect("functional multi run returns a grid");
            Ok(RunSummary {
                problem: problem.to_string(),
                instance: format!("{n} x {n} split {}-way on {}", devices, platform.name),
                patterns: format!("{raw} → {} column bands", devices),
                params: ScheduleParams::new(t_switch, params.t_share),
                tier: ExecTier::Scalar,
                memory_mode: MemoryMode::Full,
                table_bytes: rolling::full_table_bytes(&kernel),
                hetero_ms: report.total_s * 1e3,
                answer: $answer(&kernel, &grid),
            })
        }};
    }
    with_problem!(problem, n, multi_of)
}

/// Projects a grid cell to the `f64` frontier score a streamed band
/// frame carries — the per-cell-type half of
/// [`run_solve_multi_stream`], which is generic over the registry's
/// cell types but needs one number per band boundary.
trait BandScore {
    fn band_score(&self) -> f64;
}

macro_rules! band_score_as_f64 {
    ($($ty:ty),*) => {$(
        impl BandScore for $ty {
            fn band_score(&self) -> f64 {
                *self as f64
            }
        }
    )*};
}

band_score_as_f64!(u32, i32, u64, f32);

impl BandScore for problems::SwCell {
    fn band_score(&self) -> f64 {
        self.best() as f64
    }
}

impl BandScore for problems::DitherCell {
    fn band_score(&self) -> f64 {
        self.out as f64
    }
}

/// [`run_solve_multi`] that emits one frame per device band as the
/// cross-device split reassembles — the fleet's `MultiPlan` leg of
/// `POST /solve?stream=1`. The split is by *columns*, not waves, so a
/// frame's `wave_lo..=wave_hi` range is reinterpreted as the band's
/// column range, `rows_completed` only reaches `rows` on the final
/// band (a grid row seals at its last column), and `score` is the
/// bottom cell of the band's last column. Emission is observation
/// only: the answer is identical to [`run_solve_multi`], and an `emit`
/// returning `false` stops further frames without touching the solve.
pub fn run_solve_multi_stream(
    problem: &str,
    n: usize,
    params: ScheduleParams,
    devices: usize,
    emit: &(dyn Fn(lddp_core::rolling::BandEvent) -> bool + Sync),
) -> Result<RunSummary, String> {
    if devices < 2 {
        return Err("a cross-device split needs at least 2 devices".into());
    }
    let platform = fleet_multi_platform(devices);
    macro_rules! multi_stream_of {
        ($kernel:expr, $io:expr, $answer:expr) => {{
            let kernel = $kernel;
            let _ = $io;
            let set = kernel.contributing_set();
            let raw = classify(set).ok_or("empty contributing set")?;
            if !raw.is_canonical() {
                return Err(format!(
                    "problem '{problem}' executes {raw} through an adapter; \
                     no direct cross-device band split"
                ));
            }
            let dims = kernel.dims();
            let boundaries = crate::fleet::split_bands(dims.cols, devices);
            let t_switch =
                crate::fleet::per_band_params(params, raw, dims.rows, &boundaries, dims.cols)
                    .iter()
                    .map(|p| p.t_switch)
                    .chain(std::iter::once(params.clamped_for(raw, dims).t_switch))
                    .min()
                    .unwrap_or(0);
            let plan = lddp_core::multi::MultiPlan::new(raw, set, dims, t_switch, boundaries)
                .map_err(|e| e.to_string())?;
            let report = hetero_sim::multi::run_multi(&kernel, &plan, &platform, true)
                .map_err(|e| e.to_string())?;
            let grid = report.grid.expect("functional multi run returns a grid");
            // One frame per device band, cut at the plan's column
            // boundaries, scored off the reassembled table.
            let bounds = crate::fleet::split_bands(dims.cols, devices);
            let cells_total = (dims.rows * dims.cols) as u64;
            let mut lo = 0usize;
            let mut cells_done = 0u64;
            for (band, hi) in bounds
                .iter()
                .copied()
                .chain(std::iter::once(dims.cols))
                .enumerate()
            {
                if hi <= lo {
                    // Degenerate (empty) band: more devices than
                    // columns. Nothing sealed, nothing to frame.
                    continue;
                }
                cells_done += (dims.rows * (hi - lo)) as u64;
                let last = hi == dims.cols;
                let frame = lddp_core::rolling::BandEvent {
                    band,
                    bands: devices,
                    wave_lo: lo,
                    wave_hi: hi - 1,
                    rows_completed: if last { dims.rows } else { 0 },
                    rows: dims.rows,
                    cells_done,
                    cells_total,
                    score: grid.get(dims.rows - 1, hi - 1).band_score(),
                    best: None,
                };
                lo = hi;
                if !emit(frame) {
                    break;
                }
            }
            Ok(RunSummary {
                problem: problem.to_string(),
                instance: format!("{n} x {n} split {}-way on {}", devices, platform.name),
                patterns: format!("{raw} → {} column bands", devices),
                params: ScheduleParams::new(t_switch, params.t_share),
                tier: ExecTier::Scalar,
                memory_mode: MemoryMode::Full,
                table_bytes: rolling::full_table_bytes(&kernel),
                hetero_ms: report.total_s * 1e3,
                answer: $answer(&kernel, &grid),
            })
        }};
    }
    with_problem!(problem, n, multi_stream_of)
}

/// The execution pattern the framework classifies the named problem to
/// — the pattern half of a [`lddp_core::tuner_cache::TuneKey`].
pub fn classify_problem(problem: &str, n: usize) -> Result<lddp_core::pattern::Pattern, String> {
    macro_rules! class_of {
        ($kernel:expr, $io:expr, $answer:expr) => {{
            let kernel = $kernel;
            let _ = $io;
            // Dead call pins the answer closure's kernel-parameter type
            // (some registry arms annotate it as `&_`).
            if false {
                let g = lddp_core::seq::solve_row_major(&kernel).map_err(|e| e.to_string())?;
                let _: String = $answer(&kernel, &g);
            }
            let class = lddp_core::framework::choose_execution(kernel.contributing_set())
                .map_err(|e| e.to_string())?;
            Ok(class.exec_pattern)
        }};
    }
    with_problem!(problem, n, class_of)
}

/// Runs the §V-A two-stage sweep for the named instance and returns the
/// tuned parameters — the expensive step the serving tuner cache
/// amortizes across batches.
pub fn tune_params(problem: &str, n: usize, platform_name: &str) -> Result<ScheduleParams, String> {
    let platform = platform_by_name(platform_name);
    macro_rules! tune_of {
        ($kernel:expr, $io:expr, $answer:expr) => {{
            let kernel = $kernel;
            // Dead call pins the answer closure's kernel-parameter type
            // (some registry arms annotate it as `&_`).
            if false {
                let g = lddp_core::seq::solve_row_major(&kernel).map_err(|e| e.to_string())?;
                let _: String = $answer(&kernel, &g);
            }
            let fw = Framework::new(platform.clone()).with_io_bytes($io.0, $io.1);
            let tuned = fw.tune(&kernel).map_err(|e| e.to_string())?;
            Ok(tuned.params)
        }};
    }
    with_problem!(problem, n, tune_of)
}

/// The execution tier `engine` selects for the named instance, with no
/// measurement — availability-based (pattern + fast-path hooks + host
/// SIMD support). Used where a tier is needed without paying for the
/// wall-clock sweep (pinned-parameter serving requests, JSON output).
pub fn select_tier(
    problem: &str,
    n: usize,
    engine: &crate::parallel::ParallelEngine,
) -> Result<ExecTier, String> {
    macro_rules! tier_of {
        ($kernel:expr, $io:expr, $answer:expr) => {{
            let kernel = $kernel;
            let _ = $io;
            // Dead call pins the answer closure's kernel-parameter type
            // (some registry arms annotate it as `&_`).
            if false {
                let g = lddp_core::seq::solve_row_major(&kernel).map_err(|e| e.to_string())?;
                let _: String = $answer(&kernel, &g);
            }
            Ok(engine.select_tier(&kernel))
        }};
    }
    with_problem!(problem, n, tier_of)
}

/// Problems the rolling (wave-band) memory mode can serve: anti-diagonal
/// wave kernels whose headline answer is the corner value or the best
/// cell, both captured on the fly — no full table, no traceback needed.
pub fn rolling_supported(problem: &str) -> bool {
    matches!(
        problem,
        "levenshtein" | "lcs" | "dtw" | "needleman-wunsch" | "smith-waterman"
    )
}

/// DP-table memory budget of a platform preset, in bytes — the knob the
/// tuner's memory-mode axis compares the full-table footprint against.
/// Hetero-Low models a 1 GiB-card laptop, so it gets the tight budget.
pub fn platform_table_budget(platform_name: &str) -> usize {
    match platform_name {
        "low" => 128 << 20,
        _ => 512 << 20,
    }
}

/// `(full_table_bytes, rolling_bytes)` of the named instance — the two
/// points of the memory model the tuner chooses between.
pub fn table_footprint(problem: &str, n: usize) -> Result<(usize, usize), String> {
    macro_rules! foot_of {
        ($kernel:expr, $io:expr, $answer:expr) => {{
            let kernel = $kernel;
            let _ = $io;
            // Dead call pins the answer closure's kernel-parameter type
            // (some registry arms annotate it as `&_`).
            if false {
                let g = lddp_core::seq::solve_row_major(&kernel).map_err(|e| e.to_string())?;
                let _: String = $answer(&kernel, &g);
            }
            Ok((
                rolling::full_table_bytes(&kernel),
                rolling::rolling_bytes(&kernel),
            ))
        }};
    }
    with_problem!(problem, n, foot_of)
}

/// The tuner's memory-mode axis: rolling iff the problem supports it
/// and the full table would breach the platform's memory budget.
/// Rolling trades the materialized grid for a three-band ring, so it
/// only wins when the full table does not fit — the model prefers full
/// tables (traceback stays available) whenever they are affordable.
pub fn choose_memory_mode(problem: &str, n: usize, platform_name: &str) -> MemoryMode {
    if !rolling_supported(problem) {
        return MemoryMode::Full;
    }
    match table_footprint(problem, n) {
        Ok((full, _)) if full > platform_table_budget(platform_name) => MemoryMode::Rolling,
        _ => MemoryMode::Full,
    }
}

/// The full tuning step the serving cache amortizes: the §V-A parameter
/// sweep plus a wall-clock execution-tier sweep on `engine`
/// ([`ParallelEngine::tune_tier`](crate::parallel::ParallelEngine::tune_tier)).
/// For `lcs` the bit-parallel row kernel joins the sweep as a fourth
/// candidate — it computes the answer without a grid, so it competes on
/// the same best-of-wall-clock terms as the grid tiers.
pub fn tune_config(
    problem: &str,
    n: usize,
    platform_name: &str,
    engine: &crate::parallel::ParallelEngine,
) -> Result<TunedConfig, String> {
    let params = tune_params(problem, n, platform_name)?;
    macro_rules! tier_of {
        ($kernel:expr, $io:expr, $answer:expr) => {{
            let kernel = $kernel;
            let _ = $io;
            // Dead call pins the answer closure's kernel-parameter type
            // (some registry arms annotate it as `&_`).
            if false {
                let g = lddp_core::seq::solve_row_major(&kernel).map_err(|e| e.to_string())?;
                let _: String = $answer(&kernel, &g);
            }
            engine.tune_tier(&kernel).map_err(|e| e.to_string())
        }};
    }
    let (mut tier, points): (ExecTier, Vec<lddp_core::tuner::TierPoint>) =
        with_problem!(problem, n, tier_of)?;
    if problem == "lcs" {
        let grid_secs = points
            .iter()
            .find(|p| p.tier == tier)
            .map(|p| p.secs)
            .unwrap_or(f64::INFINITY);
        let a = crate::workloads::random_seq(n, 4, 3);
        let b = crate::workloads::random_seq(n, 4, 4);
        let bp_secs = best_secs(1, || {
            std::hint::black_box(problems::lcs::lcs_length_bitparallel(&a, &b));
        });
        if bp_secs < grid_secs {
            tier = ExecTier::BitParallel;
        }
    }
    Ok(
        TunedConfig::new(params, tier).with_memory_mode(choose_memory_mode(
            problem,
            n,
            platform_name,
        )),
    )
}

/// Renders a [`SolveOutput`] as one machine-readable JSON object.
pub fn render_solve_json(out: &SolveOutput) -> String {
    let s = &out.summary;
    let mut phases = String::new();
    for (i, p) in out.phases.iter().enumerate() {
        if i > 0 {
            phases.push(',');
        }
        let kind = match p.kind {
            PhaseKind::CpuOnly => "cpu_only",
            PhaseKind::Shared => "shared",
        };
        phases.push_str(&format!(
            "{{\"kind\":\"{}\",\"wave_lo\":{},\"wave_hi\":{},\"wall_ms\":{},\
             \"cpu_busy_ms\":{},\"gpu_busy_ms\":{},\"copy_ms\":{}}}",
            kind,
            p.waves.start,
            p.waves.end,
            num(p.wall_s * 1e3),
            num(p.cpu_busy_s * 1e3),
            num(p.gpu_busy_s * 1e3),
            num(p.copy_s * 1e3),
        ));
    }
    format!(
        "{{\"problem\":\"{}\",\"n\":{},\"platform\":\"{}\",\"pattern\":\"{}\",\
         \"t_switch\":{},\"t_share\":{},\"tier\":\"{}\",\"memory_mode\":\"{}\",\
         \"table_bytes\":{},\"total_ms\":{},\
         \"utilization\":{{\"cpu\":{},\"gpu\":{},\"copy\":{}}},\
         \"phases\":[{}],\"answer\":\"{}\"}}",
        escape(&s.problem),
        out.n,
        escape(&out.platform),
        escape(&s.patterns),
        s.params.t_switch,
        s.params.t_share,
        s.tier.as_str(),
        s.memory_mode.as_str(),
        s.table_bytes,
        num(s.hetero_ms),
        num(out.utilization.cpu),
        num(out.utilization.gpu),
        num(out.utilization.copy),
        phases,
        escape(&s.answer),
    )
}

/// Renders a rolling-mode [`RunSummary`] as one machine-readable JSON
/// object — the rolling counterpart of [`render_solve_json`]. No grid
/// is materialized, so there is no utilization / per-phase breakdown;
/// `table_bytes` is the peak band-ring working set instead.
pub fn render_rolling_json(s: &RunSummary, n: usize, platform: &str) -> String {
    format!(
        "{{\"problem\":\"{}\",\"n\":{},\"platform\":\"{}\",\"pattern\":\"{}\",\
         \"t_switch\":{},\"t_share\":{},\"tier\":\"{}\",\"memory_mode\":\"{}\",\
         \"table_bytes\":{},\"total_ms\":{},\"answer\":\"{}\"}}",
        escape(&s.problem),
        n,
        escape(platform),
        escape(&s.patterns),
        s.params.t_switch,
        s.params.t_share,
        s.tier.as_str(),
        s.memory_mode.as_str(),
        s.table_bytes,
        num(s.hetero_ms),
        escape(&s.answer),
    )
}

/// Solves the named problem while recording a full trace, writes the
/// Chrome trace-event JSON to `out_path` (and, optionally, the
/// JSON-lines metrics dump to `metrics_path`), and returns a short
/// confirmation.
pub fn run_trace(
    problem: &str,
    n: usize,
    platform_name: &str,
    params: Option<ScheduleParams>,
    out_path: &str,
    metrics_path: Option<&str>,
) -> Result<String, String> {
    let rec = Recorder::new();
    let output = run_solve_traced(problem, n, platform_name, params, &rec)?;
    let data = rec.into_data();
    let trace_json = chrome::to_chrome_json(&data);
    std::fs::write(out_path, &trace_json).map_err(|e| format!("writing {out_path}: {e}"))?;
    let mut msg = format!(
        "{} spans, {} instants, {} counter series -> {out_path}\n\
         load it at https://ui.perfetto.dev or chrome://tracing\n{}",
        data.spans.len(),
        data.instants.len(),
        data.counters.len(),
        output.summary.render(),
    );
    if let Some(mp) = metrics_path {
        std::fs::write(mp, metrics::to_jsonl(&data)).map_err(|e| format!("writing {mp}: {e}"))?;
        msg.push_str(&format!("\nmetrics   : {mp}"));
    }
    Ok(msg)
}

/// Runs `classify` and renders the result.
pub fn run_classify(set: ContributingSet) -> Result<String, String> {
    let raw = classify(set).ok_or("empty contributing set")?;
    let class = lddp_core::framework::choose_execution(set).map_err(|e| e.to_string())?;
    Ok(format!(
        "contributing set : {set}\npattern          : {raw}\nexecuted as      : {} \
         (adapter: {:?})\nlayout           : {:?}\ntransfers        : {:?}",
        class.exec_pattern, class.adapter, class.layout, class.transfer
    ))
}

/// Runs `tune` and renders both curves.
pub fn run_tune(
    problem: &str,
    n: usize,
    platform_name: &str,
    refined: bool,
) -> Result<String, String> {
    // Tuning happens inside run_solve when params are None; for the tune
    // command we want the curves, so special-case the two string
    // problems that dominate usage and fall back to fig9 otherwise.
    let platform = platform_by_name(platform_name);
    let fw = Framework::new(platform);
    macro_rules! tune_of {
        ($k:expr) => {{
            let kernel = $k;
            let result = if refined {
                fw.tune_refined(&kernel).map_err(|e| e.to_string())?
            } else {
                fw.tune(&kernel).map_err(|e| e.to_string())?
            };
            let mut out = format!(
                "tuned params: t_switch={} t_share={}\n\nt_switch sweep (t_share=0):\n",
                result.params.t_switch, result.params.t_share
            );
            for p in &result.t_switch_curve {
                out.push_str(&format!("  {:>8}  {:>10.3} ms\n", p.value, p.time * 1e3));
            }
            out.push_str("\nt_share sweep:\n");
            for p in &result.t_share_curve {
                out.push_str(&format!("  {:>8}  {:>10.3} ms\n", p.value, p.time * 1e3));
            }
            Ok(out)
        }};
    }
    let seq = |seed: u64| crate::workloads::random_seq(n, 4, seed);
    match problem {
        "levenshtein" => tune_of!(problems::LevenshteinKernel::new(seq(1), seq(2))),
        "lcs" => tune_of!(problems::LcsKernel::new(seq(3), seq(4))),
        "checkerboard" => tune_of!(problems::CheckerboardKernel::random(n, n, 9, 6)),
        "dithering" => tune_of!(problems::DitherKernel::noise(n, n, 7)),
        _ => tune_of!(problems::synthetic::fig9_kernel(
            lddp_core::wavefront::Dims::new(n, n),
            1
        )),
    }
}

/// Runs `balance`: dynamic load balancing vs the tuned static plan.
pub fn run_balance(
    problem: &str,
    n: usize,
    platform_name: &str,
    t_switch: usize,
) -> Result<String, String> {
    let platform = platform_by_name(platform_name);
    macro_rules! balance_of {
        ($k:expr) => {{
            let kernel = $k;
            let fw = Framework::new(platform.clone());
            let tuned = fw.tune(&kernel).map_err(|e| e.to_string())?;
            let static_s = fw
                .estimate(&kernel, tuned.params)
                .map_err(|e| e.to_string())?;
            let balanced = fw
                .solve_balanced(&kernel, t_switch)
                .map_err(|e| e.to_string())?;
            Ok(format!(
                "{problem} {n}x{n} on {}\n  tuned static : {:>10.3} ms (t_switch={} t_share={})\n  balanced     : {:>10.3} ms (t_switch={} avg band={})",
                platform.name,
                static_s * 1e3,
                tuned.params.t_switch,
                tuned.params.t_share,
                balanced.total_s * 1e3,
                balanced.params.t_switch,
                balanced.params.t_share,
            ))
        }};
    }
    let seq = |seed: u64| crate::workloads::random_seq(n, 4, seed);
    match problem {
        "levenshtein" => balance_of!(problems::LevenshteinKernel::new(seq(1), seq(2))),
        "lcs" => balance_of!(problems::LcsKernel::new(seq(3), seq(4))),
        "checkerboard" => balance_of!(problems::CheckerboardKernel::random(n, n, 9, 6)),
        "dithering" => balance_of!(problems::DitherKernel::noise(n, n, 7)),
        _ => balance_of!(problems::synthetic::fig9_kernel(
            lddp_core::wavefront::Dims::new(n, n),
            1
        )),
    }
}

/// CPU/GPU/Framework virtual times for one instance.
#[derive(Debug, Clone)]
pub struct CompareOutput {
    /// Platform display name.
    pub platform_label: String,
    /// Pure multicore-CPU baseline, seconds.
    pub cpu_s: f64,
    /// Pure-GPU baseline, seconds.
    pub gpu_s: f64,
    /// Tuned heterogeneous framework, seconds.
    pub framework_s: f64,
    /// The tuned parameters the framework time used.
    pub params: ScheduleParams,
}

/// Computes the CPU/GPU/Framework triple for `compare`.
pub fn run_compare_data(
    problem: &str,
    n: usize,
    platform_name: &str,
) -> Result<CompareOutput, String> {
    let platform = platform_by_name(platform_name);
    macro_rules! compare_of {
        ($k:expr, $io:expr) => {{
            let kernel = $k;
            let fw = Framework::new(platform.clone()).with_io_bytes($io.0, $io.1);
            let cpu = fw.cpu_baseline(&kernel).map_err(|e| e.to_string())?;
            let gpu = fw.gpu_baseline(&kernel).map_err(|e| e.to_string())?;
            let tuned = fw.tune(&kernel).map_err(|e| e.to_string())?;
            let het = fw
                .estimate(&kernel, tuned.params)
                .map_err(|e| e.to_string())?;
            Ok(CompareOutput {
                platform_label: platform.name.to_string(),
                cpu_s: cpu,
                gpu_s: gpu,
                framework_s: het,
                params: tuned.params,
            })
        }};
    }
    let seq = |seed: u64| crate::workloads::random_seq(n, 4, seed);
    match problem {
        "levenshtein" => compare_of!(problems::LevenshteinKernel::new(seq(1), seq(2)), (2 * n, 8)),
        "lcs" => compare_of!(problems::LcsKernel::new(seq(3), seq(4)), (2 * n, 8)),
        "checkerboard" => compare_of!(problems::CheckerboardKernel::random(n, n, 9, 6), (n * n, 0)),
        "dithering" => compare_of!(problems::DitherKernel::noise(n, n, 7), (n * n, n * n)),
        _ => compare_of!(
            problems::synthetic::fig9_kernel(lddp_core::wavefront::Dims::new(n, n), 1),
            (0, 0)
        ),
    }
}

/// Runs `compare` and renders the CPU/GPU/Framework triple.
pub fn run_compare(problem: &str, n: usize, platform_name: &str) -> Result<String, String> {
    let c = run_compare_data(problem, n, platform_name)?;
    Ok(format!(
        "{problem} {n}x{n} on {}\n  CPU parallel : {:>10.3} ms\n  GPU          : {:>10.3} ms\n  Framework    : {:>10.3} ms  (t_switch={} t_share={})",
        c.platform_label,
        c.cpu_s * 1e3,
        c.gpu_s * 1e3,
        c.framework_s * 1e3,
        c.params.t_switch,
        c.params.t_share
    ))
}

/// Renders `compare` results as one machine-readable JSON object.
pub fn render_compare_json(
    problem: &str,
    n: usize,
    platform_name: &str,
    c: &CompareOutput,
) -> String {
    format!(
        "{{\"problem\":\"{}\",\"n\":{},\"platform\":\"{}\",\"cpu_ms\":{},\"gpu_ms\":{},\
         \"framework_ms\":{},\"t_switch\":{},\"t_share\":{}}}",
        escape(problem),
        n,
        escape(platform_name),
        num(c.cpu_s * 1e3),
        num(c.gpu_s * 1e3),
        num(c.framework_s * 1e3),
        c.params.t_switch,
        c.params.t_share
    )
}

/// Runs the batching solve server until `POST /shutdown` drains it,
/// then returns the final stats snapshot (and writes the serve-run
/// Chrome trace when `trace_out` is given). `fleet` swaps the single
/// [`FrameworkBackend`](crate::serve_backend::FrameworkBackend) for
/// the heterogeneous worker-pool fleet
/// ([`FleetBackend`](crate::fleet_backend::FleetBackend)).
pub fn run_serve(
    addr: &str,
    config: ServeConfig,
    trace_out: Option<&str>,
    tune_cache: Option<&str>,
    fleet: bool,
) -> Result<String, String> {
    // One registry shared by the server and the backend, so serve-side
    // and pool/tuner/fleet-side series land in the same /metrics
    // exposition.
    let live = std::sync::Arc::new(lddp_trace::live::LiveRegistry::new());
    if fleet {
        let backend =
            crate::fleet_backend::FleetBackend::new().with_live(std::sync::Arc::clone(&live));
        serve_with(
            addr,
            config,
            trace_out,
            tune_cache,
            &backend,
            backend.cache(),
            live,
        )
    } else {
        let backend =
            crate::serve_backend::FrameworkBackend::new().with_live(std::sync::Arc::clone(&live));
        serve_with(
            addr,
            config,
            trace_out,
            tune_cache,
            &backend,
            backend.cache(),
            live,
        )
    }
}

#[allow(clippy::too_many_arguments)]
fn serve_with(
    addr: &str,
    config: ServeConfig,
    trace_out: Option<&str>,
    tune_cache: Option<&str>,
    backend: &dyn SolveBackend,
    cache: &lddp_core::tuner_cache::TunerCache,
    live: std::sync::Arc<lddp_trace::live::LiveRegistry>,
) -> Result<String, String> {
    let mut prewarmed = 0;
    if let Some(path) = tune_cache {
        // A missing file just means a first run — start cold and
        // create the file at drain.
        if std::path::Path::new(path).exists() {
            prewarmed = cache
                .load_from(path)
                .map_err(|e| format!("loading tuner cache {path}: {e}"))?;
        }
    }
    let recorder = trace_out.map(|_| Recorder::new());
    let sink: &(dyn TraceSink + Sync) = match &recorder {
        Some(r) => r,
        None => &NullSink,
    };
    let listener = std::net::TcpListener::bind(addr).map_err(|e| format!("binding {addr}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("local addr: {e}"))?;
    let workers = config.workers;
    let queue_cap = config.queue_capacity;
    let max_batch = config.max_batch;
    let pools = backend.pool_health();
    let mut server = Server::new(config, backend, sink);
    server.attach_live(live);
    let snapshot = server.run(Some(listener), |client| {
        println!(
            "lddp-serve listening on http://{local} (workers={workers}, queue={queue_cap}, max-batch={max_batch})"
        );
        if !pools.is_empty() {
            println!(
                "fleet: {} pools ({})",
                pools.len(),
                pools
                    .iter()
                    .map(|p| p.platform.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        if let Some(path) = tune_cache {
            println!("tune-cache: {path} ({prewarmed} entries pre-warmed)");
        }
        println!(
            "routes: POST /solve | POST /solve?stream=1 | GET /healthz | GET /stats | \
             GET /metrics | GET /debug/trace | POST /shutdown"
        );
        client.wait_shutdown();
        client.snapshot()
    });
    let mut msg = format!("drained; final stats:\n{}", snapshot.to_json());
    if let Some(path) = tune_cache {
        cache
            .save_to(path)
            .map_err(|e| format!("writing tuner cache {path}: {e}"))?;
        msg.push_str(&format!("\ntune-cache: {} entries -> {path}", cache.len()));
    }
    if let (Some(rec), Some(path)) = (recorder, trace_out) {
        let data = rec.into_data();
        let trace_json = chrome::to_chrome_json(&data);
        std::fs::write(path, &trace_json).map_err(|e| format!("writing {path}: {e}"))?;
        msg.push_str(&format!(
            "\ntrace     : {} spans, {} counter series -> {path}",
            data.spans.len(),
            data.counters.len()
        ));
    }
    Ok(msg)
}

/// Loadgen knobs as parsed from the command line.
#[derive(Debug, Clone)]
pub struct LoadgenOpts {
    /// Target server; `None` = in-process.
    pub addr: Option<String>,
    /// Problem name.
    pub problem: String,
    /// Instance size.
    pub n: usize,
    /// Platform preset name.
    pub platform: String,
    /// Requests to send (0 = until duration elapses).
    pub requests: usize,
    /// Open-loop arrival rate.
    pub rps: Option<f64>,
    /// Wall-clock cap, seconds.
    pub duration_s: Option<f64>,
    /// Closed-loop workers.
    pub concurrency: usize,
    /// Per-request deadline, milliseconds.
    pub deadline_ms: Option<u64>,
    /// Skip the oracle answer check.
    pub no_verify: bool,
    /// Attempts per request (1 = no retries).
    pub retries: u32,
    /// Instance-size mix cycled round-robin (empty = uniform `n`).
    pub mix: Vec<usize>,
    /// Service class stamped on every request.
    pub priority: Priority,
    /// Tenant name stamped on every request (empty = unattributed).
    pub tenant: String,
    /// Drive the in-process server with the fleet backend.
    pub fleet: bool,
    /// Consume `POST /solve?stream=1` band streams and report
    /// time-to-first-band percentiles.
    pub stream: bool,
    /// Cap on how much of a 429/503 `Retry-After` hint is honored,
    /// milliseconds (`None` = the loadgen default).
    pub retry_after_cap_ms: Option<u64>,
}

/// Runs one load experiment (HTTP when `addr` is set, against an
/// in-process server otherwise) and returns the JSON report.
pub fn run_loadgen(opts: &LoadgenOpts) -> Result<String, String> {
    let mut request = SolveRequest::new(opts.problem.clone(), opts.n);
    request.platform = opts.platform.clone();
    request.deadline_ms = opts.deadline_ms;
    request.priority = opts.priority;
    request.tenant = opts.tenant.clone();
    let expect_answer = if opts.no_verify {
        None
    } else {
        Some(run_solve_seq(&opts.problem, opts.n)?)
    };
    // A size mix carries one oracle per size — each request is checked
    // against the answer for *its* instance, not the template's.
    let mut mix: Vec<(usize, Option<String>)> = Vec::with_capacity(opts.mix.len());
    for &size in &opts.mix {
        let oracle = if opts.no_verify {
            None
        } else {
            Some(run_solve_seq(&opts.problem, size)?)
        };
        mix.push((size, oracle));
    }
    let retry = if opts.retries > 1 {
        RetryPolicy {
            max_attempts: opts.retries,
            ..RetryPolicy::default_serving(opts.retries as u64)
        }
    } else {
        RetryPolicy::none()
    };
    let cfg = LoadgenConfig {
        request,
        total: opts.requests,
        rps: opts.rps,
        duration: opts.duration_s.map(Duration::from_secs_f64),
        concurrency: opts.concurrency,
        expect_answer,
        retry,
        mix,
        stream: opts.stream,
        retry_after_cap: opts
            .retry_after_cap_ms
            .map(Duration::from_millis)
            .unwrap_or(lddp_serve::loadgen::DEFAULT_RETRY_AFTER_CAP),
    };
    let report = match &opts.addr {
        Some(addr) => {
            // Bracket the run with /metrics scrapes so the report can
            // carry the server-side counter deltas this load caused. A
            // failed scrape (old server, transient error) degrades to a
            // report without the delta rather than failing the run.
            let scrape_timeout = Duration::from_secs(5);
            let target = HttpTarget::new(addr.clone(), Duration::from_secs(60));
            let before = lddp_serve::loadgen::scrape_metrics(addr, scrape_timeout).ok();
            let mut report = lddp_serve::loadgen::run(&target, &cfg);
            if let (Some(before), Ok(after)) = (
                before,
                lddp_serve::loadgen::scrape_metrics(addr, scrape_timeout),
            ) {
                report.server_metrics_delta = lddp_serve::loadgen::metrics_delta(&before, &after);
            }
            report
        }
        None if opts.fleet => {
            let live = std::sync::Arc::new(lddp_trace::live::LiveRegistry::new());
            let backend =
                crate::fleet_backend::FleetBackend::new().with_live(std::sync::Arc::clone(&live));
            let mut server = Server::new(ServeConfig::default(), &backend, &NullSink);
            server.attach_live(live);
            server.run(None, |client| {
                let before = lddp_trace::live::parse_prometheus(&client.metrics_text());
                let mut report = lddp_serve::loadgen::run(client, &cfg);
                let after = lddp_trace::live::parse_prometheus(&client.metrics_text());
                report.server_metrics_delta = lddp_serve::loadgen::metrics_delta(&before, &after);
                report
            })
        }
        None => {
            let live = std::sync::Arc::new(lddp_trace::live::LiveRegistry::new());
            let backend = crate::serve_backend::FrameworkBackend::new()
                .with_live(std::sync::Arc::clone(&live));
            let mut server = Server::new(ServeConfig::default(), &backend, &NullSink);
            server.attach_live(live);
            server.run(None, |client| {
                let before = lddp_trace::live::parse_prometheus(&client.metrics_text());
                let mut report = lddp_serve::loadgen::run(client, &cfg);
                let after = lddp_trace::live::parse_prometheus(&client.metrics_text());
                report.server_metrics_delta = lddp_serve::loadgen::metrics_delta(&before, &after);
                report
            })
        }
    };
    Ok(report.to_json())
}

/// Problems covered by `bench --quick`: the kernels with a bulk
/// [`lddp_core::kernel::WaveKernel`] fast path.
pub const BENCH_PROBLEMS: &[&str] = &[
    "lcs",
    "levenshtein",
    "needleman-wunsch",
    "smith-waterman",
    "dtw",
];

/// Runs `f` several times and returns the best wall-clock seconds —
/// minimum, not mean, because scheduling noise only ever adds time.
fn best_secs(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Quick wall-clock benchmark of the real thread engine: cells/s per
/// problem across the execution tiers (scalar, bulk, SIMD, and — for
/// `lcs` — the bit-parallel row kernel), pooled-vs-fresh-engine solve
/// times, and a worker-count sweep through the shared pool. Prints (and
/// optionally writes) one JSON object — the perf trajectory record CI
/// archives as `BENCH_pr5.json` so future changes have a baseline.
pub fn run_bench_quick(n: usize, out_path: Option<&str>) -> Result<String, String> {
    // Bench with a live registry attached — the numbers CI compares
    // against the baseline must include the telemetry the serving path
    // always pays, not a telemetry-free best case.
    let live = std::sync::Arc::new(lddp_trace::live::LiveRegistry::new());
    let engine = crate::parallel::ParallelEngine::host().with_live(live);
    let scalar_engine = engine.clone().with_bulk_enabled(false);
    let bulk_engine = engine.clone().with_tier(Some(ExecTier::Bulk));
    let simd_engine = engine.clone().with_tier(Some(ExecTier::Simd));
    let threads = engine.threads();
    let iters = 3;

    let mut entries: Vec<String> = Vec::new();
    for problem in BENCH_PROBLEMS {
        macro_rules! qb {
            ($kernel:expr, $io:expr, $answer:expr) => {{
                let kernel = $kernel;
                let _ = $io;
                let d = kernel.dims();
                let cells = (d.rows * d.cols) as f64;
                // Warm the pool, the allocator, and the page cache once
                // before timing; the dead call pins the answer closure's
                // kernel-parameter type (some registry arms use `&_`).
                let g = engine.solve(&kernel).map_err(|e| e.to_string())?;
                if false {
                    let _: String = $answer(&kernel, &g);
                }
                let auto_s = best_secs(iters, || {
                    engine.solve(&kernel).unwrap();
                });
                let bulk_s = best_secs(iters, || {
                    bulk_engine.solve(&kernel).unwrap();
                });
                // On hosts without SIMD support (or for kernels without
                // a SIMD hook) this measures the downgraded tier — the
                // recorded "tier" key says which one actually ran.
                let simd_s = best_secs(iters, || {
                    simd_engine.solve(&kernel).unwrap();
                });
                let scalar_s = best_secs(iters, || {
                    scalar_engine.solve(&kernel).unwrap();
                });
                // A fresh engine per solve pays thread spawn + teardown
                // — the pre-pool cost model.
                let spawn_s = best_secs(iters, || {
                    crate::parallel::ParallelEngine::new(threads)
                        .solve(&kernel)
                        .unwrap();
                });
                let bitparallel = if *problem == "lcs" {
                    let a = crate::workloads::random_seq(n, 4, 3);
                    let b = crate::workloads::random_seq(n, 4, 4);
                    let bp_s = best_secs(iters, || {
                        std::hint::black_box(problems::lcs::lcs_length_bitparallel(&a, &b));
                    });
                    format!(",\"cells_per_s_bitparallel\":{}", num(cells / bp_s))
                } else {
                    String::new()
                };
                // Single-worker regression guard on the two problems the
                // roadmap flagged: with one thread both the pooled and the
                // fresh-engine paths bypass the pool's barrier handoff, so
                // the ratio must sit near 1.0. The pre-bypass engine paid
                // the spin-barrier here and reported pool_speedup well
                // below 1; a lenient floor keeps that from coming back
                // silently.
                let one_thread = if matches!(*problem, "lcs" | "needleman-wunsch") {
                    let pool_1t_engine = crate::parallel::ParallelEngine::new(1);
                    let pool_1t = best_secs(iters, || {
                        pool_1t_engine.solve(&kernel).unwrap();
                    });
                    let spawn_1t = best_secs(iters, || {
                        crate::parallel::ParallelEngine::new(1).solve(&kernel).unwrap();
                    });
                    let speedup_1t = spawn_1t / pool_1t;
                    if speedup_1t < 0.5 {
                        return Err(format!(
                            "bench regression: {problem} pool_speedup_1t = {speedup_1t:.3} \
                             (< 0.5); the single-worker solve is paying a pool handoff it \
                             should bypass"
                        ));
                    }
                    format!(
                        ",\"solve_ms_pool_1t\":{},\"solve_ms_spawn_1t\":{},\"pool_speedup_1t\":{}",
                        num(pool_1t * 1e3),
                        num(spawn_1t * 1e3),
                        num(speedup_1t),
                    )
                } else {
                    String::new()
                };
                Ok(format!(
                    "{{\"problem\":\"{}\",\"cells\":{},\"tier\":\"{}\",\
                     \"cells_per_s_scalar\":{},\"cells_per_s_bulk\":{},\"cells_per_s_simd\":{},\
                     \"bulk_speedup\":{},\"simd_speedup\":{}{},\
                     \"solve_ms_pool\":{},\"solve_ms_spawn\":{},\"pool_speedup\":{}{}}}",
                    escape(problem),
                    num(cells),
                    engine.select_tier(&kernel).as_str(),
                    num(cells / scalar_s),
                    num(cells / bulk_s),
                    num(cells / simd_s),
                    num(scalar_s / bulk_s),
                    num(bulk_s / simd_s),
                    bitparallel,
                    num(auto_s * 1e3),
                    num(spawn_s * 1e3),
                    num(spawn_s / auto_s),
                    one_thread,
                ))
            }};
        }
        let entry: Result<String, String> = with_problem!(*problem, n, qb);
        entries.push(entry?);
    }

    // §V-A-style worker-count sweep, every candidate through the same
    // pool (no fresh thread set per point).
    let sweep: Result<String, String> = {
        macro_rules! sweep_of {
            ($kernel:expr, $io:expr, $answer:expr) => {{
                let kernel = $kernel;
                let _ = $io;
                if false {
                    let g = lddp_core::seq::solve_row_major(&kernel).map_err(|e| e.to_string())?;
                    let _: String = $answer(&kernel, &g);
                }
                let (best, points) = engine
                    .tune_worker_count(&kernel, &[])
                    .map_err(|e| e.to_string())?;
                let pts: Vec<String> = points
                    .iter()
                    .map(|p| format!("{{\"workers\":{},\"ms\":{}}}", p.value, num(p.time * 1e3)))
                    .collect();
                Ok(format!(
                    "{{\"problem\":\"lcs\",\"best_workers\":{best},\"points\":[{}]}}",
                    pts.join(",")
                ))
            }};
        }
        with_problem!("lcs", n, sweep_of)
    };

    let json = format!(
        "{{\"bench\":\"quick\",\"n\":{n},\"threads\":{threads},\"iters\":{iters},\
         \"simd\":\"{}\",\"avx512\":{},\"problems\":[{}],\"worker_sweep\":{}}}",
        lddp_core::kernel::simd_backend(),
        lddp_core::kernel::avx512_available(),
        entries.join(","),
        sweep?
    );
    if let Some(path) = out_path {
        std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
    }
    Ok(json)
}

/// Score-only benchmark of the rolling (wave-band) memory mode: each
/// wave problem is solved with only the ring of three live wavefronts
/// resident, and the entry records the measured peak working set next
/// to the full-table footprint it avoided. CI runs this at n = 8192
/// under a virtual-memory cap the full table could not allocate — the
/// run completing at all is the proof that the linear-space tier stays
/// inside its `O(rows + cols)` budget. Answers are not oracle-checked
/// here (a full-table oracle would defeat the memory cap); bit-identity
/// is covered by the property tests at smaller sizes.
pub fn run_bench_rolling(n: usize, out_path: Option<&str>) -> Result<String, String> {
    let live = std::sync::Arc::new(lddp_trace::live::LiveRegistry::new());
    let engine = crate::parallel::ParallelEngine::host().with_live(live);
    let threads = engine.threads();
    let iters = 2;
    let params = ScheduleParams::default();

    let mut entries: Vec<String> = Vec::new();
    for problem in BENCH_PROBLEMS {
        let (full_bytes, band_bytes) = table_footprint(problem, n)?;
        let cells = (n * n) as f64;
        let mut last: Option<RunSummary> = None;
        let mut err: Option<String> = None;
        let secs = best_secs(iters, || {
            match run_solve_rolling(problem, n, "high", params, None, &engine) {
                Ok(s) => last = Some(s),
                Err(e) => err = Some(e),
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
        let summary = last.expect("best_secs ran at least once");
        // The ring must actually be band-sized. Equality with the
        // analytic floor holds today; the lenient bound only has to
        // catch a rolling path that quietly re-materializes the grid.
        if n >= 64 && summary.table_bytes.saturating_mul(4) > full_bytes {
            return Err(format!(
                "bench regression: {problem} rolling peak {} bytes is not meaningfully \
                 below the {} byte full table",
                summary.table_bytes, full_bytes
            ));
        }
        entries.push(format!(
            "{{\"problem\":\"{}\",\"cells\":{},\"tier\":\"{}\",\
             \"full_table_bytes\":{},\"rolling_band_bytes\":{},\"rolling_peak_bytes\":{},\
             \"table_shrink\":{},\"cells_per_s\":{},\"solve_ms\":{},\"answer\":\"{}\"}}",
            escape(problem),
            num(cells),
            summary.tier.as_str(),
            full_bytes,
            band_bytes,
            summary.table_bytes,
            num(full_bytes as f64 / summary.table_bytes.max(1) as f64),
            num(cells / secs),
            num(secs * 1e3),
            escape(&summary.answer),
        ));
    }

    let json = format!(
        "{{\"bench\":\"rolling\",\"n\":{n},\"threads\":{threads},\"iters\":{iters},\
         \"simd\":\"{}\",\"avx512\":{},\"problems\":[{}]}}",
        lddp_core::kernel::simd_backend(),
        lddp_core::kernel::avx512_available(),
        entries.join(",")
    );
    if let Some(path) = out_path {
        std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
    }
    Ok(json)
}

/// Problems the chaos campaign drives through the engine's
/// degradation ladder: a mix of kernels with a bulk fast path (where
/// the `bulk_to_scalar` rung is reachable) and scalar-only kernels
/// (where recovery must come from `parallel_to_sequential`).
pub const CHAOS_PROBLEMS: &[&str] = &["lcs", "dtw", "seam", "dithering", "weighted-edit"];

/// Runs a seeded fault-injection campaign and returns its JSON report.
///
/// Three stages, all oracle-checked (any divergence is a hard `Err`,
/// which the binary turns into a nonzero exit):
///
/// 1. **Engine ladder** — repeated pooled solves under injected worker
///    and bulk panics; every answer must match the sequential oracle
///    regardless of which degradation rungs fired, and the shared pool
///    must still serve a clean solve afterwards.
/// 2. **Hetero executor** — solves under injected device faults; a
///    fault degrades the run to the modelled CPU-only baseline and the
///    answer must be unchanged.
/// 3. **Serving stack** — an HTTP loadgen run against a server whose
///    backend and front end both draw from seeded fault plans (worker
///    panics, device faults, torn/slow connections, queue stalls),
///    with retrying clients; completed answers must all pass the
///    oracle and every request must be accounted for.
pub fn run_chaos(seed: u64, campaign: &str, out_path: Option<&str>) -> Result<String, String> {
    // The campaign injects panics by design; the default hook would
    // spray hundreds of backtraces over the report. Silence it for the
    // run and restore it afterwards, on success or failure alike.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = run_chaos_inner(seed, campaign, out_path);
    let _ = std::panic::take_hook();
    std::panic::set_hook(prev_hook);
    result
}

fn run_chaos_inner(seed: u64, campaign: &str, out_path: Option<&str>) -> Result<String, String> {
    let cfg = match campaign {
        "quick" => FaultPlanConfig::quick(),
        "heavy" => FaultPlanConfig::heavy(),
        other => {
            return Err(format!(
                "unknown campaign '{other}'; expected quick or heavy"
            ))
        }
    };
    let (ladder_iters, hetero_iters, serve_total) = if campaign == "heavy" {
        (12usize, 16usize, 240usize)
    } else {
        (6, 8, 120)
    };
    let n = 48;

    // Stage 1: the engine's degradation ladder under worker/bulk
    // panics, every answer checked against the sequential oracle.
    // A fixed worker count (not host-sized) for two reasons: the
    // single-threaded shortcut path never consults the injector, so a
    // one-core host would silently skip the whole stage; and a pinned
    // pool makes the per-(worker, wave) draw sequence — and thus the
    // campaign report — identical on every machine.
    let engine = crate::parallel::ParallelEngine::new(4);
    let ladder_plan = FaultPlan::new(seed, cfg);
    let mut ladder_solves = 0u64;
    let mut ladder_degraded = 0u64;
    let mut rung_bulk = 0u64;
    let mut rung_seq = 0u64;
    for problem in CHAOS_PROBLEMS {
        let oracle = run_solve_seq(problem, n)?;
        for _ in 0..ladder_iters {
            macro_rules! ladder {
                ($kernel:expr, $io:expr, $answer:expr) => {{
                    let kernel = $kernel;
                    let _ = $io;
                    let (grid, steps) = engine
                        .solve_degrading(&kernel, &ladder_plan)
                        .map_err(|e| e.to_string())?;
                    Ok(($answer(&kernel, &grid), steps))
                }};
            }
            let probe: Result<(String, Vec<DegradeStep>), String> =
                with_problem!(*problem, n, ladder);
            let (answer, steps) = probe?;
            if answer != oracle {
                return Err(format!(
                    "chaos: degraded {problem} answer diverged from the oracle \
                     (got \"{answer}\", want \"{oracle}\", rungs {steps:?})"
                ));
            }
            ladder_solves += 1;
            if !steps.is_empty() {
                ladder_degraded += 1;
            }
            for step in &steps {
                match step {
                    DegradeStep::BulkToScalar => rung_bulk += 1,
                    DegradeStep::ParallelToSequential => rung_seq += 1,
                    DegradeStep::HeteroToCpuOnly => {}
                }
            }
        }
    }
    // The pool must come out of the campaign healthy: one clean solve,
    // no injector, same oracle.
    {
        let oracle = run_solve_seq("lcs", n)?;
        macro_rules! health {
            ($kernel:expr, $io:expr, $answer:expr) => {{
                let kernel = $kernel;
                let _ = $io;
                let grid = engine.solve(&kernel).map_err(|e| e.to_string())?;
                Ok($answer(&kernel, &grid))
            }};
        }
        let clean: Result<String, String> = with_problem!("lcs", n, health);
        if clean? != oracle {
            return Err("chaos: pool unhealthy after the ladder stage".into());
        }
    }

    // Stage 2: device faults in the hetero executor degrade to the
    // CPU-only rung without changing the answer.
    let hetero_plan = FaultPlan::new(seed ^ 0x9e37_79b9_7f4a_7c15, cfg);
    let hetero_n = 64;
    let hetero_oracle = run_solve_seq("lcs", hetero_n)?;
    macro_rules! hetero_probe {
        ($kernel:expr, $io:expr, $answer:expr) => {{
            let kernel = $kernel;
            let fw = Framework::new(platform_by_name("high")).with_io_bytes($io.0, $io.1);
            // Pinned rather than tuned: on instances this small the
            // tuner often picks a CPU-only schedule, which has no
            // device-involved waves and therefore nothing to fault.
            // An early switch with a narrow CPU band guarantees the
            // device participates in most waves.
            let params = ScheduleParams::new(8, 32);
            let mut cpu_only = 0u64;
            for _ in 0..hetero_iters {
                let sol = fw
                    .solve_chaos(&kernel, params, &hetero_plan)
                    .map_err(|e| e.to_string())?;
                if !sol.degradation.is_empty() {
                    cpu_only += 1;
                }
                let answer: String = $answer(&kernel, &sol.grid);
                if answer != hetero_oracle {
                    return Err(format!(
                        "chaos: hetero answer diverged after a device fault \
                         (got \"{answer}\", want \"{hetero_oracle}\")"
                    ));
                }
            }
            Ok(cpu_only)
        }};
    }
    let cpu_only: Result<u64, String> = with_problem!("lcs", hetero_n, hetero_probe);
    let cpu_only_reruns = cpu_only?;

    // Stage 3: the serving stack over real HTTP, faults on both sides
    // of the wire, retrying clients, oracle-checked answers.
    let serve_oracle = run_solve_seq("lcs", n)?;
    let backend_plan = std::sync::Arc::new(FaultPlan::new(seed ^ 0xd1b5_4a32_d192_ed03, cfg));
    let server_plan = FaultPlan::new(seed ^ 0x94d0_49bb_1331_11eb, cfg);
    let backend = crate::serve_backend::FrameworkBackend::with_injector(backend_plan.clone());
    let server = Server::with_injector(
        ServeConfig {
            workers: 2,
            queue_capacity: 128,
            max_batch: 4,
            ..ServeConfig::default()
        },
        &backend,
        &NullSink,
        &server_plan,
    );
    let listener =
        std::net::TcpListener::bind("127.0.0.1:0").map_err(|e| format!("binding loopback: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("local addr: {e}"))?;
    let (report, snapshot) = server.run(Some(listener), |client| {
        let target = HttpTarget::new(local.to_string(), Duration::from_secs(30));
        let lg = LoadgenConfig {
            request: SolveRequest::new("lcs", n),
            total: serve_total,
            concurrency: 4,
            expect_answer: Some(serve_oracle.clone()),
            retry: RetryPolicy::default_serving(seed),
            ..LoadgenConfig::default()
        };
        let report = lddp_serve::loadgen::run(&target, &lg);
        client.shutdown();
        (report, client.snapshot())
    });
    if report.mismatches != 0 {
        return Err(format!(
            "chaos: {} served answers diverged from the oracle (report: {})",
            report.mismatches,
            report.to_json()
        ));
    }
    if report.completed + report.rejected + report.errors != report.sent {
        return Err(format!(
            "chaos: request accounting leaked ({} sent vs {} completed + {} rejected + {} errors)",
            report.sent, report.completed, report.rejected, report.errors
        ));
    }

    let json = format!(
        "{{\"chaos\":{{\"seed\":{seed},\"campaign\":\"{}\",\
         \"engine\":{{\"solves\":{ladder_solves},\"degraded\":{ladder_degraded},\
         \"rungs\":{{\"bulk_to_scalar\":{rung_bulk},\"parallel_to_sequential\":{rung_seq}}},\
         \"pool_healthy_after\":true}},\
         \"hetero\":{{\"solves\":{hetero_iters},\"cpu_only_reruns\":{cpu_only_reruns}}},\
         \"serving\":{{\"report\":{},\"stats\":{}}},\
         \"faults\":{{\"engine\":{},\"hetero\":{},\"backend\":{},\"server\":{}}},\
         \"verdict\":\"pass\"}}}}",
        escape(campaign),
        report.to_json(),
        snapshot.to_json(),
        ladder_plan.report().to_json(),
        hetero_plan.report().to_json(),
        backend_plan.report().to_json(),
        server_plan.report().to_json(),
    );
    if let Some(path) = out_path {
        std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
    }
    Ok(json)
}

/// Executes a parsed command, returning the output text.
pub fn execute(cmd: Command) -> Result<String, String> {
    match cmd {
        Command::Help => Ok(usage()),
        Command::Classify { set } => run_classify(set),
        Command::Solve {
            problem,
            n,
            platform,
            params,
            json,
            memory,
        } => {
            // Explicit --memory pins the mode; otherwise the tuner's
            // budget model decides (rolling only when the full table
            // would not fit the platform's table-memory budget).
            let mode = memory.unwrap_or_else(|| choose_memory_mode(&problem, n, &platform));
            if mode == MemoryMode::Rolling {
                if !rolling_supported(&problem) {
                    return Err(format!(
                        "problem '{problem}' has no rolling-mode solve \
                         (its answer needs the full table)"
                    ));
                }
                let engine = crate::parallel::ParallelEngine::host();
                let params = match params {
                    Some(p) => p,
                    None => tune_params(&problem, n, &platform)?,
                };
                let summary = run_solve_rolling(&problem, n, &platform, params, None, &engine)?;
                if json {
                    Ok(render_rolling_json(&summary, n, &platform))
                } else {
                    Ok(summary.render())
                }
            } else if json {
                run_solve_traced(&problem, n, &platform, params, &NullSink)
                    .map(|o| render_solve_json(&o))
            } else {
                run_solve(&problem, n, &platform, params).map(|s| s.render())
            }
        }
        Command::Tune {
            problem,
            n,
            platform,
            refined,
        } => run_tune(&problem, n, &platform, refined),
        Command::Balance {
            problem,
            n,
            platform,
            t_switch,
        } => run_balance(&problem, n, &platform, t_switch),
        Command::Compare {
            problem,
            n,
            platform,
            json,
        } => {
            if json {
                run_compare_data(&problem, n, &platform)
                    .map(|c| render_compare_json(&problem, n, &platform, &c))
            } else {
                run_compare(&problem, n, &platform)
            }
        }
        Command::Trace {
            problem,
            n,
            platform,
            params,
            out,
            metrics,
        } => run_trace(&problem, n, &platform, params, &out, metrics.as_deref()),
        Command::Serve {
            addr,
            workers,
            queue_cap,
            batch_queue_cap,
            tenant_rps,
            tenant_burst,
            max_batch,
            deadline_ms,
            watchdog_ms,
            trace,
            tune_cache,
            fleet,
        } => run_serve(
            &addr,
            ServeConfig {
                workers,
                queue_capacity: queue_cap,
                batch_queue_capacity: batch_queue_cap,
                tenant_quota_rps: tenant_rps,
                tenant_quota_burst: tenant_burst
                    .unwrap_or(ServeConfig::default().tenant_quota_burst),
                max_batch,
                default_deadline_ms: deadline_ms,
                watchdog_ms,
                ..ServeConfig::default()
            },
            trace.as_deref(),
            tune_cache.as_deref(),
            fleet,
        ),
        Command::Loadgen {
            addr,
            problem,
            n,
            platform,
            requests,
            rps,
            duration_s,
            concurrency,
            deadline_ms,
            no_verify,
            retries,
            mix,
            priority,
            tenant,
            fleet,
            stream,
            retry_after_cap_ms,
        } => run_loadgen(&LoadgenOpts {
            addr,
            problem,
            n,
            platform,
            requests,
            rps,
            duration_s,
            concurrency,
            deadline_ms,
            no_verify,
            retries,
            mix,
            priority,
            tenant,
            fleet,
            stream,
            retry_after_cap_ms,
        }),
        Command::Bench { n, rolling, out } => {
            if rolling {
                run_bench_rolling(n, out.as_deref())
            } else {
                run_bench_quick(n, out.as_deref())
            }
        }
        Command::Chaos {
            seed,
            campaign,
            out,
        } => run_chaos(seed, &campaign, out.as_deref()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_classify() {
        let cmd = parse(&argv("classify --set W,NW,N")).unwrap();
        assert_eq!(
            cmd,
            Command::Classify {
                set: ContributingSet::new(&[RepCell::W, RepCell::Nw, RepCell::N])
            }
        );
    }

    #[test]
    fn parse_solve_with_params() {
        let cmd = parse(&argv(
            "solve --problem levenshtein --n 256 --platform low --t-switch 8 --t-share 16",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Solve {
                problem: "levenshtein".into(),
                n: 256,
                platform: "low".into(),
                params: Some(ScheduleParams::new(8, 16)),
                json: false,
                memory: None,
            }
        );
        let cmd = parse(&argv("solve --problem lcs --memory rolling")).unwrap();
        assert!(matches!(
            cmd,
            Command::Solve {
                memory: Some(MemoryMode::Rolling),
                ..
            }
        ));
        assert!(parse(&argv("solve --problem lcs --memory sideways")).is_err());
    }

    #[test]
    fn parse_trace_and_json_flags() {
        let cmd = parse(&argv(
            "trace --problem lcs --n 128 --out t.json --metrics m.jsonl",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Trace {
                problem: "lcs".into(),
                n: 128,
                platform: "high".into(),
                params: None,
                out: "t.json".into(),
                metrics: Some("m.jsonl".into()),
            }
        );
        let cmd = parse(&argv("trace --problem lcs --t-switch 8 --t-share 32")).unwrap();
        match cmd {
            Command::Trace { params, .. } => {
                assert_eq!(params, Some(ScheduleParams::new(8, 32)));
            }
            other => panic!("unexpected {other:?}"),
        }
        // --out defaults; --metrics stays off unless given.
        let cmd = parse(&argv("trace --problem lcs")).unwrap();
        assert_eq!(
            cmd,
            Command::Trace {
                problem: "lcs".into(),
                n: 512,
                platform: "high".into(),
                params: None,
                out: "run.trace.json".into(),
                metrics: None,
            }
        );
        let cmd = parse(&argv("solve --problem lcs --json")).unwrap();
        assert!(matches!(cmd, Command::Solve { json: true, .. }));
        let cmd = parse(&argv("compare --problem lcs --json")).unwrap();
        assert!(matches!(cmd, Command::Compare { json: true, .. }));
        assert!(parse(&argv("trace --problem lcs --out")).is_err());
        assert!(parse(&argv("trace")).is_err());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse(&argv("solve --problem nonsense")).is_err());
        assert!(parse(&argv("solve")).is_err());
        assert!(parse(&argv("classify")).is_err());
        assert!(parse(&argv("classify --set X")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("solve --problem lcs --platform mid")).is_err());
        assert!(parse(&argv("solve --problem lcs --n NaN")).is_err());
    }

    #[test]
    fn parse_help_variants() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn parse_set_variants() {
        assert_eq!(
            parse_set("w,ne").unwrap(),
            ContributingSet::new(&[RepCell::W, RepCell::Ne])
        );
        assert!(parse_set("").is_err());
        assert!(parse_set("Q").is_err());
    }

    #[test]
    fn classify_renders_all_fields() {
        let out = run_classify(ContributingSet::new(&[RepCell::Nw])).unwrap();
        assert!(out.contains("Inverted-L"));
        assert!(out.contains("executed as"));
        assert!(out.contains("Horizontal"));
    }

    #[test]
    fn solve_small_instances_of_every_problem() {
        for problem in PROBLEMS {
            let summary =
                run_solve(problem, 48, "high", None).unwrap_or_else(|e| panic!("{problem}: {e}"));
            assert!(summary.hetero_ms > 0.0, "{problem}");
            assert!(!summary.answer.is_empty(), "{problem}");
        }
    }

    #[test]
    fn compare_and_tune_render() {
        let out = run_compare("lcs", 64, "low").unwrap();
        assert!(out.contains("CPU parallel"));
        assert!(out.contains("Framework"));
        let out = run_tune("lcs", 64, "high", false).unwrap();
        assert!(out.contains("t_switch sweep"));
        let out = run_tune("lcs", 64, "high", true).unwrap();
        assert!(out.contains("tuned params"));
    }

    #[test]
    fn balance_command_parses_and_runs() {
        let cmd = parse(&argv("balance --problem lcs --n 64 --t-switch 4")).unwrap();
        assert_eq!(
            cmd,
            Command::Balance {
                problem: "lcs".into(),
                n: 64,
                platform: "high".into(),
                t_switch: 4,
            }
        );
        let out = run_balance("lcs", 64, "high", 4).unwrap();
        assert!(out.contains("balanced"));
        assert!(out.contains("tuned static"));
    }

    #[test]
    fn solve_json_is_parseable_and_has_phases() {
        let out = run_solve_traced("levenshtein", 64, "high", None, &NullSink).unwrap();
        let text = render_solve_json(&out);
        let v = lddp_trace::json::parse(&text).unwrap();
        assert_eq!(
            v.get("problem").and_then(|j| j.as_str()),
            Some("levenshtein")
        );
        assert_eq!(v.get("n").and_then(|j| j.as_f64()), Some(64.0));
        let tier = v.get("tier").and_then(|j| j.as_str()).expect("tier key");
        assert!(ExecTier::parse(tier).is_some(), "unknown tier {tier:?}");
        assert!(v.get("total_ms").and_then(|j| j.as_f64()).unwrap() > 0.0);
        let util = v.get("utilization").unwrap();
        assert!(util.get("cpu").and_then(|j| j.as_f64()).unwrap() > 0.0);
        let phases = v.get("phases").and_then(|j| j.as_arr()).unwrap();
        assert!(!phases.is_empty(), "traced solve must report phases");
        for p in phases {
            assert!(p.get("wall_ms").and_then(|j| j.as_f64()).unwrap() >= 0.0);
            let kind = p.get("kind").and_then(|j| j.as_str()).unwrap();
            assert!(kind == "cpu_only" || kind == "shared");
        }
        assert!(v.get("answer").and_then(|j| j.as_str()).is_some());
    }

    #[test]
    fn compare_json_is_parseable() {
        let c = run_compare_data("lcs", 64, "low").unwrap();
        let text = render_compare_json("lcs", 64, "low", &c);
        let v = lddp_trace::json::parse(&text).unwrap();
        assert!(v.get("cpu_ms").and_then(|j| j.as_f64()).unwrap() > 0.0);
        assert!(v.get("framework_ms").and_then(|j| j.as_f64()).unwrap() > 0.0);
        assert_eq!(v.get("platform").and_then(|j| j.as_str()), Some("low"));
    }

    #[test]
    fn trace_command_writes_loadable_chrome_json() {
        let dir = std::env::temp_dir();
        let out = dir.join("lddp_cli_test.trace.json");
        let metrics = dir.join("lddp_cli_test.metrics.jsonl");
        // Explicit parameters that force a shared phase, so the trace
        // contains Link transfer spans (the tuner picks a CPU-only
        // schedule for small Levenshtein instances).
        let msg = run_trace(
            "levenshtein",
            256,
            "high",
            Some(ScheduleParams::new(8, 64)),
            out.to_str().unwrap(),
            Some(metrics.to_str().unwrap()),
        )
        .unwrap();
        assert!(msg.contains("spans"));
        let text = std::fs::read_to_string(&out).unwrap();
        let v = lddp_trace::json::parse(&text).unwrap();
        let events = v.get("traceEvents").and_then(|j| j.as_arr()).unwrap();
        // Phase spans, wave spans and transfer spans all present.
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("name").and_then(|j| j.as_str()))
            .collect();
        assert!(names.iter().any(|n| n.starts_with("phase.")));
        assert!(names.contains(&"wave"));
        assert!(names.contains(&"copy"));
        let m = std::fs::read_to_string(&metrics).unwrap();
        assert!(m.lines().count() > 3);
        for line in m.lines() {
            lddp_trace::json::parse(line).unwrap();
        }

        // A tuned trace additionally records the sweep.
        let msg = run_trace("levenshtein", 64, "high", None, out.to_str().unwrap(), None).unwrap();
        assert!(msg.contains("spans"));
        let text = std::fs::read_to_string(&out).unwrap();
        let v = lddp_trace::json::parse(&text).unwrap();
        let events = v.get("traceEvents").and_then(|j| j.as_arr()).unwrap();
        assert!(events
            .iter()
            .filter_map(|e| e.get("name").and_then(|j| j.as_str()))
            .any(|n| n == "tuner.sweep"));
        let _ = std::fs::remove_file(&out);
        let _ = std::fs::remove_file(&metrics);
    }

    #[test]
    fn execute_dispatches() {
        let out = execute(Command::Help).unwrap();
        assert!(out.contains("USAGE"));
        let out = execute(parse(&argv("classify --set NE")).unwrap()).unwrap();
        assert!(out.contains("mInverted-L"));
    }

    #[test]
    fn parse_serve_defaults_and_flags() {
        assert_eq!(
            parse(&argv("serve")).unwrap(),
            Command::Serve {
                addr: "127.0.0.1:8700".into(),
                workers: 4,
                queue_cap: 256,
                batch_queue_cap: None,
                tenant_rps: None,
                tenant_burst: None,
                max_batch: 8,
                deadline_ms: None,
                watchdog_ms: None,
                trace: None,
                tune_cache: None,
                fleet: false,
            }
        );
        assert_eq!(
            parse(&argv(
                "serve --addr 0.0.0.0:9000 --workers 2 --queue-cap 32 --max-batch 4 \
                 --batch-queue-cap 16 --tenant-rps 5 --tenant-burst 10 \
                 --deadline-ms 500 --watchdog-ms 250 --trace serve.trace.json \
                 --tune-cache tc.json --fleet"
            ))
            .unwrap(),
            Command::Serve {
                addr: "0.0.0.0:9000".into(),
                workers: 2,
                queue_cap: 32,
                batch_queue_cap: Some(16),
                tenant_rps: Some(5.0),
                tenant_burst: Some(10.0),
                max_batch: 4,
                deadline_ms: Some(500),
                watchdog_ms: Some(250),
                trace: Some("serve.trace.json".into()),
                tune_cache: Some("tc.json".into()),
                fleet: true,
            }
        );
        assert!(parse(&argv("serve --tune-cache")).is_err());
        assert!(parse(&argv("serve --workers")).is_err());
        assert!(parse(&argv("serve --queue-cap many")).is_err());
        assert!(parse(&argv("serve --watchdog-ms soon")).is_err());
        assert!(parse(&argv("serve --tenant-rps 0")).is_err());
        assert!(parse(&argv("serve --tenant-burst 0.5")).is_err());
    }

    #[test]
    fn parse_loadgen_defaults_and_flags() {
        assert_eq!(
            parse(&argv("loadgen --problem lcs")).unwrap(),
            Command::Loadgen {
                addr: None,
                problem: "lcs".into(),
                n: 256,
                platform: "high".into(),
                requests: 100,
                rps: None,
                duration_s: None,
                concurrency: 4,
                deadline_ms: None,
                no_verify: false,
                retries: 1,
                mix: vec![],
                priority: Priority::Interactive,
                tenant: String::new(),
                fleet: false,
                stream: false,
                retry_after_cap_ms: None,
            }
        );
        let cmd = parse(&argv(
            "loadgen --addr 127.0.0.1:8700 --problem dtw --n 128 --requests 500 \
             --rps 50 --duration 10 --concurrency 8 --deadline-ms 2000 --no-verify \
             --retries 3 --mix 48,96,1100 --priority batch --tenant acme \
             --stream --retry-after-cap-ms 500",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Loadgen {
                addr: Some("127.0.0.1:8700".into()),
                problem: "dtw".into(),
                n: 128,
                platform: "high".into(),
                requests: 500,
                rps: Some(50.0),
                duration_s: Some(10.0),
                concurrency: 8,
                deadline_ms: Some(2000),
                no_verify: true,
                retries: 3,
                mix: vec![48, 96, 1100],
                priority: Priority::Batch,
                tenant: "acme".into(),
                fleet: false,
                stream: true,
                retry_after_cap_ms: Some(500),
            }
        );
        assert!(parse(&argv("loadgen --problem lcs --priority urgent")).is_err());
        assert!(parse(&argv("loadgen --problem lcs --retry-after-cap-ms soon")).is_err());
        match parse(&argv("loadgen --problem lcs --fleet")).unwrap() {
            Command::Loadgen { fleet, addr, .. } => {
                assert!(fleet);
                assert!(addr.is_none());
            }
            other => panic!("expected Loadgen, got {other:?}"),
        }
        assert!(
            parse(&argv("loadgen --addr 127.0.0.1:8700 --problem lcs --fleet")).is_err(),
            "--fleet is the in-process server's; a remote server chooses its own backend"
        );
        assert!(parse(&argv("loadgen --problem lcs --mix")).is_err());
        assert!(parse(&argv("loadgen --problem lcs --mix 48,banana")).is_err());
        assert!(parse(&argv("loadgen --problem lcs --mix 48,1")).is_err());
        assert!(parse(&argv("loadgen")).is_err(), "requires --problem");
        assert!(parse(&argv("loadgen --problem lcs --requests 0")).is_err());
        assert!(
            parse(&argv("loadgen --problem lcs --retries 0")).is_err(),
            "--retries counts attempts, so 0 is nonsense"
        );
        assert!(parse(&argv("loadgen --problem lcs --rps -3")).is_err());
        assert!(parse(&argv("loadgen --problem lcs --duration 0")).is_err());
        assert!(
            parse(&argv("loadgen --problem lcs --requests 0 --duration 2")).is_ok(),
            "duration-bounded unlimited runs are legal"
        );
    }

    #[test]
    fn parse_chaos_defaults_and_flags() {
        assert_eq!(
            parse(&argv("chaos")).unwrap(),
            Command::Chaos {
                seed: 42,
                campaign: "quick".into(),
                out: None,
            }
        );
        assert_eq!(
            parse(&argv("chaos --seed 7 --campaign heavy --out chaos.json")).unwrap(),
            Command::Chaos {
                seed: 7,
                campaign: "heavy".into(),
                out: Some("chaos.json".into()),
            }
        );
        assert!(parse(&argv("chaos --campaign catastrophic")).is_err());
        assert!(parse(&argv("chaos --seed many")).is_err());
    }

    #[test]
    fn parse_bench_requires_quick() {
        assert_eq!(
            parse(&argv("bench --quick")).unwrap(),
            Command::Bench {
                n: 512,
                rolling: false,
                out: None,
            }
        );
        assert_eq!(
            parse(&argv("bench --quick --n 128 --out BENCH_pr3.json")).unwrap(),
            Command::Bench {
                n: 128,
                rolling: false,
                out: Some("BENCH_pr3.json".into()),
            }
        );
        assert_eq!(
            parse(&argv("bench --rolling --n 8192 --out BENCH_pr8.json")).unwrap(),
            Command::Bench {
                n: 8192,
                rolling: true,
                out: Some("BENCH_pr8.json".into()),
            }
        );
        assert!(parse(&argv("bench")).is_err());
        assert!(parse(&argv("bench --quick --rolling")).is_err());
        assert!(parse(&argv("bench")).is_err(), "full suite is cargo bench");
    }

    #[test]
    fn quick_bench_emits_parseable_json_with_all_problems() {
        let text = run_bench_quick(24, None).unwrap();
        let parsed = lddp_trace::json::parse(&text).expect("bench JSON parses");
        let problems = match parsed.get("problems") {
            Some(lddp_trace::json::Json::Arr(items)) => items.clone(),
            other => panic!("problems array missing: {other:?}"),
        };
        assert_eq!(problems.len(), BENCH_PROBLEMS.len());
        for entry in &problems {
            for key in [
                "cells_per_s_scalar",
                "cells_per_s_bulk",
                "cells_per_s_simd",
                "bulk_speedup",
                "simd_speedup",
                "solve_ms_pool",
                "solve_ms_spawn",
                "pool_speedup",
            ] {
                match entry.get(key) {
                    Some(lddp_trace::json::Json::Num(v)) => {
                        assert!(*v > 0.0, "{key} must be positive, got {v}")
                    }
                    other => panic!("{key} missing or non-numeric: {other:?}"),
                }
            }
            let tier = entry.get("tier").and_then(|j| j.as_str()).expect("tier");
            assert!(ExecTier::parse(tier).is_some(), "unknown tier {tier:?}");
            let is_lcs = entry.get("problem").and_then(|j| j.as_str()) == Some("lcs");
            assert_eq!(
                entry.get("cells_per_s_bitparallel").is_some(),
                is_lcs,
                "bit-parallel throughput is reported exactly for lcs"
            );
        }
        assert!(parsed.get("simd").and_then(|j| j.as_str()).is_some());
        let sweep = parsed.get("worker_sweep").expect("worker_sweep present");
        assert!(matches!(
            sweep.get("best_workers"),
            Some(lddp_trace::json::Json::Num(_))
        ));
    }

    #[test]
    fn pooled_solve_honors_tier_pins_and_bitparallel_matches() {
        let engine = crate::parallel::ParallelEngine::new(2);
        let params = ScheduleParams::new(4, 16);
        let auto = run_solve_pooled("lcs", 64, "high", params, None, &engine).unwrap();
        let scalar =
            run_solve_pooled("lcs", 64, "high", params, Some(ExecTier::Scalar), &engine).unwrap();
        assert_eq!(scalar.tier, ExecTier::Scalar);
        assert_eq!(scalar.answer, auto.answer);
        let bp = run_solve_pooled(
            "lcs",
            64,
            "high",
            params,
            Some(ExecTier::BitParallel),
            &engine,
        )
        .unwrap();
        assert_eq!(bp.tier, ExecTier::BitParallel);
        assert_eq!(bp.answer, auto.answer);
        // Only lcs has a bit-parallel kernel; everything else downgrades
        // the pin to the best available grid tier.
        let lev = run_solve_pooled(
            "levenshtein",
            64,
            "high",
            params,
            Some(ExecTier::BitParallel),
            &engine,
        )
        .unwrap();
        assert_ne!(lev.tier, ExecTier::BitParallel);
        assert!(lev.answer.contains("edit distance"));
    }

    #[test]
    fn tune_config_sweeps_tiers_and_returns_a_reachable_one() {
        let engine = crate::parallel::ParallelEngine::new(1);
        let config = tune_config("levenshtein", 48, "high", &engine).unwrap();
        // Levenshtein has no bit-parallel kernel, so the sweep can only
        // land on a grid tier the engine can actually execute.
        assert_ne!(config.tier, ExecTier::BitParallel);
        // The winner came from the sweep's candidates, which stop at the
        // best tier the engine can reach for this kernel.
        let reachable = select_tier("levenshtein", 48, &engine).unwrap();
        assert!(config.tier <= reachable);
    }

    #[test]
    fn loadgen_in_process_reports_clean_run() {
        let opts = LoadgenOpts {
            addr: None,
            problem: "lcs".into(),
            n: 48,
            platform: "high".into(),
            requests: 20,
            rps: None,
            duration_s: None,
            concurrency: 4,
            deadline_ms: None,
            no_verify: false,
            retries: 1,
            mix: vec![],
            priority: Priority::Interactive,
            tenant: String::new(),
            fleet: false,
            stream: false,
            retry_after_cap_ms: None,
        };
        let text = run_loadgen(&opts).unwrap();
        let v = lddp_trace::json::parse(&text).unwrap();
        assert_eq!(v.get("sent").and_then(|j| j.as_f64()), Some(20.0));
        assert_eq!(v.get("completed").and_then(|j| j.as_f64()), Some(20.0));
        assert_eq!(v.get("errors").and_then(|j| j.as_f64()), Some(0.0));
        assert_eq!(v.get("mismatches").and_then(|j| j.as_f64()), Some(0.0));
        let latency = v
            .get("latency_ms")
            .and_then(|l| l.get("total"))
            .expect("latency summary");
        assert!(latency.get("p50_ms").and_then(|j| j.as_f64()).is_some());
        assert!(latency.get("p99_ms").and_then(|j| j.as_f64()).is_some());
        assert!(v.get("rejection_rate").and_then(|j| j.as_f64()).is_some());
    }

    #[test]
    fn loadgen_in_process_stream_reports_bands_and_ttfb() {
        let opts = LoadgenOpts {
            addr: None,
            problem: "lcs".into(),
            n: 96,
            platform: "high".into(),
            requests: 6,
            rps: None,
            duration_s: None,
            concurrency: 2,
            deadline_ms: None,
            no_verify: false,
            retries: 1,
            mix: vec![],
            priority: Priority::Interactive,
            tenant: String::new(),
            fleet: false,
            stream: true,
            retry_after_cap_ms: Some(500),
        };
        let text = run_loadgen(&opts).unwrap();
        let v = lddp_trace::json::parse(&text).unwrap();
        assert_eq!(v.get("completed").and_then(|j| j.as_f64()), Some(6.0));
        assert_eq!(v.get("mismatches").and_then(|j| j.as_f64()), Some(0.0));
        assert_eq!(
            v.get("retry_after_cap_ms").and_then(|j| j.as_f64()),
            Some(500.0)
        );
        let bands = v
            .get("stream")
            .and_then(|s| s.get("bands"))
            .and_then(|j| j.as_f64())
            .expect("stream band count");
        assert!(bands >= 6.0, "every request delivers at least one band");
        let ttfb = v
            .get("latency_ms")
            .and_then(|l| l.get("ttfb"))
            .expect("ttfb summary");
        assert_eq!(ttfb.get("count").and_then(|j| j.as_f64()), Some(6.0));
    }
}
