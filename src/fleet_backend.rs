//! The fleet [`SolveBackend`]: a heterogeneous worker-pool fleet behind
//! `lddp-serve`. Every admitted batch is scored with the §IV cost model
//! once per fleet platform (tuned parameters per platform, amortized
//! through the [`TunerCache`]) and placed by the
//! [`Dispatcher`](lddp_fleet::Dispatcher) on the pool with the earliest
//! predicted completion — backlog plus estimate, not raw speed. Large
//! grids are additionally routed through a cross-device
//! [`MultiPlan`](lddp_core::multi::MultiPlan) column-band split, so one
//! table spans several simulated devices and reassembles
//! oracle-identically.
//!
//! Like [`FrameworkBackend`](crate::serve_backend::FrameworkBackend),
//! this lives in the umbrella crate because it needs both the problem
//! registry (`cli`) and the execution engines; `lddp-fleet` itself is
//! mechanism-only.

use crate::cli;
use lddp_chaos::FaultInjector;
use lddp_core::kernel::{ExecTier, MemoryMode};
use lddp_core::tuner_cache::{TuneKey, TunedConfig, TunerCache};
use lddp_core::wavefront::Dims;
use lddp_fleet::{default_fleet, Fleet};
use lddp_serve::{BackendSolve, BandFrame, BatchPlan, PoolHealth, SolveBackend, SolveRequest};
use lddp_trace::live::LiveRegistry;
use lddp_trace::TraceSink;
use std::sync::Arc;
use std::time::Instant;

/// Grid side at or above which a fleet-placed solve is attempted as a
/// cross-device MultiPlan band split instead of running whole on the
/// placed pool. Below this, the split's boundary copies cost more than
/// the bands save.
pub const FLEET_MULTI_N: usize = 512;

/// Devices a cross-device split spans: the CPU plus a K20- and a
/// GT650M-class accelerator (see `cli::fleet_multi_platform`).
pub const FLEET_SPLIT_DEVICES: usize = 3;

/// [`SolveBackend`] over a [`Fleet`] of per-platform worker pools and a
/// cost-aware dispatcher. Tuned configurations are cached per
/// `(pattern, dims bucket, fleet platform)` so each platform's estimate
/// uses parameters tuned for *that* platform.
pub struct FleetBackend {
    cache: TunerCache,
    fleet: Fleet,
    injector: Option<Arc<dyn FaultInjector>>,
    live: Option<Arc<LiveRegistry>>,
}

impl std::fmt::Debug for FleetBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetBackend")
            .field("cache", &self.cache)
            .field("platforms", &self.fleet.metrics().names())
            .field("injected", &self.injector.is_some())
            .finish()
    }
}

impl Default for FleetBackend {
    fn default() -> FleetBackend {
        FleetBackend::new()
    }
}

/// The cost-model platform name behind a fleet member: the §IV model
/// knows "high", "low" and "cpu-only"; the fleet names its members
/// after the presets.
fn cost_platform(fleet_name: &str) -> &str {
    match fleet_name {
        "hetero-low" => "low",
        "cpu-only" => "cpu-only",
        _ => "high",
    }
}

impl FleetBackend {
    /// A backend over [`default_fleet`] with an empty tuner cache.
    pub fn new() -> FleetBackend {
        FleetBackend {
            cache: TunerCache::new(),
            fleet: Fleet::new(default_fleet()),
            injector: None,
            live: None,
        }
    }

    /// Attaches a [`LiveRegistry`]: every `lddp_fleet_*` family is
    /// registered eagerly and tuner-cache misses count under
    /// `lddp_tuner_sweeps_total`. Pass the server's own registry so
    /// fleet and serve series share one `/metrics` exposition.
    pub fn with_live(mut self, live: Arc<LiveRegistry>) -> FleetBackend {
        self.fleet = self.fleet.with_live(Arc::clone(&live));
        self.live = Some(live);
        self
    }

    /// A backend whose fleet-placed solves consult `injector` — chaos
    /// campaigns attach a seeded [`lddp_chaos::FaultPlan`] here, so the
    /// graceful-degradation ladder applies per placed platform. Every
    /// pool gets at least two workers: the engines' single-threaded
    /// shortcut bypasses injection entirely, which on a one-core host
    /// would mute the campaign.
    pub fn with_injector(injector: Arc<dyn FaultInjector>) -> FleetBackend {
        let specs = default_fleet()
            .into_iter()
            .map(|mut s| {
                s.threads = s.threads.max(2);
                s
            })
            .collect();
        FleetBackend {
            cache: TunerCache::new(),
            fleet: Fleet::new(specs),
            injector: Some(injector),
            live: None,
        }
    }

    /// The tuner cache (for persistence, stats and tests).
    pub fn cache(&self) -> &TunerCache {
        &self.cache
    }

    /// Publishes pool `idx`'s total and per-class backlog gauges after
    /// a begin/finish event touching `class`.
    fn publish_backlog(&self, idx: usize, class: usize) {
        let dispatcher = self.fleet.dispatcher();
        self.fleet
            .metrics()
            .set_backlog(idx, dispatcher.backlog(idx));
        let name = if class == 0 { "interactive" } else { "batch" };
        self.fleet
            .metrics()
            .set_class_backlog(idx, name, dispatcher.class_backlog(idx, class));
    }

    /// The fleet (for stats and tests).
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// Tuned configuration for `probe` on fleet member `idx`, cached
    /// per `(pattern, dims bucket, fleet platform name)`. Pinned
    /// parameters skip tuning (never a cache hit) but still take the
    /// placed engine's own tier pick.
    fn tuned_for(&self, probe: &SolveRequest, idx: usize) -> Result<(TunedConfig, bool), String> {
        let pool = self.fleet.pool(idx);
        if let Some(params) = probe.params {
            let tier = cli::select_tier(&probe.problem, probe.n, &pool.engine)?;
            let memory = probe.memory_mode.unwrap_or_else(|| {
                cli::choose_memory_mode(&probe.problem, probe.n, cost_platform(&pool.spec.name))
            });
            return Ok((
                TunedConfig::new(params, tier).with_memory_mode(memory),
                false,
            ));
        }
        let pattern = cli::classify_problem(&probe.problem, probe.n)?;
        let key = TuneKey::new(pattern, Dims::new(probe.n, probe.n), pool.spec.name.clone());
        let (config, hit) = self.cache.get_or_tune(&key, || {
            if let Some(live) = &self.live {
                live.counter(
                    "lddp_tuner_sweeps_total",
                    &[],
                    "Full tuning sweeps executed on a tuner-cache miss.",
                )
                .inc();
            }
            cli::tune_config(
                &probe.problem,
                probe.n,
                cost_platform(&pool.spec.name),
                &pool.engine,
            )
        })?;
        // A per-request memory-mode pin overrides the tuner's per-pool
        // budget choice without touching the cached artifact.
        let config = match probe.memory_mode {
            Some(memory) => config.with_memory_mode(memory),
            None => config,
        };
        Ok((config, hit))
    }

    /// Executes one placed request: large grids first try the
    /// cross-device MultiPlan split (skipped under fault injection so
    /// chaos campaigns exercise the pools' degradation ladder), then
    /// the placed pool. Returns `(summary, degraded rungs, devices)`.
    fn solve_on(
        &self,
        req: &SolveRequest,
        idx: usize,
        params: lddp_core::schedule::ScheduleParams,
        tier: lddp_core::kernel::ExecTier,
        memory: MemoryMode,
    ) -> Result<(cli::RunSummary, Vec<String>, usize), String> {
        let rolling = memory == MemoryMode::Rolling
            && cli::rolling_supported(&req.problem)
            && tier != lddp_core::kernel::ExecTier::BitParallel;
        // Rolling solves never materialize a grid, so there is nothing
        // for a cross-device MultiPlan split to band — they always run
        // whole on the placed pool.
        if req.n >= FLEET_MULTI_N && self.injector.is_none() && !rolling {
            // An Err here (e.g. a pattern the k-way band split cannot
            // express) is not fatal — the placed pool solves it whole.
            if let Ok(summary) =
                cli::run_solve_multi(&req.problem, req.n, params, FLEET_SPLIT_DEVICES)
            {
                return Ok((summary, Vec::new(), FLEET_SPLIT_DEVICES));
            }
        }
        let pool = self.fleet.pool(idx);
        let platform = cost_platform(&pool.spec.name);
        match (&self.injector, rolling) {
            (Some(inj), true) => {
                let (summary, degraded) = cli::run_solve_rolling_chaos(
                    &req.problem,
                    req.n,
                    platform,
                    params,
                    Some(tier),
                    &pool.engine,
                    inj.as_ref(),
                )?;
                Ok((summary, degraded, 1))
            }
            (Some(inj), false) => {
                let (summary, degraded) = cli::run_solve_pooled_chaos(
                    &req.problem,
                    req.n,
                    platform,
                    params,
                    Some(tier),
                    &pool.engine,
                    inj.as_ref(),
                )?;
                Ok((summary, degraded, 1))
            }
            (None, true) => {
                let summary = cli::run_solve_rolling(
                    &req.problem,
                    req.n,
                    platform,
                    params,
                    Some(tier),
                    &pool.engine,
                )?;
                Ok((summary, Vec::new(), 1))
            }
            (None, false) => {
                let summary = cli::run_solve_pooled(
                    &req.problem,
                    req.n,
                    platform,
                    params,
                    Some(tier),
                    &pool.engine,
                )?;
                Ok((summary, Vec::new(), 1))
            }
        }
    }
}

impl SolveBackend for FleetBackend {
    fn validate(&self, req: &SolveRequest) -> Result<(), String> {
        if !cli::PROBLEMS.contains(&req.problem.as_str()) {
            return Err(format!(
                "unknown problem \"{}\"; expected one of {}",
                req.problem,
                cli::PROBLEMS.join(", ")
            ));
        }
        if req.n < 2 {
            return Err("\"n\" must be at least 2".to_string());
        }
        if req.n > crate::serve_backend::MAX_SERVE_N {
            return Err(format!(
                "\"n\" exceeds the serving cap of {}",
                crate::serve_backend::MAX_SERVE_N
            ));
        }
        // In fleet mode the request's platform is a cost-model hint the
        // dispatcher overrides; any fleet preset name is admissible.
        if req.platform != "high" && req.platform != "low" && req.platform != "cpu-only" {
            return Err(format!(
                "unknown platform \"{}\"; expected high, low, or cpu-only",
                req.platform
            ));
        }
        if req.memory_mode == Some(MemoryMode::Rolling) && !cli::rolling_supported(&req.problem) {
            return Err(format!(
                "problem \"{}\" has no rolling-mode solve (its answer needs the full table)",
                req.problem
            ));
        }
        Ok(())
    }

    fn tune(
        &self,
        probe: &SolveRequest,
        _sink: &dyn TraceSink,
    ) -> Result<(TunedConfig, bool), String> {
        // Without a placement decision the fleet's reference platform
        // is member 0 (hetero-high); `plan` is the real entry point.
        self.tuned_for(probe, 0)
    }

    fn plan(&self, probe: &SolveRequest, _sink: &dyn TraceSink) -> Result<BatchPlan, String> {
        // One tuned configuration and one §IV estimate per platform:
        // the dispatcher ranks completion times, not platforms.
        let mut configs = Vec::with_capacity(self.fleet.len());
        let mut estimates = Vec::with_capacity(self.fleet.len());
        for idx in 0..self.fleet.len() {
            let (config, hit) = self.tuned_for(probe, idx)?;
            let est = cli::estimate_virtual(
                &probe.problem,
                probe.n,
                cost_platform(&self.fleet.pool(idx).spec.name),
                config.params,
            )?;
            configs.push((config, hit));
            estimates.push(est);
        }
        let placement = self.fleet.dispatcher().place(&estimates);
        let (config, cache_hit) = configs[placement.platform];
        self.fleet
            .metrics()
            .on_place(placement.platform, placement.predicted_s);
        Ok(BatchPlan {
            config,
            cache_hit,
            placement: Some(self.fleet.pool(placement.platform).spec.name.clone()),
            predicted_s: Some(placement.predicted_s),
        })
    }

    fn estimate_ms(&self, req: &SolveRequest) -> Option<f64> {
        // Feasibility against the *best* fleet member: admission must
        // not reject work some pool could still finish in time. Pinned
        // parameters are honoured; otherwise a nominal probe keeps
        // admission cheap (no tuning sweep). Virtual milliseconds, the
        // §IV model's clock.
        let params = req
            .params
            .unwrap_or_else(|| lddp_core::schedule::ScheduleParams::new(2, 16));
        (0..self.fleet.len())
            .filter_map(|idx| {
                cli::estimate_virtual(
                    &req.problem,
                    req.n,
                    cost_platform(&self.fleet.pool(idx).spec.name),
                    params,
                )
                .ok()
            })
            .min_by(|a, b| a.total_cmp(b))
            .map(|s| s * 1e3)
    }

    fn supports_rolling(&self, req: &SolveRequest) -> bool {
        cli::rolling_supported(&req.problem)
    }

    fn solve(
        &self,
        req: &SolveRequest,
        config: TunedConfig,
        sink: &dyn TraceSink,
    ) -> Result<BackendSolve, String> {
        // Direct `solve` (no placement) still goes through the fleet:
        // synthesize a single-request plan so backlog accounting and
        // metrics stay consistent.
        let plan = self.plan(req, sink)?;
        let plan = BatchPlan { config, ..plan };
        self.solve_placed(req, &plan, sink)
    }

    fn solve_placed(
        &self,
        req: &SolveRequest,
        plan: &BatchPlan,
        _sink: &dyn TraceSink,
    ) -> Result<BackendSolve, String> {
        let idx = plan
            .placement
            .as_deref()
            .and_then(|name| self.fleet.index_of(name))
            .unwrap_or(0);
        let predicted = plan.predicted_s.unwrap_or(0.0);
        // Cached (or pinned) parameters may come from a different
        // instance in the same bucket; re-legalize for this exact size.
        let pattern = cli::classify_problem(&req.problem, req.n)?;
        let clamped = plan
            .config
            .params
            .clamped_for(pattern, Dims::new(req.n, req.n));

        // Backlog brackets the solve so concurrent placements see this
        // pool's in-flight work, attributed to the request's service
        // class; metrics record the outcome either way.
        let class = req.priority.index();
        self.fleet.dispatcher().begin_for(idx, predicted, class);
        self.publish_backlog(idx, class);
        let started = Instant::now();
        let result = self.solve_on(req, idx, clamped, plan.config.tier, plan.config.memory_mode);
        let actual = started.elapsed().as_secs_f64();
        self.fleet.dispatcher().finish_for(idx, predicted, class);
        self.publish_backlog(idx, class);

        let (summary, degraded, devices) = result?;
        if devices > 1 {
            self.fleet.metrics().on_split(devices);
        }
        self.fleet
            .metrics()
            .on_finish(idx, predicted, actual, !degraded.is_empty());
        Ok(BackendSolve {
            answer: summary.answer,
            virtual_ms: summary.hetero_ms,
            params: summary.params,
            tier: summary.tier,
            memory_mode: summary.memory_mode,
            table_bytes: summary.table_bytes,
            degraded,
            placed_on: Some(self.fleet.pool(idx).spec.name.clone()),
            devices,
        })
    }

    fn solve_streamed(
        &self,
        req: &SolveRequest,
        plan: &BatchPlan,
        sink: &dyn TraceSink,
        emit: &(dyn Fn(BandFrame) -> bool + Sync),
    ) -> Result<BackendSolve, String> {
        // Chaos campaigns keep the non-streamed degradation ladder, and
        // full-table-answer problems below the multi threshold have no
        // band path: both fall back to the plain placed solve (zero
        // band frames, then the done frame).
        let pattern = cli::classify_problem(&req.problem, req.n)?;
        let multi_eligible = req.n >= FLEET_MULTI_N && pattern.is_canonical();
        if self.injector.is_some() || !(cli::rolling_supported(&req.problem) || multi_eligible) {
            return self.solve_placed(req, plan, sink);
        }
        let idx = plan
            .placement
            .as_deref()
            .and_then(|name| self.fleet.index_of(name))
            .unwrap_or(0);
        let predicted = plan.predicted_s.unwrap_or(0.0);
        let clamped = plan
            .config
            .params
            .clamped_for(pattern, Dims::new(req.n, req.n));
        let rolling_mode = plan.config.memory_mode == MemoryMode::Rolling
            && cli::rolling_supported(&req.problem)
            && plan.config.tier != ExecTier::BitParallel;

        // Same backlog brackets as `solve_placed`: concurrent
        // placements must see streamed work in flight too.
        let class = req.priority.index();
        self.fleet.dispatcher().begin_for(idx, predicted, class);
        self.publish_backlog(idx, class);
        let started = Instant::now();
        let bridge =
            |ev: lddp_core::rolling::BandEvent| emit(crate::serve_backend::band_frame_of(ev));
        let result: Result<(cli::RunSummary, usize), String> = (|| {
            // Routing mirrors `solve_on`: large non-rolling grids go
            // through the cross-device MultiPlan split, streaming one
            // frame per device band as the table reassembles.
            if req.n >= FLEET_MULTI_N && !rolling_mode {
                if let Ok(summary) = cli::run_solve_multi_stream(
                    &req.problem,
                    req.n,
                    clamped,
                    FLEET_SPLIT_DEVICES,
                    &bridge,
                ) {
                    return Ok((summary, FLEET_SPLIT_DEVICES));
                }
            }
            // Wave problems stream bands off the placed pool's rolling
            // path (forced: a full-table solve has no sealed bands to
            // publish; the answers are byte-identical). Anything left
            // — a multi-eligible problem whose split fell through —
            // solves whole, non-streamed, on the placed pool.
            if cli::rolling_supported(&req.problem) {
                let pool = self.fleet.pool(idx);
                let summary = cli::run_solve_rolling_stream(
                    &req.problem,
                    req.n,
                    cost_platform(&pool.spec.name),
                    clamped,
                    Some(plan.config.tier),
                    &pool.engine,
                    crate::serve_backend::STREAM_BANDS,
                    &bridge,
                )?;
                return Ok((summary, 1));
            }
            self.solve_on(req, idx, clamped, plan.config.tier, plan.config.memory_mode)
                .map(|(summary, _degraded, devices)| (summary, devices))
        })();
        let actual = started.elapsed().as_secs_f64();
        self.fleet.dispatcher().finish_for(idx, predicted, class);
        self.publish_backlog(idx, class);

        let (summary, devices) = result?;
        if devices > 1 {
            self.fleet.metrics().on_split(devices);
        }
        self.fleet
            .metrics()
            .on_finish(idx, predicted, actual, false);
        Ok(BackendSolve {
            answer: summary.answer,
            virtual_ms: summary.hetero_ms,
            params: summary.params,
            tier: summary.tier,
            memory_mode: summary.memory_mode,
            table_bytes: summary.table_bytes,
            degraded: Vec::new(),
            placed_on: Some(self.fleet.pool(idx).spec.name.clone()),
            devices,
        })
    }

    fn pool_health(&self) -> Vec<PoolHealth> {
        self.fleet
            .health()
            .into_iter()
            .map(|s| PoolHealth {
                platform: s.platform,
                ready: s.ready,
                dead_workers: s.dead_workers,
            })
            .collect()
    }

    fn fleet_stats_json(&self) -> Option<String> {
        Some(self.fleet.stats_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lddp_chaos::{FaultPlan, FaultPlanConfig};
    use lddp_trace::NullSink;

    #[test]
    fn validate_accepts_fleet_platform_hints() {
        let b = FleetBackend::new();
        assert!(b.validate(&SolveRequest::new("lcs", 64)).is_ok());
        let mut low = SolveRequest::new("lcs", 64);
        low.platform = "cpu-only".into();
        assert!(b.validate(&low).is_ok());
        let mut bad = SolveRequest::new("lcs", 64);
        bad.platform = "tpu".into();
        assert!(b.validate(&bad).is_err());
        assert!(b.validate(&SolveRequest::new("nonsense", 64)).is_err());
        assert!(b.validate(&SolveRequest::new("lcs", 1)).is_err());
    }

    #[test]
    fn plan_places_and_records_metrics() {
        let b = FleetBackend::new();
        let plan = b.plan(&SolveRequest::new("lcs", 64), &NullSink).unwrap();
        let name = plan.placement.expect("fleet plans always place");
        let idx = b.fleet().index_of(&name).unwrap();
        assert!(plan.predicted_s.unwrap().is_finite());
        assert_eq!(b.fleet().metrics().placements(idx), 1);
        // One tuned config per platform entered the cache.
        assert_eq!(b.cache().len(), b.fleet().len());
    }

    #[test]
    fn placement_is_deterministic_over_a_replayed_stream() {
        let sizes = [48usize, 96, 64, 200, 48, 150, 96, 300, 64, 48];
        let run = || {
            let b = FleetBackend::new();
            sizes
                .iter()
                .map(|&n| {
                    let req = SolveRequest::new("lcs", n);
                    let plan = b.plan(&req, &NullSink).unwrap();
                    b.solve_placed(&req, &plan, &NullSink).unwrap().placed_on
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn placed_solves_match_the_sequential_oracle() {
        let b = FleetBackend::new();
        for problem in ["lcs", "checkerboard", "dithering"] {
            let req = SolveRequest::new(problem, 48);
            let plan = b.plan(&req, &NullSink).unwrap();
            let served = b.solve_placed(&req, &plan, &NullSink).unwrap();
            let oracle = cli::run_solve_seq(problem, 48).unwrap();
            assert_eq!(served.answer, oracle, "{problem}");
            assert_eq!(served.devices, 1);
            assert!(served.placed_on.is_some());
        }
        // Backlog fully released after the batch drained.
        for i in 0..b.fleet().len() {
            assert_eq!(b.fleet().dispatcher().backlog(i), 0.0);
        }
    }

    #[test]
    fn large_grids_split_across_devices_and_reassemble() {
        let b = FleetBackend::new();
        let req = SolveRequest::new("lcs", FLEET_MULTI_N);
        let plan = b.plan(&req, &NullSink).unwrap();
        let served = b.solve_placed(&req, &plan, &NullSink).unwrap();
        assert_eq!(served.devices, FLEET_SPLIT_DEVICES);
        assert_eq!(b.fleet().metrics().splits(), 1);
        let oracle = cli::run_solve_seq("lcs", FLEET_MULTI_N).unwrap();
        assert_eq!(served.answer, oracle, "cross-device reassembly");
    }

    #[test]
    fn injected_backend_degrades_on_the_placed_pool() {
        let plan_cfg = FaultPlanConfig {
            device_fault_prob: 1.0,
            ..FaultPlanConfig::none()
        };
        let injector = Arc::new(FaultPlan::new(7, plan_cfg));
        let b = FleetBackend::with_injector(injector);
        let req = SolveRequest::new("lcs", 48);
        let plan = b.plan(&req, &NullSink).unwrap();
        let served = b.solve_placed(&req, &plan, &NullSink).unwrap();
        assert!(
            !served.degraded.is_empty(),
            "certain device fault must take a degradation rung"
        );
        let idx = b
            .fleet()
            .index_of(served.placed_on.as_deref().unwrap())
            .unwrap();
        assert_eq!(b.fleet().metrics().degraded(idx), 1);
        let oracle = cli::run_solve_seq("lcs", 48).unwrap();
        assert_eq!(served.answer, oracle, "degraded solve stays correct");
    }

    #[test]
    fn estimate_takes_the_cheapest_fleet_member() {
        let b = FleetBackend::new();
        let est = b.estimate_ms(&SolveRequest::new("lcs", 128)).unwrap();
        assert!(est.is_finite() && est > 0.0);
        // The minimum over members can never exceed any single member.
        for idx in 0..b.fleet().len() {
            let member = cli::estimate_virtual(
                "lcs",
                128,
                cost_platform(&b.fleet().pool(idx).spec.name),
                lddp_core::schedule::ScheduleParams::new(2, 16),
            )
            .unwrap()
                * 1e3;
            assert!(est <= member + 1e-9);
        }
        assert!(b.supports_rolling(&SolveRequest::new("lcs", 64)));
        assert!(!b.supports_rolling(&SolveRequest::new("dithering", 64)));
    }

    #[test]
    fn batch_class_backlog_is_attributed_and_released() {
        let b = FleetBackend::new();
        let mut req = SolveRequest::new("lcs", 48);
        req.priority = lddp_serve::Priority::Batch;
        let plan = b.plan(&req, &NullSink).unwrap();
        b.solve_placed(&req, &plan, &NullSink).unwrap();
        // Fully released after the solve, in both the class slice and
        // the total.
        for i in 0..b.fleet().len() {
            assert_eq!(b.fleet().dispatcher().class_backlog(i, 1), 0.0);
            assert_eq!(b.fleet().dispatcher().backlog(i), 0.0);
        }
    }

    #[test]
    fn health_and_stats_surface_every_platform() {
        let b = FleetBackend::new();
        let health = b.pool_health();
        assert_eq!(health.len(), 3);
        assert!(health.iter().all(|h| h.ready));
        let stats = b.fleet_stats_json().unwrap();
        for name in ["hetero-high", "hetero-low", "cpu-only"] {
            assert!(stats.contains(name), "{stats}");
        }
    }
}
