//! The [`SolveBackend`] that wires `lddp-serve` to the [`Framework`]:
//! validation against the CLI problem registry, §V-A tuning amortized
//! through a [`TunerCache`], and traced heterogeneous solves.
//!
//! This is the dependency seam of the serving stack: `lddp-serve` only
//! knows `lddp-core` types, so the umbrella crate (which owns the
//! problem registry and the execution engines) supplies the backend.

use crate::cli;
use lddp_chaos::FaultInjector;
use lddp_core::kernel::{ExecTier, MemoryMode};
use lddp_core::schedule::ScheduleParams;
use lddp_core::tuner_cache::{TuneKey, TunedConfig, TunerCache};
use lddp_core::wavefront::Dims;
use lddp_parallel::ParallelEngine;
use lddp_serve::{BackendSolve, BandFrame, BatchPlan, SolveBackend, SolveRequest};
use lddp_trace::live::LiveRegistry;
use lddp_trace::TraceSink;
use std::sync::Arc;

/// Largest instance side the server accepts. Solves are O(n²) cells on
/// a modelled platform; this cap keeps one request from monopolizing a
/// worker for minutes.
pub const MAX_SERVE_N: usize = 8192;

/// Bands a streamed solve (`POST /solve?stream=1`) is cut into: enough
/// granularity that the first frame lands a few percent into the
/// schedule (time-to-first-band ≪ total latency) without the per-band
/// barrier bookkeeping showing up in throughput.
pub const STREAM_BANDS: usize = 32;

/// Bridges an engine [`BandEvent`](lddp_core::rolling::BandEvent) to
/// the serve-layer wire frame. `elapsed_ms` is stamped by the server
/// at emission (it owns the request clock), so it is zero here.
pub(crate) fn band_frame_of(ev: lddp_core::rolling::BandEvent) -> BandFrame {
    BandFrame {
        band: ev.band,
        bands: ev.bands,
        wave_lo: ev.wave_lo,
        wave_hi: ev.wave_hi,
        rows_completed: ev.rows_completed,
        rows: ev.rows,
        cells_done: ev.cells_done,
        cells_total: ev.cells_total,
        score: ev.score,
        best: ev.best,
        elapsed_ms: 0.0,
    }
}

/// [`SolveBackend`] over the real [`Framework`](crate::Framework)
/// solve path, with tuned parameters cached per
/// `(pattern, dims bucket, platform)` and tables computed on one
/// persistent [`ParallelEngine`]: its worker pool spins up on the first
/// request and is reused by every batch for the lifetime of the server,
/// so steady-state serving pays no thread spawns.
pub struct FrameworkBackend {
    cache: TunerCache,
    engine: ParallelEngine,
    injector: Option<Arc<dyn FaultInjector>>,
    live: Option<Arc<LiveRegistry>>,
}

impl std::fmt::Debug for FrameworkBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameworkBackend")
            .field("cache", &self.cache)
            .field("engine", &self.engine)
            .field("injected", &self.injector.is_some())
            .finish()
    }
}

impl Default for FrameworkBackend {
    fn default() -> FrameworkBackend {
        FrameworkBackend::new()
    }
}

impl FrameworkBackend {
    /// A backend with an empty tuner cache and a host-sized engine.
    pub fn new() -> FrameworkBackend {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        FrameworkBackend {
            cache: TunerCache::new(),
            engine: ParallelEngine::new(threads),
            injector: None,
            live: None,
        }
    }

    /// Attaches a [`LiveRegistry`]: the pooled engine records its
    /// `lddp_pool_*` utilization families into it on every solve, and
    /// tuning sweeps executed on a cache miss count under
    /// `lddp_tuner_sweeps_total`. Pass the server's own registry
    /// (`Server::live`) so backend and server series land in the same
    /// `/metrics` exposition.
    pub fn with_live(mut self, live: Arc<LiveRegistry>) -> FrameworkBackend {
        self.engine = self.engine.with_live(Arc::clone(&live));
        self.live = Some(live);
        self
    }

    /// A backend whose solves consult `injector` — chaos campaigns
    /// attach a seeded [`lddp_chaos::FaultPlan`] here. Injected solves
    /// run the engine's graceful-degradation ladder and report the
    /// rungs taken in [`BackendSolve::degraded`], so the server can
    /// count and surface them per response.
    pub fn with_injector(injector: Arc<dyn FaultInjector>) -> FrameworkBackend {
        let mut backend = FrameworkBackend::new();
        // The engine's single-threaded shortcut bypasses injection
        // entirely, so a one-core host would mute the campaign; give an
        // injected backend at least two workers.
        if backend.engine.threads() < 2 {
            backend.engine = ParallelEngine::new(2);
        }
        backend.injector = Some(injector);
        backend
    }

    /// The tuner cache (for stats and tests).
    pub fn cache(&self) -> &TunerCache {
        &self.cache
    }

    fn tune_key(&self, req: &SolveRequest) -> Result<TuneKey, String> {
        let pattern = cli::classify_problem(&req.problem, req.n)?;
        Ok(TuneKey::new(
            pattern,
            Dims::new(req.n, req.n),
            req.platform.clone(),
        ))
    }
}

impl SolveBackend for FrameworkBackend {
    fn validate(&self, req: &SolveRequest) -> Result<(), String> {
        if !cli::PROBLEMS.contains(&req.problem.as_str()) {
            return Err(format!(
                "unknown problem \"{}\"; expected one of {}",
                req.problem,
                cli::PROBLEMS.join(", ")
            ));
        }
        if req.n < 2 {
            return Err("\"n\" must be at least 2".to_string());
        }
        if req.n > MAX_SERVE_N {
            return Err(format!("\"n\" exceeds the serving cap of {MAX_SERVE_N}"));
        }
        if req.platform != "high" && req.platform != "low" {
            return Err(format!(
                "unknown platform \"{}\"; expected high or low",
                req.platform
            ));
        }
        if req.memory_mode == Some(MemoryMode::Rolling) && !cli::rolling_supported(&req.problem) {
            return Err(format!(
                "problem \"{}\" has no rolling-mode solve (its answer needs the full table)",
                req.problem
            ));
        }
        Ok(())
    }

    fn tune(
        &self,
        probe: &SolveRequest,
        _sink: &dyn TraceSink,
    ) -> Result<(TunedConfig, bool), String> {
        if let Some(params) = probe.params {
            // Pinned parameters skip tuning; never a cache hit. The tier
            // is still the engine's own pick — requests pin schedule
            // parameters, not execution machinery. The memory mode is
            // the request's pin, or the tuner's budget model.
            let tier = cli::select_tier(&probe.problem, probe.n, &self.engine)?;
            let memory = probe.memory_mode.unwrap_or_else(|| {
                cli::choose_memory_mode(&probe.problem, probe.n, &probe.platform)
            });
            return Ok((
                TunedConfig::new(params, tier).with_memory_mode(memory),
                false,
            ));
        }
        let key = self.tune_key(probe)?;
        let (config, hit) = self.cache.get_or_tune(&key, || {
            if let Some(live) = &self.live {
                live.counter(
                    "lddp_tuner_sweeps_total",
                    &[],
                    "Full tuning sweeps executed on a tuner-cache miss.",
                )
                .inc();
            }
            cli::tune_config(&probe.problem, probe.n, &probe.platform, &self.engine)
        })?;
        // A per-request memory-mode pin overrides the tuner's choice for
        // this batch without touching the cached artifact (the batch key
        // keeps pinned and unpinned requests apart).
        let config = match probe.memory_mode {
            Some(memory) => config.with_memory_mode(memory),
            None => config,
        };
        Ok((config, hit))
    }

    fn estimate_ms(&self, req: &SolveRequest) -> Option<f64> {
        // Admission-time feasibility must stay cheap: pinned or cached
        // parameters when available, a nominal probe otherwise — never
        // a tuning sweep. The returned figure is the §IV cost model's
        // *virtual* (modelled-platform) milliseconds, the same clock
        // `SolveResponse::virtual_ms` reports.
        let params = req
            .params
            .or_else(|| {
                self.tune_key(req)
                    .ok()
                    .and_then(|key| self.cache.get(&key))
                    .map(|config| config.params)
            })
            .unwrap_or_else(|| ScheduleParams::new(2, 16));
        cli::estimate_virtual(&req.problem, req.n, &req.platform, params)
            .ok()
            .map(|s| s * 1e3)
    }

    fn supports_rolling(&self, req: &SolveRequest) -> bool {
        cli::rolling_supported(&req.problem)
    }

    fn solve(
        &self,
        req: &SolveRequest,
        config: TunedConfig,
        _sink: &dyn TraceSink,
    ) -> Result<BackendSolve, String> {
        // Cached (or pinned) parameters may have been produced for a
        // different instance in the same bucket; re-legalize for this
        // exact size before planning.
        let pattern = cli::classify_problem(&req.problem, req.n)?;
        let clamped = config.params.clamped_for(pattern, Dims::new(req.n, req.n));
        // The table is computed on the shared pooled engine — the serve
        // spans (queue wait, batch, solve) come from the server; the
        // per-wave framework trace is deliberately skipped here, as it
        // would emit thousands of spans per request. Rolling-mode
        // batches route through the score-only wave-band path instead
        // of materializing the grid.
        let rolling = config.memory_mode == MemoryMode::Rolling
            && cli::rolling_supported(&req.problem)
            && config.tier != ExecTier::BitParallel;
        let (summary, degraded) = match (&self.injector, rolling) {
            (Some(inj), true) => cli::run_solve_rolling_chaos(
                &req.problem,
                req.n,
                &req.platform,
                clamped,
                Some(config.tier),
                &self.engine,
                inj.as_ref(),
            )?,
            (Some(inj), false) => cli::run_solve_pooled_chaos(
                &req.problem,
                req.n,
                &req.platform,
                clamped,
                Some(config.tier),
                &self.engine,
                inj.as_ref(),
            )?,
            (None, true) => {
                let summary = cli::run_solve_rolling(
                    &req.problem,
                    req.n,
                    &req.platform,
                    clamped,
                    Some(config.tier),
                    &self.engine,
                )?;
                (summary, Vec::new())
            }
            (None, false) => {
                let summary = cli::run_solve_pooled(
                    &req.problem,
                    req.n,
                    &req.platform,
                    clamped,
                    Some(config.tier),
                    &self.engine,
                )?;
                (summary, Vec::new())
            }
        };
        Ok(BackendSolve {
            answer: summary.answer,
            virtual_ms: summary.hetero_ms,
            params: summary.params,
            tier: summary.tier,
            memory_mode: summary.memory_mode,
            table_bytes: summary.table_bytes,
            degraded,
            placed_on: None,
            devices: 1,
        })
    }

    fn solve_streamed(
        &self,
        req: &SolveRequest,
        plan: &BatchPlan,
        sink: &dyn TraceSink,
        emit: &(dyn Fn(BandFrame) -> bool + Sync),
    ) -> Result<BackendSolve, String> {
        // Streaming needs sealed bands to publish: problems whose
        // answer needs the full table have no band path, and chaos
        // campaigns keep the non-streamed degradation ladder. Both
        // fall back to the plain placed solve — the client sees zero
        // band frames, then the done frame.
        if self.injector.is_some() || !cli::rolling_supported(&req.problem) {
            return self.solve_placed(req, plan, sink);
        }
        let config = plan.config;
        let pattern = cli::classify_problem(&req.problem, req.n)?;
        let clamped = config.params.clamped_for(pattern, Dims::new(req.n, req.n));
        // The rolling band path runs regardless of the tuner's
        // memory-mode choice: a full-table solve only produces its
        // corner at the very end, which would hold the first frame
        // back for the entire solve. Rolling answers are
        // byte-identical to the full-table ones, so the done frame
        // matches a non-streamed solve of the same request.
        let summary = cli::run_solve_rolling_stream(
            &req.problem,
            req.n,
            &req.platform,
            clamped,
            Some(config.tier),
            &self.engine,
            STREAM_BANDS,
            &|ev| emit(band_frame_of(ev)),
        )?;
        Ok(BackendSolve {
            answer: summary.answer,
            virtual_ms: summary.hetero_ms,
            params: summary.params,
            tier: summary.tier,
            memory_mode: summary.memory_mode,
            table_bytes: summary.table_bytes,
            degraded: Vec::new(),
            placed_on: None,
            devices: 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lddp_core::kernel::ExecTier;
    use lddp_core::schedule::ScheduleParams;
    use lddp_trace::NullSink;

    #[test]
    fn validate_enforces_registry_and_bounds() {
        let b = FrameworkBackend::new();
        assert!(b.validate(&SolveRequest::new("lcs", 64)).is_ok());
        assert!(b.validate(&SolveRequest::new("nonsense", 64)).is_err());
        assert!(b.validate(&SolveRequest::new("lcs", 1)).is_err());
        assert!(b
            .validate(&SolveRequest::new("lcs", MAX_SERVE_N + 1))
            .is_err());
        let mut bad_platform = SolveRequest::new("lcs", 64);
        bad_platform.platform = "mid".into();
        assert!(b.validate(&bad_platform).is_err());
    }

    #[test]
    fn tune_caches_within_bucket_and_skips_pinned() {
        let b = FrameworkBackend::new();
        let (c1, hit1) = b.tune(&SolveRequest::new("lcs", 100), &NullSink).unwrap();
        assert!(!hit1);
        // 100 and 128 share the 128 bucket.
        let (c2, hit2) = b.tune(&SolveRequest::new("lcs", 128), &NullSink).unwrap();
        assert!(hit2);
        assert_eq!(c1, c2);
        assert_eq!(b.cache().len(), 1);

        let mut pinned = SolveRequest::new("lcs", 100);
        pinned.params = Some(ScheduleParams::new(3, 7));
        let (c3, hit3) = b.tune(&pinned, &NullSink).unwrap();
        assert!(!hit3);
        assert_eq!(c3.params, ScheduleParams::new(3, 7));
        assert_eq!(b.cache().len(), 1, "pinned params never enter the cache");
    }

    #[test]
    fn solve_clamps_cached_params_for_smaller_instances() {
        let b = FrameworkBackend::new();
        // Deliberately illegal for n=32: t_switch far beyond the wave
        // count. The backend must clamp instead of erroring.
        let solved = b
            .solve(
                &SolveRequest::new("lcs", 32),
                TunedConfig::new(ScheduleParams::new(10_000, 10_000), ExecTier::Bulk),
                &NullSink,
            )
            .unwrap();
        assert!(solved.params.t_switch <= 63);
        assert!(solved.params.t_share <= 32);
        assert!(!solved.answer.is_empty());
    }

    #[test]
    fn solve_answer_matches_sequential_oracle() {
        let b = FrameworkBackend::new();
        for problem in ["lcs", "levenshtein", "weighted-edit", "dithering"] {
            let req = SolveRequest::new(problem, 48);
            let (config, _) = b.tune(&req, &NullSink).unwrap();
            let served = b.solve(&req, config, &NullSink).unwrap();
            let oracle = crate::cli::run_solve_seq(problem, 48).unwrap();
            assert_eq!(served.answer, oracle, "{problem}");
        }
    }

    #[test]
    fn live_registry_counts_tuner_sweeps_and_pool_solves() {
        let reg = Arc::new(LiveRegistry::new());
        let b = FrameworkBackend::new().with_live(Arc::clone(&reg));
        let req = SolveRequest::new("lcs", 100);
        let (config, hit) = b.tune(&req, &NullSink).unwrap();
        assert!(!hit);
        // Same bucket: served from the cache, no second sweep.
        let (_, hit2) = b.tune(&SolveRequest::new("lcs", 128), &NullSink).unwrap();
        assert!(hit2);
        b.solve(&req, config, &NullSink).unwrap();
        let text = reg.to_prometheus();
        assert!(text.contains("lddp_tuner_sweeps_total 1"), "{text}");
        assert!(text.contains("lddp_pool_solves_total"), "{text}");
    }

    #[test]
    fn validate_rejects_rolling_pin_on_full_table_problems() {
        let b = FrameworkBackend::new();
        let mut req = SolveRequest::new("dithering", 64);
        req.memory_mode = Some(MemoryMode::Rolling);
        assert!(b.validate(&req).is_err());
        req.memory_mode = Some(MemoryMode::Full);
        assert!(b.validate(&req).is_ok());
        let mut wave = SolveRequest::new("lcs", 64);
        wave.memory_mode = Some(MemoryMode::Rolling);
        assert!(b.validate(&wave).is_ok());
    }

    #[test]
    fn rolling_mode_serves_the_oracle_answer_with_band_sized_tables() {
        let b = FrameworkBackend::new();
        for problem in [
            "lcs",
            "levenshtein",
            "dtw",
            "needleman-wunsch",
            "smith-waterman",
        ] {
            let req = SolveRequest::new(problem, 48);
            let config = TunedConfig::new(ScheduleParams::new(4, 16), ExecTier::Bulk)
                .with_memory_mode(MemoryMode::Rolling);
            let served = b.solve(&req, config, &NullSink).unwrap();
            assert_eq!(served.memory_mode, MemoryMode::Rolling, "{problem}");
            // Three band buffers of ≤ 49 cells each, not a 49×49 grid.
            assert!(
                served.table_bytes <= 3 * 49 * 12,
                "{problem}: {} bytes",
                served.table_bytes
            );
            let oracle = crate::cli::run_solve_seq(problem, 48).unwrap();
            assert_eq!(served.answer, oracle, "{problem}");
        }
    }

    #[test]
    fn estimate_is_finite_and_grows_with_instance_size() {
        let b = FrameworkBackend::new();
        let small = b.estimate_ms(&SolveRequest::new("lcs", 64)).unwrap();
        let large = b.estimate_ms(&SolveRequest::new("lcs", 2048)).unwrap();
        assert!(small.is_finite() && small > 0.0);
        assert!(
            large > small * 10.0,
            "O(n²) model: {large} ms for 2048 vs {small} ms for 64"
        );
        // Unknown problems yield no estimate (validation rejects them
        // earlier anyway).
        assert!(b.estimate_ms(&SolveRequest::new("nonsense", 64)).is_none());
    }

    #[test]
    fn rolling_support_tracks_the_problem_registry() {
        let b = FrameworkBackend::new();
        assert!(b.supports_rolling(&SolveRequest::new("lcs", 64)));
        assert!(!b.supports_rolling(&SolveRequest::new("dithering", 64)));
    }

    #[test]
    fn bitparallel_config_serves_the_oracle_answer_for_lcs() {
        let b = FrameworkBackend::new();
        let served = b
            .solve(
                &SolveRequest::new("lcs", 80),
                TunedConfig::new(ScheduleParams::new(4, 16), ExecTier::BitParallel),
                &NullSink,
            )
            .unwrap();
        assert_eq!(served.tier, ExecTier::BitParallel);
        let oracle = crate::cli::run_solve_seq("lcs", 80).unwrap();
        assert_eq!(served.answer, oracle);
    }
}
