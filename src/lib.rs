//! # lddp
//!
//! Umbrella crate for the LDDP heterogeneous-framework reproduction
//! (Kumar & Kothapalli, *"A Novel Heterogeneous Framework for Local
//! Dependency Dynamic Programming Problems"*, 2015).
//!
//! The [`Framework`] type is the paper's §V-C contract: hand it a
//! [`Kernel`] (the function `f` plus initialization) and it classifies
//! the dependence pattern (Table I), picks a coalescing-friendly layout
//! (§IV-B), applies a symmetry adapter if needed, tunes `t_switch` /
//! `t_share` empirically (§V-A), and executes heterogeneously on a
//! modelled CPU+GPU platform with pipelined or pinned boundary transfers
//! (§IV-C, Table II).
//!
//! ```
//! use lddp::{Framework, platforms};
//! use lddp::problems::LevenshteinKernel;
//!
//! let kernel = LevenshteinKernel::new(*b"kitten", *b"sitting");
//! let fw = Framework::new(platforms::hetero_high());
//! let solution = fw.solve(&kernel).unwrap();
//! assert_eq!(solution.grid.get(6, 7), 3);
//! ```

#![warn(missing_docs)]

pub mod cli;
pub mod fleet_backend;
pub mod serve_backend;
pub mod workloads;

pub use hetero_sim;
pub use lddp_chaos as chaos;
pub use lddp_core as core;
pub use lddp_fleet as fleet;
pub use lddp_parallel as parallel;
pub use lddp_problems as problems;
pub use lddp_trace as trace;

/// Platform presets re-exported for convenience.
pub mod platforms {
    pub use hetero_sim::platform::{cpu_only, hetero_high, hetero_low, xeon_phi_like, Platform};
}

use hetero_sim::exec::{
    run_cpu_as, run_gpu_as, run_hetero, run_hetero_injected, Breakdown, ExecOptions, WaveRecord,
};
use hetero_sim::platform::Platform;
use lddp_chaos::FaultInjector;
use lddp_core::framework::{choose_execution, Adapter, Classification, TransposedKernel};
use lddp_core::grid::{Grid, LayoutKind};
use lddp_core::kernel::{ExecTier, Kernel};
use lddp_core::pattern::ProfileShape;
use lddp_core::schedule::{PhaseKind, PhaseSpan, Plan, ScheduleParams};
use lddp_core::tuner::{self, TuneResult};
use lddp_core::wavefront::Dims;
use lddp_core::DegradeStep;
use lddp_core::Result;
use lddp_trace::{NullSink, TraceSink};
use std::ops::Range;

/// Cost breakdown of one schedule phase of a heterogeneous run: how
/// much wall (model) time the phase covered and how busy each engine
/// was within it. Produced by [`Framework::solve_traced`].
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// Phase kind (CPU-only ramp vs shared band).
    pub kind: PhaseKind,
    /// Wave indices covered by the phase.
    pub waves: Range<usize>,
    /// Model time the phase spans, seconds.
    pub wall_s: f64,
    /// CPU busy time within the phase.
    pub cpu_busy_s: f64,
    /// GPU busy time within the phase.
    pub gpu_busy_s: f64,
    /// Un-hidden copy time within the phase.
    pub copy_s: f64,
}

/// Per-phase stats from a recorded timeline (ranges clamped to it).
fn phase_stats(timeline: &[WaveRecord], phases: &[PhaseSpan]) -> Vec<PhaseStat> {
    phases
        .iter()
        .filter_map(|p| {
            let lo = p.waves.start.min(timeline.len());
            let hi = p.waves.end.min(timeline.len());
            if lo >= hi {
                return None;
            }
            let recs = &timeline[lo..hi];
            Some(PhaseStat {
                kind: p.kind,
                waves: p.waves.clone(),
                wall_s: recs.iter().map(|r| r.span_s).sum(),
                cpu_busy_s: recs.iter().map(|r| r.cpu_s).sum(),
                gpu_busy_s: recs.iter().map(|r| r.gpu_s).sum(),
                copy_s: recs.iter().map(|r| r.copy_s).sum(),
            })
        })
        .collect()
}

/// The execution tier the host's [`parallel::ParallelEngine`] selects
/// for `kernel` — what a wall-clock solve of the same instance runs on.
/// Pool-free and cheap: tier selection only inspects the kernel's
/// pattern and fast-path hooks plus host SIMD support.
fn host_tier<K: Kernel>(kernel: &K) -> ExecTier {
    lddp_parallel::ParallelEngine::new(1).select_tier(kernel)
}

/// Outcome of a heterogeneous solve: the filled table (in the caller's
/// orientation), the virtual-time cost, and the decisions taken.
#[derive(Debug, Clone)]
pub struct Solution<T> {
    /// The DP table, row-major, in the original kernel's coordinates.
    pub grid: Grid<T>,
    /// End-to-end virtual time on the platform, seconds.
    pub total_s: f64,
    /// Cost breakdown (busy times, traffic).
    pub breakdown: Breakdown,
    /// The framework's classification and execution choice.
    pub classification: Classification,
    /// The schedule parameters used.
    pub params: ScheduleParams,
    /// The execution tier the host's thread engine selects for this
    /// kernel (scalar / bulk / SIMD). The virtual-time simulation is
    /// tier-agnostic — this reports what a wall-clock solve of the same
    /// kernel uses, so CLI and serving output agree on one label.
    pub tier: ExecTier,
    /// Per-phase cost breakdown. Filled by
    /// [`Framework::solve_traced`]; empty for the untraced paths (they
    /// skip timeline recording).
    pub phases: Vec<PhaseStat>,
    /// Degradation rungs taken to produce this solution, in order.
    /// Empty for every non-chaos path and for chaos solves where the
    /// first attempt succeeded; see [`Framework::solve_chaos`].
    pub degradation: Vec<DegradeStep>,
}

/// High-level driver: classify → adapt → (tune) → execute.
#[derive(Debug, Clone)]
pub struct Framework {
    platform: Platform,
    /// Asynchronous-stream pipelining for one-way transfers (§IV-C).
    pub pipeline: bool,
    /// Bytes of problem input uploaded before GPU participation.
    pub setup_to_gpu_bytes: usize,
    /// Bytes of results downloaded afterwards.
    pub final_from_gpu_bytes: usize,
}

impl Framework {
    /// A framework bound to a platform model.
    pub fn new(platform: Platform) -> Self {
        Framework {
            platform,
            pipeline: true,
            setup_to_gpu_bytes: 0,
            final_from_gpu_bytes: 0,
        }
    }

    /// The bound platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Declares problem input/output volume for device setup accounting.
    #[must_use]
    pub fn with_io_bytes(mut self, to_gpu: usize, from_gpu: usize) -> Self {
        self.setup_to_gpu_bytes = to_gpu;
        self.final_from_gpu_bytes = from_gpu;
        self
    }

    /// Classifies a kernel (Table I + execution choice).
    pub fn classify<K: Kernel>(&self, kernel: &K) -> Result<Classification> {
        choose_execution(kernel.contributing_set())
    }

    fn exec_options(&self, functional: bool) -> ExecOptions {
        let mut opts = if functional {
            ExecOptions::functional()
        } else {
            ExecOptions::default()
        };
        opts.pipeline = self.pipeline;
        opts.setup_to_gpu_bytes = self.setup_to_gpu_bytes;
        opts.final_from_gpu_bytes = self.final_from_gpu_bytes;
        opts
    }

    /// Virtual time of a heterogeneous run with explicit parameters,
    /// without computing cell values. The tuner's evaluation function.
    pub fn estimate<K: Kernel>(&self, kernel: &K, params: ScheduleParams) -> Result<f64> {
        let class = self.classify(kernel)?;
        match class.adapter {
            Adapter::None => self.estimate_inner(kernel, &class, params),
            Adapter::Transpose => {
                let t = TransposedKernel::new(kernel)?;
                self.estimate_inner(&t, &class, params)
            }
            Adapter::Mirror => {
                let m = lddp_core::framework::MirroredKernel::new(kernel)?;
                self.estimate_inner(&m, &class, params)
            }
        }
    }

    fn estimate_inner<K: Kernel>(
        &self,
        kernel: &K,
        class: &Classification,
        params: ScheduleParams,
    ) -> Result<f64> {
        let plan = Plan::new(
            class.exec_pattern,
            kernel.contributing_set(),
            kernel.dims(),
            params,
        )?;
        Ok(run_hetero(kernel, &plan, &self.platform, &self.exec_options(false))?.total_s)
    }

    /// Runs the two-stage §V-A sweep and returns the tuned parameters
    /// with both curves.
    pub fn tune<K: Kernel>(&self, kernel: &K) -> Result<TuneResult> {
        self.tune_with_sink(kernel, &NullSink)
    }

    /// [`Framework::tune`] with every evaluated sweep point recorded
    /// into `sink` (see [`tuner::tune_with_sink`]).
    pub fn tune_with_sink<K: Kernel>(
        &self,
        kernel: &K,
        sink: &dyn TraceSink,
    ) -> Result<TuneResult> {
        let class = self.classify(kernel)?;
        let dims = self.exec_dims(kernel, &class);
        let waves = class.exec_pattern.num_waves(dims.rows, dims.cols);
        let switch_candidates = match class.exec_pattern.profile_shape() {
            ProfileShape::Constant => vec![0],
            _ => tuner::t_switch_candidates(waves),
        };
        let share_candidates = tuner::t_share_candidates(dims.cols);
        tuner::tune_with_sink(
            &switch_candidates,
            &share_candidates,
            |params| {
                self.estimate(kernel, params)
                    .expect("candidate parameters are in range")
            },
            sink,
        )
    }

    /// Like [`Framework::tune`], but exploits the concavity of the Fig 7
    /// curves with a ternary search over the full integer parameter
    /// ranges — finds finer-grained optima than the power-of-two ladder
    /// in a comparable number of evaluations.
    pub fn tune_refined<K: Kernel>(&self, kernel: &K) -> Result<TuneResult> {
        let class = self.classify(kernel)?;
        let dims = self.exec_dims(kernel, &class);
        let max_switch = lddp_core::schedule::max_t_switch(class.exec_pattern, dims);
        tuner::tune_concave((0, max_switch), (0, dims.cols), |params| {
            self.estimate(kernel, params)
                .expect("candidate parameters are in range")
        })
    }

    /// Dimensions after the adapter (transpose swaps them).
    fn exec_dims<K: Kernel>(&self, kernel: &K, class: &Classification) -> Dims {
        let d = kernel.dims();
        match class.adapter {
            Adapter::Transpose => Dims::new(d.cols, d.rows),
            _ => d,
        }
    }

    /// Tunes, then solves functionally. The one-call paper workflow.
    pub fn solve<K: Kernel>(&self, kernel: &K) -> Result<Solution<K::Cell>> {
        let params = self.tune(kernel)?.params;
        self.solve_with(kernel, params)
    }

    /// Solves functionally with explicit parameters.
    pub fn solve_with<K: Kernel>(
        &self,
        kernel: &K,
        params: ScheduleParams,
    ) -> Result<Solution<K::Cell>> {
        self.dispatch_solve(kernel, params, false, &NullSink)
    }

    /// Solves functionally with explicit parameters while consulting a
    /// [`FaultInjector`] on every wave in which the modelled device
    /// participates. An injected device fault aborts the heterogeneous
    /// run (device-side table state is considered lost) and triggers
    /// the framework's last degradation rung: the whole instance is
    /// re-executed on the modelled multicore CPU, and
    /// [`DegradeStep::HeteroToCpuOnly`] is recorded in
    /// [`Solution::degradation`]. Answers are identical either way —
    /// only the cost model (and the rung record) differ.
    pub fn solve_chaos<K: Kernel>(
        &self,
        kernel: &K,
        params: ScheduleParams,
        injector: &dyn FaultInjector,
    ) -> Result<Solution<K::Cell>> {
        let class = self.classify(kernel)?;
        match class.adapter {
            Adapter::None => {
                self.chaos_inner(kernel, kernel, class, params, |i, j| (i, j), injector)
            }
            Adapter::Transpose => {
                let t = TransposedKernel::new(kernel)?;
                self.chaos_inner(kernel, &t, class, params, |i, j| (j, i), injector)
            }
            Adapter::Mirror => {
                let cols = kernel.dims().cols;
                let m = lddp_core::framework::MirroredKernel::new(kernel)?;
                self.chaos_inner(
                    kernel,
                    &m,
                    class,
                    params,
                    move |i, j| (i, cols - 1 - j),
                    injector,
                )
            }
        }
    }

    /// [`Framework::solve_chaos`]'s execution half: heterogeneous run
    /// under injection, CPU-only rerun on a device fault, grid mapped
    /// back into `user_kernel`'s coordinates.
    fn chaos_inner<KU, KE>(
        &self,
        user_kernel: &KU,
        exec_kernel: &KE,
        class: Classification,
        params: ScheduleParams,
        to_exec: impl Fn(usize, usize) -> (usize, usize),
        injector: &dyn FaultInjector,
    ) -> Result<Solution<KU::Cell>>
    where
        KU: Kernel,
        KE: Kernel<Cell = KU::Cell>,
    {
        let plan = Plan::new(
            class.exec_pattern,
            exec_kernel.contributing_set(),
            exec_kernel.dims(),
            params,
        )?;
        let opts = self.exec_options(true);
        let mut degradation = Vec::new();
        let report = match run_hetero_injected(exec_kernel, &plan, &self.platform, &opts, injector)
        {
            Ok(r) => r,
            Err(lddp_core::Error::DeviceFault { .. }) => {
                degradation.push(DegradeStep::HeteroToCpuOnly);
                run_cpu_as(exec_kernel, class.exec_pattern, &self.platform, &opts)?
            }
            Err(e) => return Err(e),
        };
        let exec_grid = report.grid.expect("functional run returns the grid");
        let dims = user_kernel.dims();
        let mut grid = Grid::new(LayoutKind::RowMajor, dims);
        for i in 0..dims.rows {
            for j in 0..dims.cols {
                let (ei, ej) = to_exec(i, j);
                grid.set(i, j, exec_grid.get(ei, ej));
            }
        }
        Ok(Solution {
            grid,
            total_s: report.total_s,
            breakdown: report.breakdown,
            classification: class,
            params,
            tier: host_tier(user_kernel),
            phases: Vec::new(),
            degradation,
        })
    }

    /// Tunes (when `params` is `None`) and solves with full
    /// observability: the run records its wave timeline, emits the
    /// standard event set (phase/wave/transfer spans, byte counters,
    /// tuner sweep points) into `sink`, and returns per-phase stats in
    /// [`Solution::phases`]. Pass a
    /// [`Recorder`](lddp_trace::Recorder) and export the snapshot with
    /// [`lddp_trace::chrome::to_chrome_json`] to get a
    /// Perfetto-loadable timeline.
    pub fn solve_traced<K: Kernel>(
        &self,
        kernel: &K,
        params: Option<ScheduleParams>,
        sink: &dyn TraceSink,
    ) -> Result<Solution<K::Cell>> {
        let params = match params {
            Some(p) => p,
            None => self.tune_with_sink(kernel, sink)?.params,
        };
        self.dispatch_solve(kernel, params, true, sink)
    }

    fn dispatch_solve<K: Kernel>(
        &self,
        kernel: &K,
        params: ScheduleParams,
        record: bool,
        sink: &dyn TraceSink,
    ) -> Result<Solution<K::Cell>> {
        let class = self.classify(kernel)?;
        match class.adapter {
            Adapter::None => {
                self.solve_inner(kernel, kernel, class, params, |i, j| (i, j), record, sink)
            }
            Adapter::Transpose => {
                let t = TransposedKernel::new(kernel)?;
                self.solve_inner(kernel, &t, class, params, |i, j| (j, i), record, sink)
            }
            Adapter::Mirror => {
                let cols = kernel.dims().cols;
                let m = lddp_core::framework::MirroredKernel::new(kernel)?;
                self.solve_inner(
                    kernel,
                    &m,
                    class,
                    params,
                    move |i, j| (i, cols - 1 - j),
                    record,
                    sink,
                )
            }
        }
    }

    /// Runs `exec_kernel` heterogeneously and maps the grid back into
    /// `user_kernel`'s coordinates via `to_exec`.
    #[allow(clippy::too_many_arguments)]
    fn solve_inner<KU, KE>(
        &self,
        user_kernel: &KU,
        exec_kernel: &KE,
        class: Classification,
        params: ScheduleParams,
        to_exec: impl Fn(usize, usize) -> (usize, usize),
        record: bool,
        sink: &dyn TraceSink,
    ) -> Result<Solution<KU::Cell>>
    where
        KU: Kernel,
        KE: Kernel<Cell = KU::Cell>,
    {
        let plan = Plan::new(
            class.exec_pattern,
            exec_kernel.contributing_set(),
            exec_kernel.dims(),
            params,
        )?;
        let mut opts = self.exec_options(true);
        opts.record_timeline = record;
        let report = run_hetero(exec_kernel, &plan, &self.platform, &opts)?;
        let phases = if record {
            hetero_sim::trace::record_run(
                sink,
                &report.timeline,
                &plan.phases(),
                report.breakdown.setup_s,
            );
            phase_stats(&report.timeline, &plan.phases())
        } else {
            Vec::new()
        };
        let exec_grid = report.grid.expect("functional run returns the grid");
        let dims = user_kernel.dims();
        let mut grid = Grid::new(LayoutKind::RowMajor, dims);
        for i in 0..dims.rows {
            for j in 0..dims.cols {
                let (ei, ej) = to_exec(i, j);
                grid.set(i, j, exec_grid.get(ei, ej));
            }
        }
        Ok(Solution {
            grid,
            total_s: report.total_s,
            breakdown: report.breakdown,
            classification: class,
            params,
            tier: host_tier(user_kernel),
            phases,
            degradation: Vec::new(),
        })
    }

    /// Solves with one-pass dynamic load balancing instead of offline
    /// tuning (the Cuenca-style heuristic — see
    /// [`hetero_sim::balance`]): the CPU band width drifts wave-by-wave
    /// toward the span-equalizing split. Needs no pilot runs; at scale
    /// it typically matches or beats the tuned static plan because the
    /// band tracks each wave's width.
    ///
    /// `t_switch` bounds the CPU-only ramps for ramp-shaped patterns
    /// (pass 0 to disable; a tuned value from [`Framework::tune`] works
    /// well). Not available for kernels needing a symmetry adapter —
    /// transpose/mirror them explicitly first.
    pub fn solve_balanced<K: Kernel>(
        &self,
        kernel: &K,
        t_switch: usize,
    ) -> Result<Solution<K::Cell>> {
        let class = self.classify(kernel)?;
        if class.adapter != Adapter::None {
            return Err(lddp_core::Error::InvalidSchedule {
                pattern: class.raw_pattern,
                reason: "solve_balanced requires an adapter-free kernel; wrap it in \
                         TransposedKernel/MirroredKernel first"
                    .into(),
            });
        }
        let config = hetero_sim::balance::BalanceConfig {
            t_switch,
            initial_band: 0,
            gain: 0.5,
        };
        let (plan, report) = hetero_sim::balance::run_balanced(
            kernel,
            class.exec_pattern,
            &self.platform,
            &self.exec_options(true),
            &config,
        )?;
        let exec_grid = report.grid.expect("functional run returns the grid");
        let dims = kernel.dims();
        let mut grid = Grid::new(LayoutKind::RowMajor, dims);
        for i in 0..dims.rows {
            for j in 0..dims.cols {
                grid.set(i, j, exec_grid.get(i, j));
            }
        }
        // Report the *average* band as the nominal t_share.
        let bands = plan.bands();
        let avg_band = if bands.is_empty() {
            0
        } else {
            bands.iter().sum::<usize>() / bands.len()
        };
        Ok(Solution {
            grid,
            total_s: report.total_s,
            breakdown: report.breakdown,
            classification: class,
            params: ScheduleParams::new(t_switch, avg_band),
            tier: host_tier(kernel),
            phases: Vec::new(),
            degradation: Vec::new(),
        })
    }

    /// Virtual time of the pure multicore-CPU baseline ("CPU parallel").
    pub fn cpu_baseline<K: Kernel>(&self, kernel: &K) -> Result<f64> {
        let class = self.classify(kernel)?;
        let opts = ExecOptions::default();
        match class.adapter {
            Adapter::None => {
                Ok(run_cpu_as(kernel, class.exec_pattern, &self.platform, &opts)?.total_s)
            }
            Adapter::Transpose => {
                let t = TransposedKernel::new(kernel)?;
                Ok(run_cpu_as(&t, class.exec_pattern, &self.platform, &opts)?.total_s)
            }
            Adapter::Mirror => {
                let m = lddp_core::framework::MirroredKernel::new(kernel)?;
                Ok(run_cpu_as(&m, class.exec_pattern, &self.platform, &opts)?.total_s)
            }
        }
    }

    /// Virtual time of the pure-GPU baseline.
    pub fn gpu_baseline<K: Kernel>(&self, kernel: &K) -> Result<f64> {
        let class = self.classify(kernel)?;
        let opts = self.exec_options(false);
        match class.adapter {
            Adapter::None => {
                Ok(run_gpu_as(kernel, class.exec_pattern, &self.platform, &opts)?.total_s)
            }
            Adapter::Transpose => {
                let t = TransposedKernel::new(kernel)?;
                Ok(run_gpu_as(&t, class.exec_pattern, &self.platform, &opts)?.total_s)
            }
            Adapter::Mirror => {
                let m = lddp_core::framework::MirroredKernel::new(kernel)?;
                Ok(run_gpu_as(&m, class.exec_pattern, &self.platform, &opts)?.total_s)
            }
        }
    }
}
